"""Transaction lifecycle management.

Tracks active transactions and exposes the two waits the reorganizer
needs:

* "The reorganization process waits for all transactions that are active
  at the time it started, to complete, before starting the fuzzy
  traversal" (§4.5) — :meth:`wait_for` on a snapshot of active tids;
* §4.1 non-2PL support — after locking an object, the reorganizer waits
  for every active transaction that *ever* locked it, which combines the
  lock manager's history with these completion events.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, Set

from ..sim import Event, Wait
from ..wal.records import (
    BeginRecord,
    EndRecord,
    FLAG_SYSTEM_TXN,
    NO_REORG_PARTITION,
)
from .transaction import Transaction


class TransactionManager:
    def __init__(self, engine):
        self.engine = engine
        self._next_tid = 1
        self._active: Dict[int, Transaction] = {}
        self._done_events: Dict[int, Event] = {}
        self.started = 0
        self.committed = 0
        self.aborted = 0
        #: Abort counts keyed by :attr:`Transaction.abort_reason` —
        #: distinguishes deadlock-driven aborts from everything else so
        #: retry-budget accounting never folds into generic aborts.
        self.abort_reasons: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------------

    def begin(self, system: bool = False, strict: bool | None = None,
              reorg_partition: int | None = None) -> Transaction:
        """Start a transaction (logs BEGIN; no simulated cost).

        ``reorg_partition`` marks a reorganizer's own transaction: that
        partition's TRT ignores its reference updates (the reorganizer
        knows about its own patches), while every other active TRT still
        records them.
        """
        tid = self._next_tid
        self._next_tid += 1
        if strict is None:
            strict = self.engine.config.strict_transactions
        txn = Transaction(self.engine, tid, system=system, strict=strict)
        txn.reorg_partition = reorg_partition
        self._active[tid] = txn
        self._done_events[tid] = self.engine.sim.event(name=f"txn-done:{tid}")
        flags = FLAG_SYSTEM_TXN if system else 0
        self.engine.log.append(BeginRecord(
            tid, 0, flags=flags,
            reorg_partition=(NO_REORG_PARTITION if reorg_partition is None
                             else reorg_partition)))
        txn.last_lsn = self.engine.log.last_lsn
        self.started += 1
        history = getattr(self.engine, "history", None)
        if history is not None:
            history.record_begin(txn)
        return txn

    def finish(self, txn: Transaction) -> None:
        """Called by commit/abort: release locks, log END, wake waiters."""
        self.engine.log.append(EndRecord(txn.tid, txn.last_lsn))
        self.engine.locks.release_all(txn.tid)
        self.engine.locks.transaction_finished(txn.tid)
        self._active.pop(txn.tid, None)
        done = self._done_events.pop(txn.tid, None)
        if done is not None:
            done.succeed(txn.status)
        if txn.status.value == "committed":
            self.committed += 1
        else:
            self.aborted += 1
            reason = txn.abort_reason or "user"
            self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1
        history = getattr(self.engine, "history", None)
        if history is not None:
            history.record_end(txn)

    # -- queries / waits ----------------------------------------------------------

    def active_tids(self) -> Set[int]:
        return set(self._active)

    def is_active(self, tid: int) -> bool:
        return tid in self._active

    def transaction(self, tid: int) -> Transaction:
        return self._active[tid]

    def set_next_tid(self, next_tid: int) -> None:
        """Recovery hook: resume tid allocation past everything in the log."""
        self._next_tid = max(self._next_tid, next_tid)

    def wait_for(self, tids: Iterable[int]) -> Generator[Any, Any, None]:
        """Block until every listed transaction has completed."""
        for tid in list(tids):
            event = self._done_events.get(tid)
            if event is not None:
                yield Wait(event)

    def wait_for_quiesce(self) -> Generator[Any, Any, None]:
        """Block until every currently-active transaction has completed."""
        yield from self.wait_for(self.active_tids())

    def __repr__(self) -> str:
        return (f"<TransactionManager active={len(self._active)} "
                f"committed={self.committed} aborted={self.aborted}>")
