"""Transactions: strict-2PL (and short-lock) execution over the store."""

from .manager import TransactionManager
from .transaction import Transaction, TxnStatus

__all__ = ["Transaction", "TransactionManager", "TxnStatus"]
