"""Transactions.

Implements the system model of paper §2:

* strict 2PL by default — every lock is held until commit/abort — with an
  optional short-duration-lock mode (§4.1) in which shared locks are
  released as soon as the access completes;
* WAL — the combined undo/redo record is appended *before* the physical
  update is applied, so the log analyzer sees pointer deletes before they
  happen and pointer inserts before the lock is released;
* the reference protocol — a transaction may only use a reference it
  copied out of an object it read (or to an object it created).  The
  engine tracks each transaction's *local memory* (the references it
  holds) both to enforce the protocol and because Lemma 3.3's guarantee
  is about exactly this set.

All blocking methods are generators driven by the simulation kernel;
every object access also charges simulated CPU per the cost model.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional, Set, Tuple

from ..concurrency import LockMode
from ..errors import ReferenceProtocolError, TransactionStateError
from ..sim import Delay, Wait
from ..storage import ObjectImage, Oid
from ..wal.apply import apply_record, invert_record
from ..wal.records import (
    AbortRecord,
    ClrRecord,
    CommitRecord,
    LogRecord,
    ObjCreateRecord,
    ObjDeleteRecord,
    PayloadUpdateRecord,
    RefUpdateRecord,
    PHYSICAL_KINDS,
)


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction against the storage engine.

    Obtain instances via :meth:`TransactionManager.begin`; drive the
    generator methods with ``yield from`` inside a simulation process.
    """

    def __init__(self, engine, tid: int, system: bool = False,
                 strict: bool = True):
        self.engine = engine
        self.tid = tid
        self.system = system
        self.strict = strict
        self.status = TxnStatus.ACTIVE
        self.last_lsn = 0
        # The explore harness installs its recorder before any
        # transaction begins, so snapshotting it here is safe and saves
        # a getattr per access on the hot paths.  Same for the clustering
        # tracer — which additionally never traces system transactions
        # (a reorganizer touching every object is not workload heat).
        self._history = getattr(engine, "history", None)
        self._tracer = None if system else getattr(engine, "tracer", None)
        #: References in the transaction's local memory (§2 model).
        self.local_refs: Set[Oid] = set()
        #: Objects this transaction created (allowed to reference freely).
        self.created: Set[Oid] = set()
        self.ops = 0
        #: Why the transaction aborted (``None`` while active/committed):
        #: ``"deadlock"`` for timeout/waits-for victims, ``"user"`` for
        #: everything else.  The manager aggregates these per reason.
        self.abort_reason: Optional[str] = None

    # -- locking -------------------------------------------------------------

    def lock(self, oid: Oid, mode: LockMode) -> Generator[Any, Any, None]:
        """Acquire a lock (raises ``LockTimeoutError`` on deadlock)."""
        self._require_active()
        yield from self.engine.locks.acquire(self.tid, oid, mode)

    def unlock(self, oid: Oid) -> None:
        """Early release — only meaningful in short-duration-lock mode."""
        self.engine.locks.release(self.tid, oid)

    # -- reads ----------------------------------------------------------------

    def read(self, oid: Oid,
             for_update: bool = False) -> Generator[Any, Any, ObjectImage]:
        """Lock (S, or X with ``for_update``), read the object, and copy
        its references into the transaction's local memory.

        In short-lock mode a plain S lock is dropped right after the
        access — the transaction keeps the references it copied, which is
        precisely the hazard the TRT plus the lock-history wait (§4.1)
        guard against.  X locks are held to transaction end even in
        short-lock mode so rollback never needs to re-acquire them.
        """
        if self.status is not TxnStatus.ACTIVE:
            self._require_active()
        engine = self.engine
        # Flattened fast paths: the uncontended lock grant, the
        # memory-resident page fix and the CPU charge would each cost a
        # generator per access through the generic helpers — this is the
        # hottest method in the benchmarks.  (The status check and the
        # history/tracer notes are inlined here for the same reason.)
        mode = LockMode.X if for_update else LockMode.S
        if not engine.locks.try_acquire(self.tid, oid, mode):
            yield from engine.locks.acquire_wait(self.tid, oid, mode)
        if engine.buffer is not None:
            yield from engine.fix_page(oid)
        if engine._charge_access:
            cpu = engine.cpu
            if not cpu.try_use():
                gate = cpu.wait_gate()
                try:
                    yield Wait(gate)
                except BaseException:
                    cpu.cancel_wait(gate)
                    raise
            try:
                # The engine pre-builds one Delay per configured cost —
                # the kernel only reads ``dt``, so sharing the instance
                # across every access is safe and skips an allocation on
                # the hottest yield in the benchmarks.
                yield engine._access_delay
            finally:
                cpu.release()
        # One cache lookup yields both the private image copy and the
        # store's shared children tuple (cheaper than re-scanning the
        # copy's ref slots per read).
        image, children = engine.store.read_object_with_children(oid)
        self.local_refs.update(children)
        self.local_refs.add(oid)
        if self._history is not None:
            self._history.record(self, "r", oid)
        if self._tracer is not None:
            self._tracer.note(self.tid, oid)
        self.ops += 1
        if not self.strict and not for_update and not \
                engine.locks.holds(self.tid, oid, LockMode.X):
            self.unlock(oid)
        return image

    def read_refs(self, oid: Oid, for_update: bool = False
                  ) -> Generator[Any, Any, Tuple[Oid, ...]]:
        """:meth:`read`, but returns only the object's non-null children
        — the store's shared tuple, which callers must not mutate.

        Pointer chasing needs nothing else from the object, and the
        random walk is nothing but pointer chasing: skipping the private
        image copy per step is a large fraction of the walk's Python
        cost.  Locking, CPU charges, local-memory and history semantics
        are identical to :meth:`read`.
        """
        if self.status is not TxnStatus.ACTIVE:
            self._require_active()
        engine = self.engine
        mode = LockMode.X if for_update else LockMode.S
        if not engine.locks.try_acquire(self.tid, oid, mode):
            yield from engine.locks.acquire_wait(self.tid, oid, mode)
        if engine.buffer is not None:
            yield from engine.fix_page(oid)
        if engine._charge_access:
            cpu = engine.cpu
            if not cpu.try_use():
                gate = cpu.wait_gate()
                try:
                    yield Wait(gate)
                except BaseException:
                    cpu.cancel_wait(gate)
                    raise
            try:
                yield engine._access_delay
            finally:
                cpu.release()
        children = engine.store.children_tuple(oid)
        self.local_refs.update(children)
        self.local_refs.add(oid)
        if self._history is not None:
            self._history.record(self, "r", oid)
        if self._tracer is not None:
            self._tracer.note(self.tid, oid)
        self.ops += 1
        if not self.strict and not for_update and not \
                engine.locks.holds(self.tid, oid, LockMode.X):
            self.unlock(oid)
        return children

    # -- updates ---------------------------------------------------------------

    def write_payload(self, oid: Oid, offset: int,
                      data: bytes) -> Generator[Any, Any, None]:
        """Overwrite payload bytes in place (logged, undoable)."""
        if self.status is not TxnStatus.ACTIVE:
            self._require_active()
        engine = self.engine
        if not engine.locks.try_acquire(self.tid, oid, LockMode.X):
            yield from engine.locks.acquire_wait(self.tid, oid, LockMode.X)
        if engine.buffer is not None:
            yield from engine.fix_page(oid, dirty=True)
        if engine._charge_update:
            cpu = engine.cpu
            if not cpu.try_use():
                gate = cpu.wait_gate()
                try:
                    yield Wait(gate)
                except BaseException:
                    cpu.cancel_wait(gate)
                    raise
            try:
                yield engine._update_delay
            finally:
                cpu.release()
        store = engine.store
        before = store.get_payload(oid)[offset:offset + len(data)]
        if self._history is not None:
            self._history.record(self, "w", oid)
        if self._tracer is not None:
            self._tracer.note(self.tid, oid)
        # WAL append then direct apply: forward processing always appends
        # the newest LSN, so ``apply_record``'s redo test (page LSN >=
        # record LSN -> skip) can never fire here — go straight to the
        # store operation the record describes.
        record = PayloadUpdateRecord(
            self.tid, self.last_lsn, oid=oid, offset=offset,
            before=bytes(before), after=bytes(data))
        self.last_lsn = lsn = engine.log.append(record)
        store.set_payload_bytes(oid, offset, record.after)
        store.set_page_lsn(oid, lsn)

    def insert_ref(self, parent: Oid, child: Oid,
                   slot: Optional[int] = None) -> Generator[Any, Any, int]:
        """Store a reference to ``child`` into ``parent`` (pointer insert).

        Uses the first free reference slot unless ``slot`` is given.
        Returns the slot used.
        """
        self._require_active()
        self._check_ref_source(child)
        yield from self.lock(parent, LockMode.X)
        yield from self.engine.fix_page(parent, dirty=True)
        yield from self._cpu(self.engine.config.cpu_update_extra_ms)
        image = self.engine.store.read_object(parent)
        use_slot = slot if slot is not None else image.free_slot()
        old = image.get_ref(use_slot)
        if old is not None:
            raise ReferenceProtocolError(
                f"slot {use_slot} of {parent} already holds {old}")
        self._note("w", parent)
        self._log_and_apply(RefUpdateRecord(
            self.tid, self.last_lsn, parent=parent, slot=use_slot,
            old_child=None, new_child=child))
        return use_slot

    def delete_ref(self, parent: Oid, child: Oid) -> Generator[Any, Any, int]:
        """Delete the (first) reference to ``child`` out of ``parent``.

        The transaction retains the reference in its local memory — the
        Fig. 2 scenario the TRT exists to handle.
        """
        self._require_active()
        yield from self.lock(parent, LockMode.X)
        yield from self.engine.fix_page(parent, dirty=True)
        yield from self._cpu(self.engine.config.cpu_update_extra_ms)
        image = self.engine.store.read_object(parent)
        slots = image.slots_referencing(child)
        if not slots:
            raise ReferenceProtocolError(
                f"{parent} holds no reference to {child}")
        use_slot = slots[0]
        self.local_refs.add(child)
        self._note("w", parent)
        self._log_and_apply(RefUpdateRecord(
            self.tid, self.last_lsn, parent=parent, slot=use_slot,
            old_child=child, new_child=None))
        return use_slot

    def update_ref(self, parent: Oid, slot: int,
                   new_child: Optional[Oid],
                   cpu_ms: Optional[float] = None
                   ) -> Generator[Any, Any, None]:
        """Atomically re-point one reference slot (delete + insert).

        ``cpu_ms`` overrides the default CPU charge — the reorganizer
        consolidates its per-migration CPU into one burst and passes 0
        here.
        """
        if self.status is not TxnStatus.ACTIVE:
            self._require_active()
        if new_child is not None:
            self._check_ref_source(new_child)
        engine = self.engine
        if not engine.locks.try_acquire(self.tid, parent, LockMode.X):
            yield from engine.locks.acquire_wait(self.tid, parent,
                                                 LockMode.X)
        if engine.buffer is not None:
            yield from engine.fix_page(parent, dirty=True)
        cost = (engine.config.cpu_update_extra_ms
                if cpu_ms is None else cpu_ms)
        if cost > 0:
            cpu = engine.cpu
            if not cpu.try_use():
                gate = cpu.wait_gate()
                try:
                    yield Wait(gate)
                except BaseException:
                    cpu.cancel_wait(gate)
                    raise
            try:
                yield (engine._update_delay if cpu_ms is None
                       else Delay(cost))
            finally:
                cpu.release()
        store = engine.store
        old_child = store.get_ref(parent, slot)
        if old_child is not None:
            self.local_refs.add(old_child)
        if self._history is not None:
            self._history.record(self, "w", parent)
        if self._tracer is not None:
            self._tracer.note(self.tid, parent)
        # Same append-then-direct-apply shortcut as ``write_payload``.
        record = RefUpdateRecord(
            self.tid, self.last_lsn, parent=parent, slot=slot,
            old_child=old_child, new_child=new_child)
        self.last_lsn = lsn = engine.log.append(record)
        store.set_ref(parent, slot, new_child)
        store.set_page_lsn(parent, lsn)

    def create_object(self, partition_id: int, image: ObjectImage,
                      fresh_only: bool = False,
                      cpu_ms: Optional[float] = None
                      ) -> Generator[Any, Any, Oid]:
        """Allocate and initialize a new object; returns its address."""
        self._require_active()
        for child in image.children():
            self._check_ref_source(child)
        yield from self._cpu(self.engine.config.cpu_update_extra_ms
                             if cpu_ms is None else cpu_ms)
        oid = self.engine.store.allocate_object(partition_id, image,
                                                fresh_only=fresh_only)
        yield from self.lock(oid, LockMode.X)
        yield from self.engine.fix_page(oid, dirty=True)
        self._note("w", oid)
        self._log(ObjCreateRecord(self.tid, self.last_lsn, oid=oid,
                                  image=image.encode()))
        self.engine.store.set_page_lsn(oid, self.last_lsn)
        self.created.add(oid)
        self.local_refs.add(oid)
        return oid

    def replace_object(self, oid: Oid,
                       image: ObjectImage) -> Generator[Any, Any, None]:
        """Rewrite an object in place, possibly with a different size.

        Logged as a delete/create pair at the same address, so undo and
        redo compose correctly.  Raises ``PageFullError`` when the grown
        object no longer fits in its page — the schema-evolution
        motivation of paper §1: the object must then be *migrated*.
        """
        self._require_active()
        for child in image.children():
            self._check_ref_source(child)
        yield from self.lock(oid, LockMode.X)
        yield from self.engine.fix_page(oid, dirty=True)
        yield from self._cpu(self.engine.config.cpu_update_extra_ms)
        before = bytes(self.engine.store.read_raw(oid))
        # Apply first: an oversized image must fail *before* anything is
        # logged, leaving the transaction clean to continue.
        self.engine.store.replace_object(oid, image)
        self._note("w", oid)
        self._log(ObjDeleteRecord(self.tid, self.last_lsn, oid=oid,
                                  before_image=before))
        lsn = self._log(ObjCreateRecord(self.tid, self.last_lsn, oid=oid,
                                        image=image.encode()))
        self.engine.store.set_page_lsn(oid, lsn)

    def delete_object(self, oid: Oid,
                      cpu_ms: Optional[float] = None
                      ) -> Generator[Any, Any, None]:
        """Free an object's storage (logged, undoable)."""
        self._require_active()
        yield from self.lock(oid, LockMode.X)
        yield from self.engine.fix_page(oid, dirty=True)
        yield from self._cpu(self.engine.config.cpu_update_extra_ms
                             if cpu_ms is None else cpu_ms)
        before = self.engine.store.read_raw(oid)
        self._note("w", oid)
        self._log(ObjDeleteRecord(self.tid, self.last_lsn, oid=oid,
                                  before_image=bytes(before)))
        self.engine.store.free_object(oid)

    # -- completion ----------------------------------------------------------------

    def commit(self) -> Generator[Any, Any, None]:
        """Commit: log, force the log (group commit), release all locks."""
        self._require_active()
        lsn = self._log(CommitRecord(self.tid, self.last_lsn))
        yield from self.engine.log.flush(lsn)
        self.status = TxnStatus.COMMITTED
        self.engine.txns.finish(self)
        if self._tracer is not None:
            self._tracer.on_commit(self.tid)

    def abort(self, reason: str = "user") -> Generator[Any, Any, None]:
        """Roll back every change via the undo chain, writing CLRs.

        ``reason`` tags the abort for accounting (``"deadlock"`` when a
        lock timeout or waits-for victim triggered it) — it does not
        change rollback behaviour.
        """
        self._require_active()
        self.abort_reason = reason
        lsn = self.last_lsn
        while lsn:
            record = self.engine.log.read(lsn)
            if record.tid != self.tid:
                raise TransactionStateError(
                    f"undo chain of txn {self.tid} reached foreign {record}")
            if isinstance(record, ClrRecord):
                lsn = record.undo_next_lsn
                continue
            if record.kind in PHYSICAL_KINDS:
                yield from self._cpu(self.engine.config.cpu_undo_per_op_ms)
                inverse = invert_record(record)
                clr = ClrRecord(self.tid, self.last_lsn,
                                undo_next_lsn=record.prev_lsn,
                                undone_lsn=record.lsn,
                                action=inverse.encode())
                clr_lsn = self._log(clr)
                apply_record(self.engine.store, inverse, lsn=clr_lsn)
            lsn = record.prev_lsn
        self._log(AbortRecord(self.tid, self.last_lsn))
        self.status = TxnStatus.ABORTED
        self.engine.txns.finish(self)
        if self._tracer is not None:
            self._tracer.on_abort(self.tid)

    # -- helpers -----------------------------------------------------------------------

    def held_locks(self) -> Set[Oid]:
        return self.engine.locks.held_keys(self.tid)

    def _cpu(self, duration: float) -> Generator[Any, Any, None]:
        if duration > 0:
            yield from self.engine.cpu.use(duration)

    def _note(self, action: str, oid: Oid) -> None:
        """Feed one observed access into the engine's history recorder
        (``repro.explore``'s serializability oracle) and the clustering
        tracer (``repro.cluster``'s heat/affinity statistics); no-op
        otherwise."""
        if self._history is not None:
            self._history.record(self, action, oid)
        if self._tracer is not None:
            self._tracer.note(self.tid, oid)

    def _log(self, record: LogRecord) -> int:
        lsn = self.engine.log.append(record)
        self.last_lsn = lsn
        return lsn

    def _log_and_apply(self, record: LogRecord) -> None:
        """WAL: append first, then apply — atomically in simulated time."""
        lsn = self._log(record)
        apply_record(self.engine.store, record, lsn=lsn)

    def _check_ref_source(self, child: Oid) -> None:
        if not self.engine.config.enforce_ref_protocol or self.system:
            return
        if child not in self.local_refs and child not in self.created:
            raise ReferenceProtocolError(
                f"txn {self.tid} uses {child} without having read a parent "
                f"of it or created it")

    def _require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"txn {self.tid} is {self.status.value}")

    def __repr__(self) -> str:
        kind = "sys" if self.system else "usr"
        return f"<Txn {self.tid} {kind} {self.status.value}>"
