"""Latches: short-term physical-consistency locks.

The fuzzy traversal (paper §3.4) "does not obtain locks on the objects
encountered; instead, a latch is obtained to ensure physical consistency
of the object while it is being read.  The latch is released after the
object has been read and all references out of the object have been
noted."  Latches carry no transactional bookkeeping, are always held for
bounded time, and are never involved in deadlock detection.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..sim import Mutex, Simulator


class LatchManager:
    """Per-key mutexes created on demand and discarded when idle."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._latches: Dict[object, Mutex] = {}
        self.acquisitions = 0

    def latch(self, key) -> Generator[Any, Any, None]:
        """Acquire the latch on ``key`` (generator; blocking)."""
        mutex = self._latches.get(key)
        if mutex is None:
            mutex = Mutex(self.sim, name=f"latch:{key}")
            self._latches[key] = mutex
        yield from mutex.acquire()
        self.acquisitions += 1

    def unlatch(self, key) -> None:
        mutex = self._latches.get(key)
        if mutex is None:
            raise KeyError(f"no latch held on {key}")
        mutex.release()
        if not mutex.locked:
            del self._latches[key]

    def is_latched(self, key) -> bool:
        mutex = self._latches.get(key)
        return mutex is not None and mutex.locked

    def latched(self, key):
        """Context-manager-like generator pair is not expressible with
        ``yield from`` cleanly; callers use try/finally::

            yield from latches.latch(oid)
            try:
                ...
            finally:
                latches.unlatch(oid)
        """
        raise NotImplementedError("use latch()/unlatch() with try/finally")
