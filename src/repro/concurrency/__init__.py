"""Concurrency control: the lock manager and latches."""

from .latch import LatchManager
from .locks import (DeadlockError, LockManager, LockMode, LockStats,
                    LockTimeoutError)

__all__ = [
    "DeadlockError",
    "LatchManager",
    "LockManager",
    "LockMode",
    "LockStats",
    "LockTimeoutError",
]
