"""Concurrency control: the lock manager and latches."""

from .latch import LatchManager
from .locks import LockManager, LockMode, LockStats, LockTimeoutError

__all__ = [
    "LatchManager",
    "LockManager",
    "LockMode",
    "LockStats",
    "LockTimeoutError",
]
