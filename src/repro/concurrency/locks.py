"""Object-level lock manager.

Shared/exclusive locks with FIFO queues, lock upgrades, and — exactly as
in the paper's experiments — a lock-timeout mechanism for deadlock
handling ("a lock timeout mechanism was used to handle deadlocks and was
set to one second", §5).

Beyond the paper's timeout scheme, the manager can run a **waits-for
deadlock detector** (``detection="waits-for"``): whenever a request has
to block, the new wait edge is checked for a cycle in the waits-for
graph, and if the requester closed a cycle it is made the victim
immediately — a :class:`DeadlockError` (a :class:`LockTimeoutError`
subclass, so every existing abort/retry path applies) is raised at block
time instead of one full timeout later.  Detection-at-block catches
*every* deadlock, because a cycle can only come into existence at the
instant its final wait edge is added; the victim choice (the requester
that closed the cycle) is therefore deterministic.  The timeout stays
armed as a fallback for non-cycle starvation.  The waits-for graph
includes both lock holders and incompatible requests queued ahead
(grants are FIFO: a request behind a blocked request is blocked too).

Two features exist specifically for the paper's algorithms:

* **Strict 2PL bookkeeping** — ``release_all(tid)`` frees everything a
  transaction holds at commit/abort time.
* **Lock-history tracking (§4.1)** — when transactions are allowed to
  release locks early (short-duration locks instead of strict 2PL), the
  lock manager "keep[s] track of which active transactions had acquired
  short duration locks on which objects"; the reorganizer then waits for
  every such transaction to complete, which restores strict-2PL behaviour
  *with respect to the reorganizer only*.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, Iterable, Optional, Set

from ..sim import Event, Simulator, Wait, WaitTimeout

#: Fault-injection hook: called with (tid, key, mode) whenever a request
#: would have to wait; returning True forces an immediate timeout
#: (simulating a lock-timeout storm / deadlock victim).
TimeoutFaultHook = Callable[[int, object, "LockMode"], bool]


class LockMode(enum.Enum):
    """Lock modes, Gray-style multi-granularity lattice.

    The flat manager only ever grants S and X.  The intention modes
    (IS/IX/SIX) exist for :class:`repro.hlock.HierarchicalLockManager`,
    which plants them on ancestor granules (partition, page) before
    locking an object; keeping the whole lattice here lets the
    hierarchical manager reuse every queue/upgrade/dispatch path below
    unchanged.
    """

    IS = "IS"
    IX = "IX"
    S = "S"
    SIX = "SIX"
    X = "X"


#: requested mode -> set of already-granted modes it is compatible with
#: (the classic Gray compatibility matrix).
_COMPATIBLE: Dict[LockMode, frozenset] = {
    LockMode.IS: frozenset({LockMode.IS, LockMode.IX, LockMode.S,
                            LockMode.SIX}),
    LockMode.IX: frozenset({LockMode.IS, LockMode.IX}),
    LockMode.S: frozenset({LockMode.IS, LockMode.S}),
    LockMode.SIX: frozenset({LockMode.IS}),
    LockMode.X: frozenset(),
}

#: held mode -> modes it satisfies re-entrantly (no upgrade needed).
_COVERS: Dict[LockMode, frozenset] = {
    LockMode.IS: frozenset({LockMode.IS}),
    LockMode.IX: frozenset({LockMode.IX, LockMode.IS}),
    LockMode.S: frozenset({LockMode.S, LockMode.IS}),
    LockMode.SIX: frozenset({LockMode.SIX, LockMode.S, LockMode.IX,
                             LockMode.IS}),
    LockMode.X: frozenset({LockMode.X, LockMode.SIX, LockMode.S,
                           LockMode.IX, LockMode.IS}),
}

#: (held, requested) -> the weakest single mode covering both; what an
#: upgrade targets.  sup(S, X) = X; sup(S, IX) = SIX — the SIX mode
#: exists precisely as this supremum.
_SUP: Dict[LockMode, Dict[LockMode, LockMode]] = {
    a: {
        b: next(m for m in (LockMode.IS, LockMode.IX, LockMode.S,
                            LockMode.SIX, LockMode.X)
                if a in _COVERS[m] and b in _COVERS[m])
        for b in LockMode
    }
    for a in LockMode
}


class LockTimeoutError(Exception):
    """A lock request timed out — treated as a deadlock; the requester
    aborts (user transactions) or retries (the reorganizer, §4.4)."""

    def __init__(self, tid: int, key, mode: LockMode):
        super().__init__(f"txn {tid} timed out requesting {mode.value} on {key}")
        self.tid = tid
        self.key = key
        self.mode = mode


class DeadlockError(LockTimeoutError):
    """The waits-for detector proved a cycle and chose this requester as
    the victim.  Subclasses :class:`LockTimeoutError` so every existing
    handler (transaction abort + retry, reorganizer batch retry) treats
    a detected deadlock exactly like a timed-out one — just much sooner.
    """

    def __init__(self, tid: int, key, mode: LockMode, cycle):
        Exception.__init__(
            self, f"txn {tid} would deadlock requesting {mode.value} on "
                  f"{key} (cycle {'→'.join(str(t) for t in cycle)})")
        self.tid = tid
        self.key = key
        self.mode = mode
        #: The tids on the waits-for cycle the request would have closed.
        self.cycle = tuple(cycle)


class _Request:
    __slots__ = ("tid", "mode", "event", "upgrade")

    def __init__(self, tid: int, mode: LockMode, event: Event, upgrade: bool):
        self.tid = tid
        self.mode = mode
        self.event = event
        self.upgrade = upgrade


class _LockEntry:
    __slots__ = ("granted", "queue")

    def __init__(self) -> None:
        self.granted: Dict[int, LockMode] = {}
        self.queue: Deque[_Request] = deque()


class LockStats:
    """Aggregate contention counters, reported by the benchmarks."""

    __slots__ = ("requests", "waits", "timeouts", "forced_timeouts",
                 "total_wait_ms", "deadlock_victims", "cycles_detected",
                 "table_peak", "escalations", "deescalations",
                 "escalation_failures")

    def __init__(self) -> None:
        self.requests = 0
        self.waits = 0
        self.timeouts = 0
        self.forced_timeouts = 0
        self.total_wait_ms = 0.0
        #: Requests refused at block time by the waits-for detector.
        self.deadlock_victims = 0
        #: Distinct cycles the detector observed (== victims: one victim
        #: breaks exactly the cycle it closed).
        self.cycles_detected = 0
        #: High-water mark of live lock-table entries (distinct keys with
        #: at least one grant or waiter) — the axis the hierarchical
        #: manager's escalation trades conflict rate against.
        self.table_peak = 0
        #: Hierarchical-manager escalation counters; stay 0 on the flat
        #: manager.
        self.escalations = 0
        self.deescalations = 0
        self.escalation_failures = 0

    def __repr__(self) -> str:
        return (f"<LockStats requests={self.requests} waits={self.waits} "
                f"timeouts={self.timeouts} "
                f"deadlock_victims={self.deadlock_victims}>")


class LockManager:
    """S/X locks keyed by arbitrary hashable keys (OIDs in practice)."""

    def __init__(self, sim: Simulator, timeout_ms: float = 1000.0,
                 track_history: bool = True, detection: str = "timeout"):
        if detection not in ("timeout", "waits-for"):
            raise ValueError(f"detection={detection!r}; choose 'timeout' "
                             f"or 'waits-for'")
        self.sim = sim
        self.timeout_ms = timeout_ms
        self.track_history = track_history
        self.detection = detection
        self._table: Dict[object, _LockEntry] = {}
        #: tid -> key it is currently blocked on (a process waits on at
        #: most one lock at a time) — the waits-for graph's wait edges.
        self._waiting: Dict[int, object] = {}
        self._held_by: Dict[int, Set[object]] = {}
        # §4.1 history: key -> active tids that ever locked it, + reverse.
        self._history: Dict[object, Set[int]] = {}
        self._tid_history: Dict[int, Set[object]] = {}
        self.fault_hook: Optional[TimeoutFaultHook] = None
        #: Observer hook: called with ("grant", tid, key, mode) after every
        #: grant or upgrade, and ("release", tid, key, None) after every
        #: release.  Used by repro.explore's lock-footprint oracle; must not
        #: touch lock state.
        self.observer: Optional[Callable[[str, int, object,
                                          Optional[LockMode]], None]] = None
        self.stats = LockStats()

    # -- acquisition ---------------------------------------------------------

    def try_acquire(self, tid: int, key, mode: LockMode) -> bool:
        """Synchronous fast path: grant immediately if possible.

        Counts the request either way.  Returns ``False`` when the caller
        must wait — follow up with :meth:`acquire_wait` (or just use
        :meth:`acquire`, which composes both).  Exists so the hottest
        transactional paths can skip a generator on the uncontended case.
        """
        self.stats.requests += 1
        entry = self._table.get(key)
        if entry is None:
            # First touch of a key: trivially grantable, nothing queued.
            entry = _LockEntry()
            self._table[key] = entry
            if len(self._table) > self.stats.table_peak:
                self.stats.table_peak = len(self._table)
            self._grant(entry, tid, mode, key)
            return True

        held = entry.granted.get(tid)
        if held is not None:
            if held is LockMode.X or held is mode or mode in _COVERS[held]:
                return True  # re-entrant; already strong enough
            # Upgrade to the supremum of held and requested (S+X → X,
            # S+IX → SIX, ...); granted synchronously when compatible with
            # every *other* holder — for the flat manager's only upgrade
            # (S → X) that is exactly the "sole holder" rule.
            target = _SUP[held][mode]
            if self._grantable(entry, target, ignore_tid=tid):
                entry.granted[tid] = target
                if self.observer is not None:
                    self.observer("grant", tid, key, target)
                return True
            return False
        if not entry.queue and self._grantable(entry, mode):
            self._grant(entry, tid, mode, key)
            return True
        return False

    def acquire(self, tid: int, key, mode: LockMode,
                timeout_ms: Optional[float] = None):
        """Blocking acquire (generator).  Raises :class:`LockTimeoutError`
        if not granted within the timeout."""
        if self.try_acquire(tid, key, mode):
            return
        yield from self.acquire_wait(tid, key, mode, timeout_ms)

    def acquire_wait(self, tid: int, key, mode: LockMode,
                     timeout_ms: Optional[float] = None):
        """The wait path — only valid right after :meth:`try_acquire`
        returned ``False`` (the entry exists and is not grantable)."""
        entry = self._table[key]
        held = entry.granted.get(tid)
        upgrade = held is not None and mode not in _COVERS[held]

        # Upgrades queue at the front (they already hold a lock and
        # would otherwise deadlock behind requests blocked on it).
        if self.fault_hook is not None and self.fault_hook(tid, key, mode):
            # Injected lock-timeout storm: fail as if the full timeout had
            # elapsed, without occupying a queue slot.
            self.stats.timeouts += 1
            self.stats.forced_timeouts += 1
            raise LockTimeoutError(tid, key, mode)
        gate = self.sim.event(name=f"lock:{key}:{tid}")
        request = _Request(tid, _SUP[held][mode] if upgrade else mode,
                           gate, upgrade)
        if upgrade:
            entry.queue.appendleft(request)
        else:
            entry.queue.append(request)
        self.stats.waits += 1
        self._waiting[tid] = key
        if self.detection == "waits-for":
            cycle = self._find_cycle(tid)
            if cycle is not None:
                # The requester closed a waits-for cycle: it is the
                # victim, refused at block time (the timeout never runs).
                self.stats.cycles_detected += 1
                self.stats.deadlock_victims += 1
                del self._waiting[tid]
                entry.queue.remove(request)
                self._dispatch(entry, key)
                raise DeadlockError(tid, key, mode, cycle)
        wait_started = self.sim.now
        effective_timeout = (timeout_ms if timeout_ms is not None
                             else self.timeout_ms)
        if effective_timeout == float("inf"):
            effective_timeout = None  # wait forever (PQR's quiesce locks)
        try:
            yield Wait(gate, timeout=effective_timeout)
        except WaitTimeout:
            self.stats.timeouts += 1
            try:
                entry.queue.remove(request)
            except ValueError:
                pass  # granted concurrently with the timeout firing
            else:
                if self._waiting.get(tid) == key:
                    del self._waiting[tid]
                self._dispatch(entry, key)
                raise LockTimeoutError(tid, key, mode) from None
        except BaseException:
            # Killed while blocked (chaos kill): withdraw the queued
            # request so a later dispatch doesn't grant to the corpse.
            # A lock granted concurrently with the kill is settled when
            # the orphaned transaction is reaped (``release_all``).
            try:
                entry.queue.remove(request)
            except ValueError:
                pass
            else:
                self._dispatch(entry, key)
            if self._waiting.get(tid) == key:
                del self._waiting[tid]
            raise
        finally:
            self.stats.total_wait_ms += self.sim.now - wait_started

    # -- release -------------------------------------------------------------------

    def release(self, tid: int, key) -> None:
        """Release one lock (short-duration-lock mode, §4.1)."""
        entry = self._table.get(key)
        if entry is None or tid not in entry.granted:
            raise KeyError(f"txn {tid} holds no lock on {key}")
        del entry.granted[tid]
        held = self._held_by.get(tid)
        if held is not None:
            held.discard(key)
        if self.observer is not None:
            self.observer("release", tid, key, None)
        self._dispatch(entry, key)

    def release_all(self, tid: int) -> Set[object]:
        """Release everything ``tid`` holds (strict 2PL at txn end)."""
        keys = self._held_by.pop(tid, set())
        table = self._table
        observer = self.observer
        for key in keys:
            entry = table.get(key)
            if entry is not None and tid in entry.granted:
                del entry.granted[tid]
                if observer is not None:
                    observer("release", tid, key, None)
                if entry.queue:
                    self._dispatch(entry, key)
                elif not entry.granted:
                    # ``_dispatch``'s empty-entry cleanup, inlined for the
                    # common uncontended release (nothing queued).
                    del table[key]
        return keys

    def transaction_finished(self, tid: int) -> None:
        """Clear §4.1 lock history for a completed transaction."""
        for key in self._tid_history.pop(tid, set()):
            lockers = self._history.get(key)
            if lockers is not None:
                lockers.discard(tid)
                if not lockers:
                    del self._history[key]

    # -- introspection ----------------------------------------------------------------

    def holders(self, key) -> Dict[int, LockMode]:
        entry = self._table.get(key)
        return dict(entry.granted) if entry else {}

    def holds(self, tid: int, key, mode: Optional[LockMode] = None) -> bool:
        held = self._table.get(key)
        if held is None or tid not in held.granted:
            return False
        if mode is None:
            return True
        m = held.granted[tid]
        return m is LockMode.X or m is mode or mode in _COVERS[m]

    def held_keys(self, tid: int) -> Set[object]:
        return set(self._held_by.get(tid, set()))

    def lock_count(self, tid: int) -> int:
        return len(self._held_by.get(tid, ()))

    def object_lock_count(self, tid: int) -> int:
        """Distinct *object-level* locks held — the unit of the paper's
        two-lock footprint guarantee.  Identical to :meth:`lock_count`
        here; the hierarchical manager excludes ancestor granules."""
        return len(self._held_by.get(tid, ()))

    def counters_summary(self, force: bool = False):
        """Lock-manager counters for metrics / bench payloads.

        The flat manager returns ``None`` unless forced, so every
        pre-existing summary (and committed BENCH_*.json figure) stays
        byte-identical; the hierarchical manager always reports.
        """
        if not force:
            return None
        return self._counters("flat")

    def _counters(self, manager: str) -> Dict[str, object]:
        s = self.stats
        return {
            "manager": manager,
            "acquires": s.requests,
            "conflicts": s.waits,
            "escalations": s.escalations,
            "deescalations": s.deescalations,
            "table_peak": s.table_peak,
        }

    def waiter_count(self, key) -> int:
        entry = self._table.get(key)
        return len(entry.queue) if entry else 0

    def ever_lockers(self, key) -> Set[int]:
        """Active transactions that have ever locked ``key`` (§4.1)."""
        return set(self._history.get(key, ()))

    def waiting_on(self, tid: int):
        """The key ``tid`` is currently blocked on, or ``None``."""
        return self._waiting.get(tid)

    # -- waits-for deadlock detection ----------------------------------------------

    def _blockers(self, tid: int, key) -> Set[int]:
        """Tids that ``tid``'s queued request on ``key`` waits for: every
        granted holder (other than ``tid`` itself — upgrades hold S), plus
        every incompatible request queued ahead of it (grants are FIFO, so
        a request behind a blocked request is transitively blocked)."""
        entry = self._table.get(key)
        if entry is None:
            return set()
        out = {t for t in entry.granted if t != tid}
        for request in entry.queue:
            if request.tid == tid:
                break
            out.add(request.tid)
        return out

    def _find_cycle(self, start: int):
        """DFS over the waits-for graph from ``start`` (which just added
        a wait edge); returns the tid cycle as a list, or ``None``.  Only
        waiting tids have out-edges, so the graph is tiny — one node per
        blocked process."""
        path: list = []
        on_path: Set[int] = set()
        # stack of (tid, iterator over its blockers)
        key = self._waiting.get(start)
        if key is None:
            return None
        stack = [(start, iter(self._blockers(start, key)))]
        path.append(start)
        on_path.add(start)
        visited: Set[int] = {start}
        while stack:
            tid, edges = stack[-1]
            advanced = False
            for nxt in edges:
                if nxt in on_path:
                    # Found a cycle: slice the path from nxt onwards.
                    return path[path.index(nxt):]
                if nxt in visited:
                    continue
                visited.add(nxt)
                nxt_key = self._waiting.get(nxt)
                if nxt_key is None:
                    continue  # not blocked: no out-edges
                stack.append((nxt, iter(self._blockers(nxt, nxt_key))))
                path.append(nxt)
                on_path.add(nxt)
                advanced = True
                break
            if not advanced:
                stack.pop()
                on_path.discard(path.pop())
        return None

    # -- internals -----------------------------------------------------------------------

    def _grantable(self, entry: _LockEntry, mode: LockMode,
                   ignore_tid: Optional[int] = None) -> bool:
        # Allocation-free: this runs on every request (and again per
        # queued request on every release), so no throwaway mode list.
        granted = entry.granted
        if not granted:
            return True
        if mode is LockMode.S:
            # Fast path for the flat manager's dominant request mode: the
            # extra identity checks are no-ops on a pure S/X table.
            for t, m in granted.items():
                if t != ignore_tid and (m is LockMode.X or m is LockMode.IX
                                        or m is LockMode.SIX):
                    return False
            return True
        if mode is LockMode.X:
            for t in granted:
                if t != ignore_tid:
                    return False
            return True
        compatible = _COMPATIBLE[mode]
        for t, m in granted.items():
            if t != ignore_tid and m not in compatible:
                return False
        return True

    def _grant(self, entry: _LockEntry, tid: int, mode: LockMode, key) -> None:
        # get-or-insert instead of ``setdefault``: this runs per grant,
        # and ``setdefault`` allocates its throwaway default set even on
        # the (overwhelmingly common) hit.
        entry.granted[tid] = mode
        held = self._held_by.get(tid)
        if held is None:
            held = self._held_by[tid] = set()
        held.add(key)
        if self.track_history:
            lockers = self._history.get(key)
            if lockers is None:
                lockers = self._history[key] = set()
            lockers.add(tid)
            keys = self._tid_history.get(tid)
            if keys is None:
                keys = self._tid_history[tid] = set()
            keys.add(key)
        if self.observer is not None:
            self.observer("grant", tid, key, mode)

    def _dispatch(self, entry: _LockEntry, key) -> None:
        """Grant queued requests from the front while compatible (FIFO)."""
        while entry.queue:
            request = entry.queue[0]
            if request.upgrade:
                if self._grantable(entry, request.mode,
                                   ignore_tid=request.tid):
                    entry.queue.popleft()
                    self._waiting.pop(request.tid, None)
                    entry.granted[request.tid] = request.mode
                    if self.observer is not None:
                        self.observer("grant", request.tid, key,
                                      request.mode)
                    request.event.succeed()
                    continue
                break
            if self._grantable(entry, request.mode):
                entry.queue.popleft()
                self._waiting.pop(request.tid, None)
                self._grant(entry, request.tid, request.mode, key)
                request.event.succeed()
                continue
            break
        if not entry.granted and not entry.queue and \
                self._table.get(key) is entry:
            # Keep the table from accumulating dead entries.
            del self._table[key]
