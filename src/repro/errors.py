"""Engine-level exceptions."""


class EngineError(Exception):
    """Base class for engine errors."""


class TransactionStateError(EngineError):
    """An operation was attempted on a transaction in the wrong state."""


class ReferenceProtocolError(EngineError):
    """A transaction used a reference it never legitimately obtained.

    The system model (paper §2) allows a transaction to use a reference
    only if it copied it out of an object it had locked (or created the
    object itself).  The engine enforces this in debug mode because the
    correctness proofs of Lemmas 3.2/3.3 rely on it.
    """


class ReorganizationError(EngineError):
    """The reorganizer hit an unrecoverable condition."""
