"""Engine-level exceptions."""


class EngineError(Exception):
    """Base class for engine errors."""


class TransactionStateError(EngineError):
    """An operation was attempted on a transaction in the wrong state."""


class ReferenceProtocolError(EngineError):
    """A transaction used a reference it never legitimately obtained.

    The system model (paper §2) allows a transaction to use a reference
    only if it copied it out of an object it had locked (or created the
    object itself).  The engine enforces this in debug mode because the
    correctness proofs of Lemmas 3.2/3.3 rely on it.
    """


class ReorganizationError(EngineError):
    """The reorganizer hit an unrecoverable condition."""


class WriteConflictError(EngineError):
    """First-committer-wins validation failed (:mod:`repro.mvcc`).

    A snapshot transaction tried to commit a write to an object that
    another transaction committed a newer version of after this one's
    begin timestamp.  The transaction's buffered writes are discarded;
    callers retry the whole logical transaction on a fresh snapshot,
    exactly as the serving layer retries a 2PL lock timeout.

    ``oid`` is the first conflicting logical object when known.
    """

    def __init__(self, message: str, oid=None):
        super().__init__(message)
        self.oid = oid


class NodeUnreachableError(EngineError):
    """A cross-node operation exhausted its retries without an answer.

    Raised by the distributed layer (:mod:`repro.dist`) when a remote
    node is partitioned away, crashed, or dropping messages past the
    RPC deadline/retry budget.  Typed so callers can tell "the remote
    node is gone" from a local failure: the serving layer retries or
    sheds such requests; the distributed reorganizer pauses until the
    failure detector reports the peer alive again.

    ``node`` is the unreachable node's id when known.
    """

    def __init__(self, message: str, node: int = -1):
        super().__init__(message)
        self.node = node
