"""The storage engine: everything wired together.

This is the stand-in for Brahmā, the storage manager the paper's
experiments ran on: slotted-page object store with physical OIDs, strict
2PL with a 1-second lock timeout for deadlocks, WAL through an
ARIES-style implementation, extendible-hash-backed ERT/TRT maintained by
a log analyzer, latches, checkpoints and restart recovery.

An engine lives inside one :class:`~repro.sim.Simulator`; all blocking
operations are generators driven by simulation processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .concurrency import LatchManager
from .hlock import build_lock_manager
from .config import SystemConfig
from .refs import ExternalReferenceTable, LogAnalyzer, TemporaryReferenceTable
from .sim import Delay, Resource, Simulator
from .storage import ObjectStore, Oid
from .storage.buffer import BufferPool
from .txn import TransactionManager
from .wal import (
    CheckpointRecord,
    LogManager,
    RecoveryManager,
    SnapshotStore,
)


@dataclass
class CrashImage:
    """What survives a simulated system failure.

    The database is memory-resident (paper §5.3); a crash leaves behind
    only the flushed log prefix — a CRC-framed byte stream that may end
    in a torn record — and the checkpoint snapshots.
    """

    durable_log: bytes
    snapshots: SnapshotStore
    config: SystemConfig


@dataclass
class IntegrityReport:
    """Result of a full physical/logical consistency sweep."""

    dangling_refs: List[Tuple[Oid, int, Oid]] = field(default_factory=list)
    ert_missing: List[Tuple[int, Oid, Oid]] = field(default_factory=list)
    ert_spurious: List[Tuple[int, Oid, Oid]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.dangling_refs or self.ert_missing
                    or self.ert_spurious)

    def problems(self) -> List[str]:
        out = [f"dangling ref {p}[{s}] -> {c}"
               for p, s, c in self.dangling_refs]
        out += [f"ERT p{pid} missing {c} <- {p}"
                for pid, c, p in self.ert_missing]
        out += [f"ERT p{pid} spurious {c} <- {p}"
                for pid, c, p in self.ert_spurious]
        return out


class StorageEngine:
    """One database instance: store + WAL + locks + reference tables."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 sim: Optional[Simulator] = None):
        self.config = config or SystemConfig()
        self.sim = sim or Simulator()
        self.cpu = Resource(self.sim, capacity=self.config.cpu_count,
                            name="cpu")
        # Shared Delay commands for the fixed per-access CPU charges: the
        # kernel only ever reads ``dt`` off a yielded Delay, so the hot
        # transactional paths can reuse one instance per configured cost
        # instead of allocating one per object access.
        self._access_delay = Delay(self.config.cpu_object_access_ms)
        self._update_delay = Delay(self.config.cpu_update_extra_ms)
        # Hot-path guards: one attribute read instead of a config chase
        # per access (a zero cost skips the CPU resource entirely).
        self._charge_access = self.config.cpu_object_access_ms > 0
        self._charge_update = self.config.cpu_update_extra_ms > 0
        self.log_disk = Resource(self.sim, capacity=1, name="log-disk")
        self.data_disk = Resource(self.sim, capacity=1, name="data-disk")
        self.buffer = (BufferPool(self.sim, self.data_disk,
                                  capacity_pages=self.config.buffer_pool_pages,
                                  read_ms=self.config.disk_read_ms,
                                  write_ms=self.config.disk_write_ms,
                                  io_retry_limit=self.config.io_retry_limit,
                                  io_retry_backoff_ms=self.config.io_retry_backoff_ms)
                       if self.config.disk_resident else None)
        self.store = ObjectStore(page_size=self.config.page_size)
        self.log = LogManager(self.sim, self.log_disk,
                              flush_time_ms=self.config.log_flush_ms,
                              io_retry_limit=self.config.io_retry_limit,
                              io_retry_backoff_ms=self.config.io_retry_backoff_ms)
        self.locks = build_lock_manager(self.sim, self.config)
        self.latches = LatchManager(self.sim)
        self._erts: Dict[int, ExternalReferenceTable] = {}
        self.analyzer = LogAnalyzer(
            self.ert_for, strict_2pl=self.config.strict_transactions)
        self.log.subscribe(self.analyzer.process)
        self.txns = TransactionManager(self)
        self.snapshots = SnapshotStore()
        #: Populated by :meth:`recover` on engines built from a crash image.
        self.recovery_stats = None
        #: Set by :meth:`repro.faults.FaultInjector.attach`; ``crash()``
        #: detaches it so a recovered engine starts fault-free.
        self.injector = None
        #: True once the store holds content that never went through the
        #: WAL (the §5.2 bulk load).  Recorded in every checkpoint so
        #: single-page repair knows when log replay alone cannot rebuild
        #: a page from scratch.
        self.unlogged_base = False
        #: Called with ``(payload, snapshot_id, lsn)`` after every
        #: checkpoint; the fault injector uses it to corrupt just-written
        #: snapshot pages (torn checkpoint writes).
        self.checkpoint_hook = None
        #: Access-history recorder (``repro.explore.history.HistoryRecorder``)
        #: fed by Transaction/TransactionManager when installed.
        self.history = None
        #: Attached :class:`repro.mvcc.MvccTier` (versioned read path);
        #: ``None`` keeps the classic 2PL-only engine.  Set by
        #: ``MvccTier.attach``/``recover`` — engine restart does *not*
        #: carry it over, recovery paths rebuild it explicitly.
        self.mvcc = None
        #: Clustering tracer (``repro.cluster.ClusterTracer``) fed by
        #: user transactions when installed; ``None`` costs nothing and
        #: tracing itself never perturbs the simulation.
        self.tracer = None
        #: ``oid -> bool`` existence oracle for objects in partitions this
        #: store does not hold (repro.dist wires the cluster directory
        #: here).  ``verify_integrity`` consults it before declaring a
        #: cross-node reference dangling; ``None`` keeps the historical
        #: single-node behaviour.
        self.remote_resolver = None
        #: ``partition_id -> set[(child, parent)]`` of cross-node
        #: references into a locally-owned partition, computed by the
        #: cluster from the *other* nodes' stores.  Local page scans
        #: cannot see remote parents, so without this hook a correct
        #: remote-parent ERT entry would read as spurious.
        self.remote_ert_expected = None
        self._wire_read_verification()

    def _wire_read_verification(self) -> None:
        if self.buffer is not None and self.config.verify_page_reads:
            self.buffer.verify_hook = self._verify_page_read

    def _verify_page_read(self, key) -> None:
        """Checksum-verify a page as the buffer pool reads it in."""
        partition_id, page_no = key
        if not self.store.has_partition(partition_id):
            return
        partition = self.store.partition(partition_id)
        if page_no in partition._pages:
            partition.page(page_no).verify()

    def spawn_scrubber(self):
        """Start the background checksum scrubber configured by
        ``scrub_interval_ms`` (no-op when disabled); returns the
        :class:`~repro.storage.scrub.Scrubber` or ``None``."""
        if self.config.scrub_interval_ms <= 0:
            return None
        from .storage.scrub import Scrubber
        scrubber = Scrubber(
            self, interval_ms=self.config.scrub_interval_ms,
            pages_per_sweep=self.config.scrub_pages_per_sweep)
        self.sim.spawn(scrubber.run(), name="scrubber")
        return scrubber

    # -- partitions & reference tables ------------------------------------------

    def create_partition(self, partition_id: int,
                         max_pages: Optional[int] = None):
        return self.store.create_partition(partition_id, max_pages=max_pages)

    def ert_for(self, partition_id: int) -> ExternalReferenceTable:
        ert = self._erts.get(partition_id)
        if ert is None:
            ert = ExternalReferenceTable(
                partition_id,
                bucket_capacity=self.config.ert_bucket_capacity)
            self._erts[partition_id] = ert
        return ert

    def fix_page(self, oid: Oid, dirty: bool = False):
        """Pin an object's page in the buffer pool (no-op when the
        database is memory-resident, the paper's §5.3 setting)."""
        if self.buffer is not None:
            yield from self.buffer.fix((oid.partition, oid.page),
                                       dirty=dirty)

    def activate_trt(self, partition_id: int) -> TemporaryReferenceTable:
        """Bring a TRT into existence for a reorganization (§4.5: the TRT
        "is required only if a reorganization process is in progress and
        does not exist otherwise")."""
        trt = TemporaryReferenceTable(
            partition_id, bucket_capacity=self.config.ert_bucket_capacity)
        self.analyzer.activate_trt(trt)
        return trt

    def deactivate_trt(self, partition_id: int) -> None:
        self.analyzer.deactivate_trt(partition_id)

    # -- checkpoints, crash, recovery ----------------------------------------------

    def take_checkpoint(self) -> int:
        """Take a sharp checkpoint; returns the CHECKPOINT record's LSN.

        Snapshots all pages, the ERTs and the tid counter, then logs and
        flushes a CHECKPOINT record naming the snapshot.  Instantaneous in
        simulated time (the paper's experiments checkpoint at load time).
        """
        payload = {
            "store": self.store.snapshot(),
            "erts": {pid: ert.snapshot() for pid, ert in self._erts.items()},
            "next_tid": self.txns._next_tid,
            "unlogged_base": self.unlogged_base,
        }
        snapshot_id = self.snapshots.save(payload)
        active = tuple(
            (tid, self.txns.transaction(tid).last_lsn)
            for tid in sorted(self.txns.active_tids()))
        lsn = self.log.append(CheckpointRecord(
            0, 0, snapshot_id=snapshot_id, active_txns=active))
        self.log.flush_now()
        if self.checkpoint_hook is not None:
            self.checkpoint_hook(payload, snapshot_id, lsn)
        return lsn

    def crash_image(self) -> CrashImage:
        """Capture what survives a failure *without* killing anything.

        The seam for multi-node simulations (:mod:`repro.dist`): a single
        node's crash must capture its own durable state and kill only its
        own processes, while the rest of the cluster keeps running on the
        shared simulator.
        """
        if self.injector is not None:
            self.injector.detach()
        return CrashImage(durable_log=self.log.durable_bytes(),
                          snapshots=self.snapshots,
                          config=self.config)

    def crash(self) -> CrashImage:
        """Simulate a system failure: kill every process, keep only the
        durable state."""
        image = self.crash_image()
        self.sim.kill_all()
        return image

    @classmethod
    def recover(cls, image: CrashImage,
                sim: Optional[Simulator] = None) -> "StorageEngine":
        """Restart recovery: rebuild an engine from a crash image.

        Analysis / redo / undo run over the durable log; the ERTs are
        restored from the last checkpoint and rolled forward by replaying
        the log through the analyzer (§4.4's checkpointed-ERT option).
        """
        engine = cls.__new__(cls)
        engine.config = image.config
        engine.sim = sim or Simulator()
        engine.cpu = Resource(engine.sim, capacity=image.config.cpu_count,
                              name="cpu")
        engine.log_disk = Resource(engine.sim, capacity=1, name="log-disk")
        engine.data_disk = Resource(engine.sim, capacity=1,
                                    name="data-disk")
        engine.buffer = (BufferPool(
            engine.sim, engine.data_disk,
            capacity_pages=image.config.buffer_pool_pages,
            read_ms=image.config.disk_read_ms,
            write_ms=image.config.disk_write_ms,
            io_retry_limit=image.config.io_retry_limit,
            io_retry_backoff_ms=image.config.io_retry_backoff_ms)
            if image.config.disk_resident else None)
        engine.log = LogManager.from_durable(
            engine.sim, engine.log_disk,
            flush_time_ms=image.config.log_flush_ms,
            durable=image.durable_log)
        engine.log.io_retry_limit = image.config.io_retry_limit
        engine.log.io_retry_backoff_ms = image.config.io_retry_backoff_ms
        engine.injector = None
        engine.locks = build_lock_manager(engine.sim, image.config)
        engine.latches = LatchManager(engine.sim)
        engine.snapshots = image.snapshots

        # Restore ERTs from the last durable checkpoint, if any.
        engine._erts = {}
        checkpoint_payload = None
        for record in engine.log.records():
            if isinstance(record, CheckpointRecord) and \
                    image.snapshots.has(record.snapshot_id):
                checkpoint_payload = image.snapshots.load(record.snapshot_id)
        if checkpoint_payload is not None:
            for pid, state in checkpoint_payload["erts"].items():
                engine._erts[pid] = ExternalReferenceTable.restore(
                    pid, state,
                    bucket_capacity=image.config.ert_bucket_capacity)

        engine.analyzer = LogAnalyzer(
            engine.ert_for, strict_2pl=image.config.strict_transactions)
        # Subscribe before running recovery: the undo pass appends CLRs,
        # and aborts that reintroduce deleted references must update the
        # ERTs.  Redo replays the (already-appended) durable records via
        # the replay hook, so nothing is processed twice.
        engine.log.subscribe(engine.analyzer.process)

        recovery = RecoveryManager(
            engine.log, image.snapshots, image.config.page_size,
            replay_hook=engine.analyzer.process)
        engine.store = recovery.run()
        engine.recovery_stats = recovery.stats

        engine.txns = TransactionManager(engine)
        max_tid = 0
        for record in engine.log.records():
            max_tid = max(max_tid, record.tid)
        base_tid = (checkpoint_payload or {}).get("next_tid", 1)
        engine.txns.set_next_tid(max(max_tid + 1, base_tid))
        engine.unlogged_base = bool(
            (checkpoint_payload or {}).get("unlogged_base", False))
        engine.checkpoint_hook = None
        engine.history = None
        engine.mvcc = None
        engine.tracer = None
        engine.remote_resolver = None
        engine.remote_ert_expected = None
        engine._wire_read_verification()
        return engine

    # -- integrity -----------------------------------------------------------------------

    def verify_integrity(self) -> IntegrityReport:
        """Full sweep: no dangling physical references; every ERT holds
        exactly the cross-partition references into its partition.

        With an MVCC tier attached, reference slots hold *logical* OIDs
        and are resolved through the lineage map before the existence
        check; the ERT comparison is skipped, because under lineage
        indirection relocation never patches parents and the reference
        tables exist only for the 2PL reorganizers' benefit.
        """
        report = IntegrityReport()
        lineage = (self.mvcc.resolve_physical if self.mvcc is not None
                   else None)
        actual_ert: Dict[int, set] = {pid: set()
                                      for pid in self.store.partition_ids()}
        for parent in self.store.all_live_oids():
            image = self.store.read_object(parent)
            for slot, child in image.refs():
                if lineage is not None:
                    child = lineage(child)
                if not self.store.exists(child):
                    # A reference into a partition this store does not
                    # hold is cross-node: ask the cluster directory (the
                    # child's owner keeps the authoritative ERT for it).
                    if (self.remote_resolver is not None
                            and not self.store.has_partition(
                                child.partition)):
                        if not self.remote_resolver(child):
                            report.dangling_refs.append(
                                (parent, slot, child))
                        continue
                    report.dangling_refs.append((parent, slot, child))
                elif child.partition != parent.partition:
                    actual_ert[child.partition].add((child, parent))
        if lineage is not None:
            return report
        for pid in self.store.partition_ids():
            recorded = set(self.ert_for(pid).entries())
            expected = actual_ert.get(pid, set())
            if self.remote_ert_expected is not None:
                expected = expected | set(self.remote_ert_expected(pid))
            for child, parent in expected - recorded:
                report.ert_missing.append((pid, child, parent))
            for child, parent in recorded - expected:
                report.ert_spurious.append((pid, child, parent))
        return report

    def __repr__(self) -> str:
        return (f"<StorageEngine partitions={self.store.partition_ids()} "
                f"t={self.sim.now:.1f}ms>")
