"""Partition Quiesce Reorganization (PQR) — the paper's baseline (§5.1).

PQR quiesces the partition before reorganizing it: it write-locks every
object *outside* the partition that references an object inside it (the
ERT's parents), then keeps locking parents surfacing in the TRT until a
fixpoint — after which no transaction can obtain a reference into the
partition, and the off-line migration routine can run safely.

No locks are needed on the partition's own objects: any transaction would
have to come in through an external parent (possibly a persistent root),
and those are all locked.

PQR's lock requests never time out (a deadlock cycle through PQR always
contains a user transaction whose own 1-second timeout breaks it) — a
timeout aborting a reorganization transaction holding hundreds of locks
would be far worse than waiting.
"""

from __future__ import annotations

from typing import Any, Generator, Set

from ..concurrency import LockMode
from ..errors import ReorganizationError
from ..storage.oid import Oid
from .ira import ReorgStats
from .offline import migrate_partition_quiescent
from .plan import RelocationPlan


class PartitionQuiesceReorganizer:
    """The PQR baseline of §5.1."""

    algorithm_name = "pqr"

    def __init__(self, engine, partition_id: int,
                 plan: RelocationPlan = None, reorg_config=None):
        self.engine = engine
        self.partition_id = partition_id
        self.plan = plan or RelocationPlan()
        self.stats = ReorgStats(algorithm=self.algorithm_name,
                                partition_id=partition_id)
        self.quiesce_locks = 0

    def run(self) -> Generator[Any, Any, ReorgStats]:
        engine = self.engine
        if not engine.config.strict_transactions:
            # Quiescing by locking external parents only works when
            # transactions hold their locks to completion: with short-
            # duration locks a transaction could retain a copied-out
            # reference after PQR locked (and it released) the parent.
            # The paper presents PQR under the strict-2PL model only;
            # use IRA (which does the §4.1 history wait) instead.
            raise ReorganizationError(
                "PQR requires strict 2PL; the engine runs short-duration "
                "locks")
        self.stats.started_ms = engine.sim.now
        trt = engine.activate_trt(self.partition_id)
        try:
            # §4.5: ensure the TRT sees every relevant pointer update.
            yield from engine.txns.wait_for_quiesce()
            self.plan.prepare(engine, self.partition_id)
            txn = engine.txns.begin(system=True, reorg_partition=self.partition_id)
            yield from self._quiesce_partition(txn, trt)
            self.stats.max_locks_held = engine.locks.object_lock_count(txn.tid)
            yield from migrate_partition_quiescent(
                engine, txn, self.partition_id, self.plan, self.stats)
            yield from txn.commit()
            self.plan.finalize(engine, self.partition_id)
        finally:
            engine.deactivate_trt(self.partition_id)
        self.stats.trt_peak = trt.stats.peak_size
        self.stats.finished_ms = engine.sim.now
        return self.stats

    def _quiesce_partition(self, txn, trt) -> Generator[Any, Any, None]:
        """Quiesce_Partition of §5.1: lock all ERT parents, then all TRT
        parents, repeating until nothing new surfaces."""
        engine = self.engine
        ert = engine.ert_for(self.partition_id)
        locked: Set[Oid] = set()
        while True:
            unlocked = (ert.all_parents() | trt.all_parents()) - locked
            if not unlocked:
                break
            for parent in sorted(unlocked):
                yield from engine.locks.acquire(
                    txn.tid, parent, LockMode.X, timeout_ms=float("inf"))
                locked.add(parent)
                self.quiesce_locks += 1
