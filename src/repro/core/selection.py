"""Partition-selection policies.

The paper treats "when to reorganize [and] which partition to reorganize"
as an orthogonal problem decided by the driving operation (§2), citing
[CWZ94] for partition-selection policies in garbage collection.  This
module supplies the standard policies a driving utility would use:

* ``fragmentation`` — compact the partition wasting the most page space;
* ``garbage``       — collect the partition with the most unreachable
  bytes (estimated by a reachability sweep from the ERT);
* ``round-robin``   — rotate for background maintenance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..storage.oid import Oid


def fragmentation_score(engine, partition_id: int) -> float:
    """Fraction of the partition's allocated page space not holding live
    data — the compaction payoff."""
    return engine.store.stats(partition_id).fragmentation


def garbage_estimate(engine, partition_id: int) -> Tuple[int, int]:
    """(unreachable object count, unreachable bytes) for a partition.

    Advisory reachability sweep from the partition's ERT — the same
    starting points the fuzzy traversal uses, but without latches or
    simulated cost: callers use it to *choose* a partition, not to
    collect it (the on-line collectors re-derive liveness safely).
    """
    store = engine.store
    ert = engine.ert_for(partition_id)
    live = set()
    stack: List[Oid] = [oid for oid in ert.referenced_objects()
                        if store.exists(oid)]
    while stack:
        oid = stack.pop()
        if oid in live:
            continue
        live.add(oid)
        for child in store.children_of(oid):
            if child.partition == partition_id and child not in live \
                    and store.exists(child):
                stack.append(child)
    count = 0
    size = 0
    for oid in store.live_oids(partition_id):
        if oid not in live:
            count += 1
            size += len(store.read_raw(oid))
    return count, size


class PartitionSelector:
    """Chooses which partition a maintenance utility should work on next."""

    POLICIES = ("fragmentation", "garbage", "round-robin")

    def __init__(self, policy: str = "fragmentation"):
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {self.POLICIES}")
        self.policy = policy
        self._cursor = -1

    def choose(self, engine,
               candidates: Optional[Iterable[int]] = None) -> Optional[int]:
        """The most deserving partition, or ``None`` if all score zero."""
        pids = sorted(candidates if candidates is not None
                      else engine.store.partition_ids())
        if not pids:
            return None
        if self.policy == "round-robin":
            self._cursor = (self._cursor + 1) % len(pids)
            return pids[self._cursor]
        scores = self.rank(engine, pids)
        best_pid, best_score = scores[0]
        return best_pid if best_score > 0 else None

    def rank(self, engine,
             candidates: Iterable[int]) -> List[Tuple[int, float]]:
        """All candidates with their scores, most deserving first."""
        scores: Dict[int, float] = {}
        for pid in candidates:
            if self.policy == "fragmentation":
                scores[pid] = fragmentation_score(engine, pid)
            elif self.policy == "garbage":
                scores[pid] = float(garbage_estimate(engine, pid)[1])
            else:  # round-robin has no meaningful score
                scores[pid] = 0.0
        return sorted(scores.items(), key=lambda item: (-item[1], item[0]))
