"""The paper's contribution: on-line reorganization algorithms.

* :class:`IncrementalReorganizer` — basic IRA (§3).
* :class:`TwoLockReorganizer` — the at-most-two-distinct-locks extension
  (§4.2); also works when transactions use short-duration locks (§4.1).
* :class:`PartitionQuiesceReorganizer` — the PQR baseline (§5.1).
* :class:`OfflineReorganizer` — the quiescent-database baseline (§3.1).
* :class:`CopyingGarbageCollector` / :class:`MarkAndSweepCollector` —
  garbage collection built on the same machinery (§4.6).
"""

from .checkpointing import (
    ReorgState,
    ReorgStateStore,
    WalReorgStateStore,
    decode_reorg_state,
    encode_reorg_state,
    rebuild_trt,
    resume_from_wal,
    resume_reorganization,
)
from .gc import CopyingGarbageCollector, GcStats, MarkAndSweepCollector
from .ira import IncrementalReorganizer, ReorgStats
from .ira_twolock import TwoLockReorganizer, references_equal
from .offline import OfflineReorganizer, migrate_partition_quiescent
from .plan import (
    ClusteringPlan,
    CompactionPlan,
    EvacuationPlan,
    ParentLocalityPlan,
    RelocationPlan,
)
from .pqr import PartitionQuiesceReorganizer
from .selection import (
    PartitionSelector,
    fragmentation_score,
    garbage_estimate,
)
from .traversal import (
    TraversalResult,
    find_objects_and_approx_parents,
    fuzzy_traversal,
)

__all__ = [
    "ClusteringPlan",
    "CompactionPlan",
    "CopyingGarbageCollector",
    "EvacuationPlan",
    "GcStats",
    "ParentLocalityPlan",
    "IncrementalReorganizer",
    "MarkAndSweepCollector",
    "OfflineReorganizer",
    "PartitionQuiesceReorganizer",
    "PartitionSelector",
    "RelocationPlan",
    "ReorgState",
    "ReorgStateStore",
    "ReorgStats",
    "TraversalResult",
    "TwoLockReorganizer",
    "WalReorgStateStore",
    "decode_reorg_state",
    "encode_reorg_state",
    "find_objects_and_approx_parents",
    "fragmentation_score",
    "fuzzy_traversal",
    "garbage_estimate",
    "migrate_partition_quiescent",
    "rebuild_trt",
    "references_equal",
    "resume_from_wal",
    "resume_reorganization",
]
