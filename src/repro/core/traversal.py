"""The fuzzy traversal (paper §3.4, Fig. 3).

Finds every live object of a partition plus an *approximate* set of
parents for each, while user transactions keep running.  No locks are
taken — only a short latch per object while its references are read —
so the result is not transaction-consistent; the TRT makes it exact
later, one object at a time.

``find_objects_and_approx_parents`` is Fig. 3 verbatim: traverse from the
ERT's referenced objects (L1), then keep reseeding from TRT-referenced
objects not yet visited (L2) until none remain — which is what makes
Lemma 3.1 ("all live objects are encountered") hold even when the only
reference to a subtree was cut and may be reinserted.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Set

from ..refs import TemporaryReferenceTable
from ..storage.oid import Oid


class TraversalResult:
    """Objects found in a partition and their intra-partition parents."""

    def __init__(self) -> None:
        #: Live objects in visit order (insertion-ordered).
        self.objects: Dict[Oid, None] = {}
        #: child -> set of parents *within the partition* seen during the
        #: traversal.  External parents come from the ERT at lock time.
        self.parents: Dict[Oid, Set[Oid]] = {}

    def visited(self, oid: Oid) -> bool:
        return oid in self.objects

    def ordered_objects(self) -> List[Oid]:
        return list(self.objects)

    def parents_of(self, child: Oid) -> Set[Oid]:
        return self.parents.get(child, set())

    def __len__(self) -> int:
        return len(self.objects)


def fuzzy_traversal(engine, partition_id: int, seeds: List[Oid],
                    result: TraversalResult) -> Generator[Any, Any, None]:
    """One Fuzzy_Traversal call: DFS from ``seeds``, restricted to the
    partition, latching each object while its references are noted.

    Per-object CPU cost is paid through a :class:`CpuMeter`: the scan does
    not reschedule per object, it periodically yields the CPU after a few
    milliseconds of accumulated work.
    """
    from ..sim import CpuMeter

    cpu = CpuMeter(engine.cpu, chunk_ms=5.0)
    stack = [oid for oid in seeds if not result.visited(oid)]
    while stack:
        oid = stack.pop()
        if result.visited(oid) or oid.partition != partition_id:
            continue
        if not engine.store.exists(oid):
            continue  # freed since it was seeded (e.g. a stale TRT tuple)
        yield from engine.latches.latch(oid)
        try:
            if not engine.store.exists(oid):
                continue  # freed while we waited for the latch
            yield from engine.fix_page(oid)
            yield from cpu.charge(engine.config.cpu_traverse_ms)
            children = engine.store.children_of(oid)
        finally:
            engine.latches.unlatch(oid)
        result.objects[oid] = None
        for child in children:
            if child.partition != partition_id:
                continue
            result.parents.setdefault(child, set()).add(oid)
            if not result.visited(child):
                stack.append(child)
    yield from cpu.flush()


def find_objects_and_approx_parents(
        engine, partition_id: int,
        trt: TemporaryReferenceTable) -> Generator[Any, Any, TraversalResult]:
    """Fig. 3: Find_Objects_And_Approx_Parents."""
    result = TraversalResult()
    ert = engine.ert_for(partition_id)
    # L1: traverse from the ERT's referenced objects.
    yield from fuzzy_traversal(engine, partition_id,
                               list(ert.referenced_objects()), result)
    # L2: while some TRT-referenced object was missed, traverse from it.
    while True:
        missed = [oid for oid in trt.referenced_objects()
                  if not result.visited(oid) and engine.store.exists(oid)]
        if not missed:
            break
        yield from fuzzy_traversal(engine, partition_id, missed, result)
    return result
