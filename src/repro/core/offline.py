"""Quiescent-partition reorganization (paper §3.1).

``migrate_partition_quiescent`` is the workhorse shared by the off-line
reorganizer and PQR: it assumes nothing touches the partition while it
runs (the database is quiescent, or PQR has locked every external parent)
and migrates *every allocated object* to its plan-assigned new location,
rewriting internal references via the old→new mapping and patching
external parents through the ERT.

Everything is logged inside the caller's system transaction, so the log
analyzer keeps the ERTs consistent and the whole reorganization is
atomic: a crash before the commit undoes it completely.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..sim import CpuMeter

from ..errors import ReorganizationError
from ..storage.oid import Oid
from .ira import ReorgStats
from .plan import RelocationPlan


def migrate_partition_quiescent(engine, txn, partition_id: int,
                                plan: RelocationPlan,
                                stats: ReorgStats
                                ) -> Generator[Any, Any, Dict[Oid, Oid]]:
    """Migrate all objects of a quiesced partition; returns old→new map."""
    store = engine.store
    ert = engine.ert_for(partition_id)
    cpu = CpuMeter(engine.cpu, chunk_ms=10.0)
    originals: List[Oid] = plan.order(list(store.live_oids(partition_id)))
    stats.objects_found = len(originals)

    # Snapshot external parents *before* creating copies: in an evacuation
    # the new copies' still-unpatched references into the old partition
    # would otherwise show up as external parents themselves.
    external_parents = {oid: set(ert.parents_of(oid)) for oid in originals}

    # Pass 1: allocate every new copy (references still point at the old
    # addresses) and build the complete mapping.
    mapping: Dict[Oid, Oid] = {}
    for oid in originals:
        yield from cpu.charge(engine.config.cpu_migrate_ms)
        image = store.read_object(oid)
        mapping[oid] = yield from txn.create_object(
            plan.target_partition(oid), image, fresh_only=plan.fresh_only,
            cpu_ms=0)

    # Pass 2: rewrite intra-partition references inside the new copies.
    for oid, new_oid in mapping.items():
        for slot, child in store.read_object(new_oid).refs():
            if child in mapping:
                yield from cpu.charge(engine.config.cpu_ref_patch_ms)
                yield from txn.update_ref(new_oid, slot, mapping[child],
                                          cpu_ms=0)
                stats.parent_patches += 1

    # Pass 3: patch the external parents recorded in the ERT snapshot.
    for oid, new_oid in mapping.items():
        for parent in sorted(external_parents[oid]):
            if not store.exists(parent):
                raise ReorganizationError(
                    f"external parent {parent} of {oid} vanished while "
                    f"the partition was supposedly quiescent")
            for slot in store.read_object(parent).slots_referencing(oid):
                yield from cpu.charge(engine.config.cpu_ref_patch_ms)
                yield from txn.update_ref(parent, slot, new_oid, cpu_ms=0)
                stats.parent_patches += 1

    # Pass 4: free the old copies.
    for oid in originals:
        yield from cpu.charge(engine.config.cpu_update_extra_ms)
        yield from txn.delete_object(oid, cpu_ms=0)
        stats.objects_migrated += 1
    yield from cpu.flush()

    stats.mapping.update(mapping)
    return mapping


class OfflineReorganizer:
    """§3.1: reorganize a partition of a *quiescent* database.

    Refuses to run when user transactions are active — that is the whole
    point of the on-line algorithms this baseline motivates.
    """

    algorithm_name = "offline"

    def __init__(self, engine, partition_id: int,
                 plan: RelocationPlan = None):
        self.engine = engine
        self.partition_id = partition_id
        self.plan = plan or RelocationPlan()
        self.stats = ReorgStats(algorithm=self.algorithm_name,
                                partition_id=partition_id)

    def run(self) -> Generator[Any, Any, ReorgStats]:
        active = {tid for tid in self.engine.txns.active_tids()}
        if active:
            raise ReorganizationError(
                f"database is not quiescent: active txns {sorted(active)}")
        self.stats.started_ms = self.engine.sim.now
        self.plan.prepare(self.engine, self.partition_id)
        txn = self.engine.txns.begin(system=True, reorg_partition=self.partition_id)
        yield from migrate_partition_quiescent(
            self.engine, txn, self.partition_id, self.plan, self.stats)
        yield from txn.commit()
        self.plan.finalize(self.engine, self.partition_id)
        self.stats.finished_ms = self.engine.sim.now
        return self.stats
