"""Reorganizer-state checkpointing and resume (paper §4.4).

A system failure during reorganization never corrupts the database —
ARIES recovery undoes the in-flight migration transaction — but the work
already done (the fuzzy traversal, the migrations committed so far) would
be lost if IRA simply restarted.  §4.4's remedy: periodically checkpoint
``Traversed_Objects``/``Parent_Lists`` plus migration progress, and after
a crash *reconstruct the TRT from the log* written since the checkpoint,
then continue migrating from where the reorganizer left off.

``rebuild_trt`` is that reconstruction: a one-shot re-analysis of the log
suffix with the same rules the live log analyzer applies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..refs import TemporaryReferenceTable
from ..refs.trt import TrtEntry
from ..storage import ObjectImage
from ..storage.oid import Oid
from ..wal.records import (
    BeginRecord,
    ClrRecord,
    CommitRecord,
    EndRecord,
    ObjCreateRecord,
    ObjDeleteRecord,
    RefUpdateRecord,
    ReorgProgressRecord,
)

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass
class ReorgState:
    """A checkpoint of the reorganizer's working state."""

    algorithm: str
    partition_id: int
    order: List[Oid]
    parents: Dict[Oid, Set[Oid]]
    mapping: Dict[Oid, Oid]
    migrated: Set[Oid]
    allocated_at_traversal: Set[Oid]
    log_lsn: int
    #: Two-lock extension only: the (old, new) pair mid-migration, if any.
    in_progress: Optional[Tuple[Oid, Oid]] = None
    #: Compaction floor of the partition (fresh-page allocation boundary).
    relocation_floor: int = 0
    #: TRT contents at checkpoint time (§4.4's "optionally, the TRT could
    #: also be checkpointed"); rolled forward from ``log_lsn`` at resume.
    trt_entries: List = field(default_factory=list)


class ReorgStateStore:
    """Durable store for reorganizer checkpoints (a checkpoint file)."""

    def __init__(self) -> None:
        self._state: Optional[ReorgState] = None
        self.saves = 0

    def save(self, state: ReorgState) -> None:
        self._state = state
        self.saves += 1

    def load(self) -> Optional[ReorgState]:
        return self._state

    def clear(self) -> None:
        self._state = None


# -- WAL-carried checkpoints --------------------------------------------------

def _pack_oid_list(oids) -> List[bytes]:
    parts = [_U32.pack(len(oids))]
    parts.extend(_U64.pack(oid.pack()) for oid in oids)
    return parts


def _unpack_oid_list(data: bytes, offset: int) -> Tuple[List[Oid], int]:
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    oids = []
    for _ in range(count):
        (packed,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        oids.append(Oid.unpack(packed))
    return oids, offset


def encode_reorg_state(state: ReorgState) -> bytes:
    """Serialize a :class:`ReorgState` for a WAL progress record."""
    algorithm = state.algorithm.encode("utf-8")
    parts: List[bytes] = [_U8.pack(len(algorithm)), algorithm,
                          _U32.pack(state.partition_id)]
    parts.extend(_pack_oid_list(state.order))
    parts.append(_U32.pack(len(state.parents)))
    for child in sorted(state.parents, key=Oid.pack):
        parts.append(_U64.pack(child.pack()))
        parts.extend(_pack_oid_list(
            sorted(state.parents[child], key=Oid.pack)))
    parts.append(_U32.pack(len(state.mapping)))
    for old in sorted(state.mapping, key=Oid.pack):
        parts.append(_U64.pack(old.pack()))
        parts.append(_U64.pack(state.mapping[old].pack()))
    parts.extend(_pack_oid_list(sorted(state.migrated, key=Oid.pack)))
    parts.extend(_pack_oid_list(
        sorted(state.allocated_at_traversal, key=Oid.pack)))
    parts.append(_U64.pack(state.log_lsn))
    if state.in_progress is None:
        parts.append(_U8.pack(0))
    else:
        old, new = state.in_progress
        parts.append(_U8.pack(1))
        parts.append(_U64.pack(old.pack()))
        parts.append(_U64.pack(new.pack()))
    parts.append(_U32.pack(state.relocation_floor))
    parts.append(_U32.pack(len(state.trt_entries)))
    for entry in state.trt_entries:
        parts.append(_U64.pack(entry.child.pack()))
        parts.append(_U64.pack(entry.parent.pack()))
        parts.append(_U64.pack(entry.tid))
        parts.append(_U8.pack(1 if entry.action == "D" else 0))
        parts.append(_U32.pack(entry.seq))
    return b"".join(parts)


def decode_reorg_state(data: bytes) -> ReorgState:
    """Inverse of :func:`encode_reorg_state`."""
    (algo_len,) = _U8.unpack_from(data, 0)
    offset = _U8.size
    algorithm = data[offset:offset + algo_len].decode("utf-8")
    offset += algo_len
    (partition_id,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    order, offset = _unpack_oid_list(data, offset)
    (parent_count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    parents: Dict[Oid, Set[Oid]] = {}
    for _ in range(parent_count):
        (packed,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        plist, offset = _unpack_oid_list(data, offset)
        parents[Oid.unpack(packed)] = set(plist)
    (map_count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    mapping: Dict[Oid, Oid] = {}
    for _ in range(map_count):
        (old,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (new,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        mapping[Oid.unpack(old)] = Oid.unpack(new)
    migrated_list, offset = _unpack_oid_list(data, offset)
    allocated_list, offset = _unpack_oid_list(data, offset)
    (log_lsn,) = _U64.unpack_from(data, offset)
    offset += _U64.size
    (has_in_progress,) = _U8.unpack_from(data, offset)
    offset += _U8.size
    in_progress = None
    if has_in_progress:
        (old,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (new,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        in_progress = (Oid.unpack(old), Oid.unpack(new))
    (relocation_floor,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    (trt_count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    trt_entries: List[TrtEntry] = []
    for _ in range(trt_count):
        (child,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (parent,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (tid,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (is_delete,) = _U8.unpack_from(data, offset)
        offset += _U8.size
        (seq,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        trt_entries.append(TrtEntry(Oid.unpack(child), Oid.unpack(parent),
                                    tid, "D" if is_delete else "I", seq))
    return ReorgState(algorithm=algorithm, partition_id=partition_id,
                      order=order, parents=parents, mapping=mapping,
                      migrated=set(migrated_list),
                      allocated_at_traversal=set(allocated_list),
                      log_lsn=log_lsn, in_progress=in_progress,
                      relocation_floor=relocation_floor,
                      trt_entries=trt_entries)


class WalReorgStateStore(ReorgStateStore):
    """Reorg checkpoints carried in the WAL itself (crash-resumable §4.4).

    ``save`` appends a :class:`ReorgProgressRecord` (``tid == 0``); its
    durability rides the next group commit — the migration transaction
    whose commit follows the checkpoint flushes it along.  A checkpoint
    that misses the flushed prefix costs only re-derived work at resume
    (the roll-forward over committed migrations covers the gap), never
    correctness.  ``clear`` appends an empty-state tombstone so a
    completed reorganization is not resumed.  ``load`` reads the latest
    record back from the engine's log, so the store works identically on
    the original engine and on one rebuilt by restart recovery.
    """

    def __init__(self, engine, partition_id: int) -> None:
        super().__init__()
        self.engine = engine
        self.partition_id = partition_id

    def save(self, state: ReorgState) -> None:
        self.saves += 1
        self.engine.log.append(ReorgProgressRecord(
            0, 0, partition_id=state.partition_id,
            algorithm=state.algorithm, state=encode_reorg_state(state)))

    def clear(self) -> None:
        self.engine.log.append(ReorgProgressRecord(
            0, 0, partition_id=self.partition_id, algorithm="", state=b""))

    def _latest_record(self) -> Optional[ReorgProgressRecord]:
        latest: Optional[ReorgProgressRecord] = None
        for record in self.engine.log.records():
            if isinstance(record, ReorgProgressRecord) and \
                    record.partition_id == self.partition_id:
                latest = record
        return latest

    def load(self) -> Optional[ReorgState]:
        latest = self._latest_record()
        if latest is None or latest.is_tombstone:
            return None
        return decode_reorg_state(latest.state)

    def completed(self) -> bool:
        """True when the latest durable progress record is the completion
        tombstone — the reorganization finished before the crash."""
        latest = self._latest_record()
        return latest is not None and latest.is_tombstone


def resume_from_wal(engine, partition_id: int, plan=None, reorg_config=None):
    """Resume a crashed reorganization from its WAL progress records.

    Convenience over :func:`resume_reorganization` with a
    :class:`WalReorgStateStore`: returns a ready-to-run reorganizer, or
    ``None`` when the durable log holds no (non-tombstoned) progress
    record for the partition — meaning either no checkpoint survived or
    the reorganization had already completed.
    """
    store = WalReorgStateStore(engine, partition_id)
    return resume_reorganization(engine, store, plan=plan,
                                 reorg_config=reorg_config)


def rebuild_trt(engine, partition_id: int, from_lsn: int,
                preload=()) -> TemporaryReferenceTable:
    """Reconstruct a partition's TRT from the log suffix (§4.4).

    ``preload`` (the checkpointed TRT contents) is replayed first, then
    the log analyzer's rules are re-applied to every record with
    ``lsn > from_lsn``: reference updates by user transactions whose
    referenced object is in the partition become TRT tuples; transaction
    ENDs trigger the §4.5 purges.  System transactions are identified by
    scanning BEGIN records over the *whole* log (a transaction's BEGIN
    may precede the reorg checkpoint).
    """
    trt = TemporaryReferenceTable(
        partition_id, bucket_capacity=engine.config.ert_bucket_capacity)
    for entry in preload:
        if entry.action == "D":
            trt.record_delete(entry.child, entry.parent, entry.tid)
        else:
            trt.record_insert(entry.child, entry.parent, entry.tid)
    # Transactions owned by THIS partition's reorganizer are skipped,
    # mirroring the live analyzer's rule.
    owned_tids: Set[int] = set()
    for record in engine.log.records():
        if isinstance(record, BeginRecord) and record.is_system and \
                record.owner_partition == partition_id:
            owned_tids.add(record.tid)

    def note(tid: int, parent: Oid, old_child, new_child) -> None:
        if tid in owned_tids:
            return
        if old_child is not None and old_child.partition == partition_id:
            trt.record_delete(old_child, parent, tid)
        if new_child is not None and new_child.partition == partition_id:
            trt.record_insert(new_child, parent, tid)

    for record in engine.log.records(from_lsn=from_lsn + 1):
        if isinstance(record, RefUpdateRecord):
            note(record.tid, record.parent, record.old_child,
                 record.new_child)
        elif isinstance(record, ObjCreateRecord):
            for child in ObjectImage.decode(record.image).children():
                note(record.tid, record.oid, None, child)
        elif isinstance(record, ObjDeleteRecord):
            for child in ObjectImage.decode(record.before_image).children():
                note(record.tid, record.oid, child, None)
        elif isinstance(record, ClrRecord):
            inner = record.decode_action()
            if isinstance(inner, RefUpdateRecord):
                note(inner.tid, inner.parent, inner.old_child,
                     inner.new_child)
        elif isinstance(record, EndRecord):
            trt.on_transaction_end(record.tid,
                                   engine.config.strict_transactions)
    return trt


def committed_migrations_from_log(engine, partition_id: int,
                                  from_lsn: int) -> Dict[Oid, Oid]:
    """Reconstruct old→new pairs of migrations committed after a reorg
    checkpoint (§4.4).

    Every IRA migration patches at least one parent with a system-
    transaction REF_UPDATE whose old child is the migrated object and
    whose new child is its copy, so the committed system transactions'
    reference updates carry the mapping.  The returned dict preserves
    log order (insertion order == commit order), which callers must
    respect: slot reuse lets one migration's freed source address come
    back as a later migration's target, so replaying the pairs in any
    other order (or checking addresses against the current store) gets
    aliased addresses wrong.
    """
    owned_tids: Set[int] = set()
    committed: Set[int] = set()
    for record in engine.log.records():
        if isinstance(record, BeginRecord) and record.is_system and \
                record.owner_partition == partition_id:
            owned_tids.add(record.tid)
        elif record.lsn > from_lsn and isinstance(record, CommitRecord):
            committed.add(record.tid)
    pairs: Dict[Oid, Oid] = {}
    for record in engine.log.records(from_lsn=from_lsn + 1):
        if not isinstance(record, RefUpdateRecord):
            continue
        if record.tid not in owned_tids or record.tid not in committed:
            continue
        old, new = record.old_child, record.new_child
        if old is None or new is None or old == new:
            continue
        if old.partition != partition_id:
            continue
        pairs[old] = new
    return pairs


def resume_reorganization(engine, state_store: ReorgStateStore,
                          plan=None, reorg_config=None, factory=None):
    """Build a reorganizer that continues from the last checkpoint.

    Rolls the checkpointed state forward over the log suffix (migrations
    committed after the checkpoint, §4.4), rebuilds the TRT, restores the
    relocation floor, and returns a ready-to-run reorganizer — or ``None``
    when no checkpoint exists (start afresh per §4.4).

    ``factory`` overrides the algorithm-name class dispatch: called as
    ``factory(engine, partition_id, plan, reorg_config, state_store)``,
    it lets callers resume reorganizer subclasses this module does not
    know about (the distributed reorganizer in :mod:`repro.dist` carries
    node/cluster context no class-name lookup could reconstruct).
    """
    from .ira import IncrementalReorganizer
    from .ira_twolock import TwoLockReorganizer

    state = state_store.load()
    if state is None:
        return None

    # Fold migrations that committed after the checkpoint into the state.
    recovered = committed_migrations_from_log(
        engine, state.partition_id, state.log_lsn)
    for old, new in recovered.items():
        state.mapping[old] = new
        state.migrated.add(old)
        if engine.store.exists(new):
            for child in engine.store.children_of(new):
                parent_set = state.parents.get(child)
                if parent_set is not None and old in parent_set:
                    parent_set.discard(old)
                    parent_set.add(new)

    if factory is not None:
        reorganizer = factory(engine, state.partition_id, plan,
                              reorg_config, state_store)
    else:
        cls = (TwoLockReorganizer if state.algorithm == "ira-2lock"
               else IncrementalReorganizer)
        reorganizer = cls(engine, state.partition_id, plan=plan,
                          reorg_config=reorg_config, state_store=state_store)
    reorganizer.plan.prepare(engine, state.partition_id)
    engine.store.partition(state.partition_id).relocation_floor = \
        state.relocation_floor
    reorganizer.resume_from(state)

    trt = rebuild_trt(engine, state.partition_id, state.log_lsn,
                      preload=state.trt_entries)
    # Register the rebuilt TRT so the live analyzer keeps extending it
    # once transactions resume; IRA's run() adopts it rather than
    # activating a fresh one.
    engine.analyzer.activate_trt(trt)
    reorganizer.trt = trt
    return reorganizer
