"""Reorganizer-state checkpointing and resume (paper §4.4).

A system failure during reorganization never corrupts the database —
ARIES recovery undoes the in-flight migration transaction — but the work
already done (the fuzzy traversal, the migrations committed so far) would
be lost if IRA simply restarted.  §4.4's remedy: periodically checkpoint
``Traversed_Objects``/``Parent_Lists`` plus migration progress, and after
a crash *reconstruct the TRT from the log* written since the checkpoint,
then continue migrating from where the reorganizer left off.

``rebuild_trt`` is that reconstruction: a one-shot re-analysis of the log
suffix with the same rules the live log analyzer applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..refs import TemporaryReferenceTable
from ..storage import ObjectImage
from ..storage.oid import Oid
from ..wal.records import (
    BeginRecord,
    ClrRecord,
    CommitRecord,
    EndRecord,
    ObjCreateRecord,
    ObjDeleteRecord,
    RefUpdateRecord,
)


@dataclass
class ReorgState:
    """A checkpoint of the reorganizer's working state."""

    algorithm: str
    partition_id: int
    order: List[Oid]
    parents: Dict[Oid, Set[Oid]]
    mapping: Dict[Oid, Oid]
    migrated: Set[Oid]
    allocated_at_traversal: Set[Oid]
    log_lsn: int
    #: Two-lock extension only: the (old, new) pair mid-migration, if any.
    in_progress: Optional[Tuple[Oid, Oid]] = None
    #: Compaction floor of the partition (fresh-page allocation boundary).
    relocation_floor: int = 0
    #: TRT contents at checkpoint time (§4.4's "optionally, the TRT could
    #: also be checkpointed"); rolled forward from ``log_lsn`` at resume.
    trt_entries: List = field(default_factory=list)


class ReorgStateStore:
    """Durable store for reorganizer checkpoints (a checkpoint file)."""

    def __init__(self) -> None:
        self._state: Optional[ReorgState] = None
        self.saves = 0

    def save(self, state: ReorgState) -> None:
        self._state = state
        self.saves += 1

    def load(self) -> Optional[ReorgState]:
        return self._state

    def clear(self) -> None:
        self._state = None


def rebuild_trt(engine, partition_id: int, from_lsn: int,
                preload=()) -> TemporaryReferenceTable:
    """Reconstruct a partition's TRT from the log suffix (§4.4).

    ``preload`` (the checkpointed TRT contents) is replayed first, then
    the log analyzer's rules are re-applied to every record with
    ``lsn > from_lsn``: reference updates by user transactions whose
    referenced object is in the partition become TRT tuples; transaction
    ENDs trigger the §4.5 purges.  System transactions are identified by
    scanning BEGIN records over the *whole* log (a transaction's BEGIN
    may precede the reorg checkpoint).
    """
    trt = TemporaryReferenceTable(
        partition_id, bucket_capacity=engine.config.ert_bucket_capacity)
    for entry in preload:
        if entry.action == "D":
            trt.record_delete(entry.child, entry.parent, entry.tid)
        else:
            trt.record_insert(entry.child, entry.parent, entry.tid)
    # Transactions owned by THIS partition's reorganizer are skipped,
    # mirroring the live analyzer's rule.
    owned_tids: Set[int] = set()
    for record in engine.log.records():
        if isinstance(record, BeginRecord) and record.is_system and \
                record.owner_partition == partition_id:
            owned_tids.add(record.tid)

    def note(tid: int, parent: Oid, old_child, new_child) -> None:
        if tid in owned_tids:
            return
        if old_child is not None and old_child.partition == partition_id:
            trt.record_delete(old_child, parent, tid)
        if new_child is not None and new_child.partition == partition_id:
            trt.record_insert(new_child, parent, tid)

    for record in engine.log.records(from_lsn=from_lsn + 1):
        if isinstance(record, RefUpdateRecord):
            note(record.tid, record.parent, record.old_child,
                 record.new_child)
        elif isinstance(record, ObjCreateRecord):
            for child in ObjectImage.decode(record.image).children():
                note(record.tid, record.oid, None, child)
        elif isinstance(record, ObjDeleteRecord):
            for child in ObjectImage.decode(record.before_image).children():
                note(record.tid, record.oid, child, None)
        elif isinstance(record, ClrRecord):
            inner = record.decode_action()
            if isinstance(inner, RefUpdateRecord):
                note(inner.tid, inner.parent, inner.old_child,
                     inner.new_child)
        elif isinstance(record, EndRecord):
            trt.on_transaction_end(record.tid,
                                   engine.config.strict_transactions)
    return trt


def committed_migrations_from_log(engine, partition_id: int,
                                  from_lsn: int) -> Dict[Oid, Oid]:
    """Reconstruct old→new pairs of migrations committed after a reorg
    checkpoint (§4.4).

    Every IRA migration patches at least one parent with a system-
    transaction REF_UPDATE whose old child is the migrated object and
    whose new child is its copy, so the committed system transactions'
    reference updates carry the mapping.  Pairs are sanity-filtered: the
    old address must be gone and the new one live.
    """
    owned_tids: Set[int] = set()
    committed: Set[int] = set()
    for record in engine.log.records():
        if isinstance(record, BeginRecord) and record.is_system and \
                record.owner_partition == partition_id:
            owned_tids.add(record.tid)
        elif record.lsn > from_lsn and isinstance(record, CommitRecord):
            committed.add(record.tid)
    pairs: Dict[Oid, Oid] = {}
    for record in engine.log.records(from_lsn=from_lsn + 1):
        if not isinstance(record, RefUpdateRecord):
            continue
        if record.tid not in owned_tids or record.tid not in committed:
            continue
        old, new = record.old_child, record.new_child
        if old is None or new is None or old == new:
            continue
        if old.partition != partition_id:
            continue
        if not engine.store.exists(old) and engine.store.exists(new):
            pairs[old] = new
    return pairs


def resume_reorganization(engine, state_store: ReorgStateStore,
                          plan=None, reorg_config=None):
    """Build a reorganizer that continues from the last checkpoint.

    Rolls the checkpointed state forward over the log suffix (migrations
    committed after the checkpoint, §4.4), rebuilds the TRT, restores the
    relocation floor, and returns a ready-to-run reorganizer — or ``None``
    when no checkpoint exists (start afresh per §4.4).
    """
    from .ira import IncrementalReorganizer
    from .ira_twolock import TwoLockReorganizer

    state = state_store.load()
    if state is None:
        return None

    # Fold migrations that committed after the checkpoint into the state.
    recovered = committed_migrations_from_log(
        engine, state.partition_id, state.log_lsn)
    for old, new in recovered.items():
        state.mapping[old] = new
        state.migrated.add(old)
        if engine.store.exists(new):
            for child in engine.store.children_of(new):
                parent_set = state.parents.get(child)
                if parent_set is not None and old in parent_set:
                    parent_set.discard(old)
                    parent_set.add(new)

    cls = (TwoLockReorganizer if state.algorithm == "ira-2lock"
           else IncrementalReorganizer)
    reorganizer = cls(engine, state.partition_id, plan=plan,
                      reorg_config=reorg_config, state_store=state_store)
    reorganizer.plan.prepare(engine, state.partition_id)
    engine.store.partition(state.partition_id).relocation_floor = \
        state.relocation_floor
    reorganizer.resume_from(state)

    trt = rebuild_trt(engine, state.partition_id, state.log_lsn,
                      preload=state.trt_entries)
    # Register the rebuilt TRT so the live analyzer keeps extending it
    # once transactions resume; IRA's run() adopts it rather than
    # activating a fresh one.
    engine.analyzer.activate_trt(trt)
    reorganizer.trt = trt
    return reorganizer
