"""The two-lock extension of IRA (paper §4.2).

Basic IRA locks *all* parents of an object before migrating it, which for
popular objects can lock a substantial portion of the database.  The
extension instead:

* locks the object being migrated — both the old and the new location —
  for the whole migration, via an *anchor* transaction that holds those
  locks across the per-parent updates;
* creates the new copy in its own committed transaction (so the copy
  survives a crash — the mixed-pointer state §4.2 describes);
* then locks parents **one at a time**, patching each parent's reference
  inside its own small system transaction and releasing its lock before
  taking the next (grouping per §4.3 is supported via
  ``migration_batch_size``, here interpreted as parent updates per
  transaction);
* finally deletes the old copy and commits the anchor.

At any instant the reorganizer holds locks on at most **two distinct
objects**: the object being migrated (its two locations) and one parent.

New references to the *new* location are fine; new references to the
*old* location keep being detected through the TRT — the parent loop
drains TRT tuples until none remain, re-patching parents as needed.

Reference-equality caveat (paper §4.2): while an object is mid-migration
two parents may hold references to its old and new locations.  The
:func:`references_equal` helper implements the compare that treats the
two addresses of an in-flight migration as equal.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set

from ..concurrency import LockMode, LockTimeoutError
from ..errors import ReorganizationError
from ..storage.oid import Oid
from ..wal.records import (
    BeginRecord,
    CommitRecord,
    ObjCreateRecord,
    PayloadUpdateRecord,
    RefUpdateRecord,
)
from .ira import IncrementalReorganizer


def reconciled_copy_image(engine, partition_id: int, old: Oid, new: Oid,
                          transform=None):
    """The image the §4.2 copy must hold before parent patching (re)starts.

    While a migration is suspended with its locks released — the backoff
    after a deadlock abort, or the span from a crash to the resumed run —
    user transactions can commit updates through *either* address of the
    in-flight pair: through the old one via still-unpatched parents, and
    through the new one via parents already patched.  Updates through the
    old address live in the old location's stored image; updates through
    the new address live only in the copy (and the log).  Reusing the
    copy as-is would lose the former — a lost update.

    The merged image is the old location's current committed image
    (re-transformed, self-references translated to the new address) with
    the copy's committed user updates re-applied in log order.
    """
    image = engine.store.read_object(old)
    if transform is not None:
        image = transform(old, image)
    for slot, ref in image.refs():
        if ref == old:
            image.set_ref(slot, new)
    # Updates that reached the copy directly: committed, non-reorganizer
    # records against the new address, newer than the copy's (committed)
    # creation.  Reorganizer-owned records are the copy's own lifecycle
    # (creation, earlier reconciliations) — never user data.
    owned: set = set()
    committed: set = set()
    for record in engine.log.records():
        if isinstance(record, BeginRecord) and record.is_system and \
                record.owner_partition == partition_id:
            owned.add(record.tid)
        elif isinstance(record, CommitRecord):
            committed.add(record.tid)
    created_lsn = None
    for record in engine.log.records():
        if isinstance(record, ObjCreateRecord) and record.oid == new and \
                record.tid in owned and record.tid in committed:
            created_lsn = record.lsn
    if created_lsn is None:
        return image
    for record in engine.log.records(from_lsn=created_lsn + 1):
        if record.tid in owned or record.tid not in committed:
            continue
        if isinstance(record, PayloadUpdateRecord) and record.oid == new:
            body = image.payload
            end = record.offset + len(record.after)
            image.payload = body[:record.offset] + record.after + body[end:]
        elif isinstance(record, RefUpdateRecord) and record.parent == new:
            image.set_ref(record.slot, record.new_child)
    return image


def references_equal(ref_a: Oid, ref_b: Oid,
                     in_flight: Dict[Oid, Oid]) -> bool:
    """Reference comparison aware of in-flight migrations (§4.2).

    ``in_flight`` maps old addresses of objects currently being migrated
    to their new addresses; two references are equal if they resolve to
    the same object under that mapping.
    """
    resolve = lambda r: in_flight.get(r, r)  # noqa: E731
    return resolve(ref_a) == resolve(ref_b)


class TwoLockReorganizer(IncrementalReorganizer):
    """IRA with the §4.2 at-most-two-distinct-locks migration protocol."""

    algorithm_name = "ira-2lock"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Old -> new addresses of migrations currently in flight, exposed
        #: for the §4.2-aware reference comparison.
        self.in_flight: Dict[Oid, Oid] = {}
        self.stats.algorithm = self.algorithm_name

    # The migration loop drives one object at a time; batching groups
    # parent updates, not whole objects.
    def _migrate_all(self) -> Generator[Any, Any, None]:
        in_progress = getattr(self, "_resume_in_progress", None)
        if in_progress is not None:
            oid, new_oid = in_progress
            # §4.2 failure handling: the database may hold references to
            # both locations.  Lock both, finish patching, delete the old.
            if self.engine.store.exists(oid):
                if not self.engine.store.exists(new_oid):
                    new_oid = None  # creation never committed: start over
                yield from self._migrate_one(oid, resumed_new_oid=new_oid)
            self._resume_in_progress = None
        pending = [oid for oid in self._order if oid not in self._migrated]
        for oid in pending:
            if oid in self._migrated or not self.engine.store.exists(oid):
                continue
            yield from self._migrate_one(oid)
            if self.state_store is not None and self.cfg.checkpoint_every:
                if len(self._migrated) % self.cfg.checkpoint_every == 0:
                    self._checkpoint_state()
            if self.pacer is not None:
                yield from self.pacer()

    def _migrate_one(self, oid: Oid,
                     resumed_new_oid: Optional[Oid] = None
                     ) -> Generator[Any, Any, None]:
        engine = self.engine
        anchor = engine.txns.begin(system=True, reorg_partition=self.partition_id)
        try:
            # Lock the old location for the whole migration.
            yield from self._lock_for_reorg(anchor, oid)

            if resumed_new_oid is None:
                # Create the new copy in its own committed transaction so a
                # crash never strands committed parent patches pointing at
                # an uncreated object.
                image = engine.store.read_object(oid)
                if self.transform is not None:
                    original_refs = [ref for _, ref in image.refs()]
                    image = self.transform(oid, image)
                    if [ref for _, ref in image.refs()] != original_refs:
                        raise ReorganizationError(
                            f"transform changed the references of {oid}")
                yield from engine.cpu.use(engine.config.cpu_migrate_ms)
                create_txn = engine.txns.begin(system=True, reorg_partition=self.partition_id)
                new_oid = yield from create_txn.create_object(
                    self.plan.target_partition(oid), image,
                    fresh_only=self.plan.fresh_only, cpu_ms=0)
                # Checkpoint BEFORE the create commits: the progress record
                # precedes the commit record in the log, so the commit's
                # flush makes them durable together — a crash can never
                # leave a durable orphan copy that no in-progress record
                # names (resume would re-migrate the object to a second
                # copy and strand this one's stale references).
                if self.state_store is not None:
                    self._checkpoint_state(in_progress=(oid, new_oid))
                yield from create_txn.commit()
            else:
                new_oid = resumed_new_oid
                if self.state_store is not None:
                    self._checkpoint_state(in_progress=(oid, new_oid))
            # Lock the new location too (it is unreachable until the first
            # parent is patched, so the gap after create-commit is safe).
            yield from anchor.lock(new_oid, LockMode.X)
            self.in_flight[oid] = new_oid
            self._probe("in_flight", oid=oid, new_oid=new_oid)

            if resumed_new_oid is not None:
                yield from self._reconcile_copy(anchor, oid, new_oid)
            yield from self._patch_parents_one_at_a_time(anchor, oid, new_oid)

            # All parents now reference the new location; delete the old
            # copy inside the anchor (which holds its lock) and commit.
            yield from anchor.delete_object(oid, cpu_ms=0)
            yield from anchor.commit()
        except LockTimeoutError:
            # Deadlock: give everything back and retry this object.  The
            # new copy (committed in its own transaction) is reused — the
            # parents already patched legitimately point at it.
            self.stats.deadlock_retries += 1
            yield from anchor.abort(reason="deadlock")
            retry_new = self.in_flight.pop(oid, None)
            if self.stats.deadlock_retries > self.cfg.max_deadlock_retries:
                raise ReorganizationError(
                    f"{oid}: exceeded {self.cfg.max_deadlock_retries} "
                    f"deadlock retries")
            yield from self._retry_backoff(
                min(self.stats.deadlock_retries - 1, 32))
            yield from self._migrate_one(oid, resumed_new_oid=retry_new)
            return
        del self.in_flight[oid]
        self._finish_object(oid, new_oid)

    def _patch_parents_one_at_a_time(self, anchor, oid: Oid, new_oid: Oid
                                     ) -> Generator[Any, Any, None]:
        engine = self.engine
        batch = max(1, self.cfg.migration_batch_size)
        queue: List[Oid] = sorted(
            {self._translate(p, {}) for p in self._parents.get(oid, ())}
            | engine.ert_for(self.partition_id).parents_of(oid))
        while True:
            # Refill from the TRT: tuples referencing the old address name
            # parents that may (still or again) point at it.
            while not queue:
                entries = self.trt.entries_for(oid)
                if not entries:
                    break
                entry = min(entries,
                            key=lambda e: (e.parent, e.tid, e.action))
                if self.trt.pop_entry(entry):
                    stable = self._translate(entry.parent, {})
                    queue.append(stable)
                    # Survive deadlock retries: the tuple is consumed, so
                    # remember the parent in the approximate list.
                    self._parents.setdefault(oid, set()).add(stable)
            if not queue:
                break
            patch_txn = engine.txns.begin(system=True, reorg_partition=self.partition_id)
            patched = 0
            try:
                while queue and patched < batch:
                    parent = queue.pop(0)
                    if parent == oid or parent == new_oid:
                        # Self-reference (under either address — in an
                        # evacuation the new copy's own reference into the
                        # old partition lands in the ERT): the slot lives
                        # in the new copy, whose lock the anchor holds, so
                        # patch via the anchor.
                        yield from self._patch_slots(anchor, new_oid, oid,
                                                     new_oid)
                        patched += 1
                        continue
                    yield from self._lock_for_reorg(patch_txn, parent)
                    if engine.store.exists(parent):
                        yield from self._patch_slots(patch_txn, parent, oid,
                                                     new_oid)
                    patched += 1
                    self._note_lock_footprint(anchor, patch_txn)
                yield from patch_txn.commit()
            except LockTimeoutError:
                yield from patch_txn.abort(reason="deadlock")
                raise

    def _patch_slots(self, txn, holder: Oid, old_child: Oid,
                     new_child: Oid) -> Generator[Any, Any, None]:
        self._probe("patch", tid=txn.tid, holder=holder,
                    old_child=old_child, new_child=new_child)
        slots = self.engine.store.read_object(
            holder).slots_referencing(old_child)
        if slots:
            yield from self.engine.cpu.use(
                self.engine.config.cpu_ref_patch_ms * len(slots))
        for slot in slots:
            yield from txn.update_ref(holder, slot, new_child, cpu_ms=0)
            self.stats.parent_patches += 1

    def _reconcile_copy(self, anchor, oid: Oid, new_oid: Oid
                        ) -> Generator[Any, Any, None]:
        """Refresh a reused copy from the old location's committed state.

        Runs with the anchor holding X on both addresses, so both stored
        images are committed and stable; see
        :func:`reconciled_copy_image` for why the copy may be stale.
        """
        expected = reconciled_copy_image(self.engine, self.partition_id,
                                         oid, new_oid, self.transform)
        if self.engine.store.read_object(new_oid) != expected:
            yield from anchor.replace_object(new_oid, expected)

    def _note_lock_footprint(self, anchor, patch_txn) -> None:
        # The anchor holds the migrating object's two locations = one
        # distinct object; the patch transaction holds one parent.  Only
        # object-level locks count toward the §4.2 footprint — ancestor
        # granule intents (hierarchical manager) are excluded.
        raw = (self.engine.locks.object_lock_count(anchor.tid)
               + self.engine.locks.object_lock_count(patch_txn.tid))
        self.stats.max_locks_held = max(self.stats.max_locks_held, raw)

    def _finish_object(self, oid: Oid, new_oid: Oid) -> None:
        image_children = []
        # The new copy's children in this partition need their parent lists
        # repointed (Fig. 5 bookkeeping, same as the base algorithm).
        if self.engine.store.exists(new_oid):
            image_children = [
                c for c in self.engine.store.children_of(new_oid)
                if c.partition == self.partition_id]
        self._apply_bookkeeping({}, [(oid, new_oid, image_children)])

    # -- §4.4 resume -------------------------------------------------------------------

    def _checkpoint_state(self, in_progress=None) -> None:
        from .checkpointing import ReorgState
        state = ReorgState(
            algorithm=self.algorithm_name,
            partition_id=self.partition_id,
            order=list(self._order),
            parents={k: set(v) for k, v in self._parents.items()},
            mapping=dict(self._mapping),
            migrated=set(self._migrated),
            allocated_at_traversal=set(self._allocated_at_traversal),
            log_lsn=self.engine.log.last_lsn,
            in_progress=in_progress,
            relocation_floor=self.engine.store.partition(
                self.partition_id).relocation_floor,
            trt_entries=self.trt.entries(),
        )
        self.state_store.save(state)
        self.stats.checkpoints_taken += 1

    def resume_from(self, state) -> None:
        super().resume_from(state)
        self._resume_in_progress = state.in_progress
