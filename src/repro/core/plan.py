"""Relocation plans: where migrated objects go.

The paper deliberately leaves "where the objects of the partition should
be migrated" to the driving operation (§2): compaction, copying garbage
collection, clustering/partitioning, schema evolution.  A plan answers
exactly that question for the reorganizers, which stay policy-free.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..storage.oid import Oid


class RelocationPlan:
    """Base plan: migrate within the same partition, any free space."""

    #: When True, relocated objects only go to pages created after
    #: ``prepare`` ran — compaction must not refill the fragmented pages
    #: it is trying to empty.
    fresh_only = False

    def prepare(self, engine, partition_id: int) -> None:
        """Called once before migration starts."""

    def target_partition(self, oid: Oid) -> int:
        """Partition the new copy of ``oid`` is allocated in."""
        return oid.partition

    def order(self, oids: List[Oid]) -> List[Oid]:
        """Migration order (affects clustering of the new layout and, per
        §7, the I/O / locking pattern on external parents)."""
        return list(oids)

    def finalize(self, engine, partition_id: int) -> None:
        """Called once after every object has been migrated."""


class CompactionPlan(RelocationPlan):
    """Defragment: repack the partition's live objects into fresh pages,
    then drop the emptied ones (§1, "Compaction")."""

    fresh_only = True

    def prepare(self, engine, partition_id: int) -> None:
        engine.store.partition(partition_id).mark_relocation_floor()

    def order(self, oids: List[Oid]) -> List[Oid]:
        # Address order packs survivors densely in their original layout.
        return sorted(oids)

    def finalize(self, engine, partition_id: int) -> None:
        engine.store.partition(partition_id).drop_empty_pages()


class EvacuationPlan(RelocationPlan):
    """Move everything to another partition — the copying-collector shape
    (§4.6): live objects leave, the whole source region is reclaimed."""

    def __init__(self, target_partition: int):
        self._target = target_partition

    def prepare(self, engine, partition_id: int) -> None:
        if self._target == partition_id:
            raise ValueError("evacuation target equals the source partition")
        if not engine.store.has_partition(self._target):
            engine.create_partition(self._target)

    def target_partition(self, oid: Oid) -> int:
        return self._target

    def finalize(self, engine, partition_id: int) -> None:
        engine.store.partition(partition_id).drop_empty_pages()


class ParentLocalityPlan(RelocationPlan):
    """§7 (future work): migrate in an order that minimizes repeated lock
    acquisition on external parents.

    "An object external to the partition being reorganized ... may be the
    parent of multiple objects in the partition.  A natural question that
    arises is in what order do we migrate objects so that the number of
    I/O's required is minimized.  In a main memory database, the same
    order could be relevant since it may minimize the number of times
    locks have to be obtained on an external object."

    Objects sharing an external parent (per the ERT) migrate
    consecutively; combined with migration batching (§4.3), each batch
    acquires the shared parent's lock once instead of once per object.
    Wraps any base plan for placement decisions.
    """

    def __init__(self, base: Optional[RelocationPlan] = None):
        self.base = base or RelocationPlan()
        self._engine = None
        self._partition_id = None

    @property
    def fresh_only(self) -> bool:  # type: ignore[override]
        return self.base.fresh_only

    def prepare(self, engine, partition_id: int) -> None:
        self._engine = engine
        self._partition_id = partition_id
        self.base.prepare(engine, partition_id)

    def target_partition(self, oid: Oid) -> int:
        return self.base.target_partition(oid)

    def order(self, oids: List[Oid]) -> List[Oid]:
        if self._engine is None:
            return self.base.order(oids)
        ert = self._engine.ert_for(self._partition_id)
        oid_set = set(oids)

        # Greedy grouping: external parents in descending fan-in order,
        # each emitting its not-yet-ordered children consecutively — the
        # widest-shared parents benefit most from consecutive migration.
        children_of: dict = {}
        for child, parent in ert.entries():
            if child in oid_set:
                children_of.setdefault(parent, []).append(child)
        out: List[Oid] = []
        emitted = set()
        for parent in sorted(children_of,
                             key=lambda p: (-len(children_of[p]), p)):
            for child in sorted(children_of[parent]):
                if child not in emitted:
                    out.append(child)
                    emitted.add(child)
        for oid in self.base.order(oids):
            if oid not in emitted:
                out.append(oid)
                emitted.add(oid)
        return out

    def finalize(self, engine, partition_id: int) -> None:
        self.base.finalize(engine, partition_id)


class ClusteringPlan(RelocationPlan):
    """Re-cluster: migrate in an order given by a key function so related
    objects land on adjacent pages (§1, "Clustering and Partitioning").

    ``cluster_key`` maps an OID to a sortable key; objects sharing a key
    are migrated consecutively and therefore packed together.
    """

    fresh_only = True

    def __init__(self, cluster_key: Callable[[Oid], object],
                 target_partition: Optional[int] = None):
        self._key = cluster_key
        self._target = target_partition

    def prepare(self, engine, partition_id: int) -> None:
        if self._target is None:
            engine.store.partition(partition_id).mark_relocation_floor()
        elif not engine.store.has_partition(self._target):
            engine.create_partition(self._target)

    def target_partition(self, oid: Oid) -> int:
        return self._target if self._target is not None else oid.partition

    def order(self, oids: List[Oid]) -> List[Oid]:
        return sorted(oids, key=lambda oid: (self._key(oid), oid))

    def finalize(self, engine, partition_id: int) -> None:
        engine.store.partition(partition_id).drop_empty_pages()
