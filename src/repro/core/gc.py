"""On-line garbage collection (paper §4.6).

Because the reorganizer already detects all live objects of a partition,
it doubles as a garbage collector:

* :class:`CopyingGarbageCollector` — the partitioned copying-collector
  shape of [YNY94], but working with *physical* references (the paper's
  headline "no previous algorithm possesses" ability): run IRA with an
  evacuation plan and garbage collection on; live objects move out, the
  source partition is left empty and its space reclaimed.
* :class:`MarkAndSweepCollector` — the partitioned mark-and-sweep of
  [AFG95] as an in-place baseline: the same fuzzy-traversal + TRT
  machinery marks live objects on-line, then the sweep frees the rest.
  Nothing moves, so no reclustering benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Set

from ..config import ReorgConfig
from ..storage.oid import Oid
from .ira import IncrementalReorganizer, ReorgStats
from .plan import EvacuationPlan
from .traversal import find_objects_and_approx_parents


@dataclass
class GcStats:
    algorithm: str = "gc"
    partition_id: int = -1
    started_ms: float = 0.0
    finished_ms: float = 0.0
    live_objects: int = 0
    reclaimed_objects: int = 0
    reclaimed_bytes: int = 0

    @property
    def duration_ms(self) -> float:
        return self.finished_ms - self.started_ms


class CopyingGarbageCollector:
    """Evacuate live objects to ``target_partition``; reclaim the source."""

    algorithm_name = "copying-gc"

    def __init__(self, engine, partition_id: int, target_partition: int,
                 reorg_config: ReorgConfig = None):
        cfg = reorg_config or ReorgConfig()
        cfg.collect_garbage = True
        self.engine = engine
        self.partition_id = partition_id
        self.reorganizer = IncrementalReorganizer(
            engine, partition_id, plan=EvacuationPlan(target_partition),
            reorg_config=cfg)
        self.stats = GcStats(algorithm=self.algorithm_name,
                             partition_id=partition_id)

    def run(self) -> Generator[Any, Any, GcStats]:
        self.stats.started_ms = self.engine.sim.now
        before = self.engine.store.stats(self.partition_id)
        reorg_stats: ReorgStats = yield from self.reorganizer.run()
        after = self.engine.store.stats(self.partition_id)
        self.stats.live_objects = reorg_stats.objects_migrated
        self.stats.reclaimed_objects = reorg_stats.garbage_collected
        self.stats.reclaimed_bytes = max(
            0, before.capacity_bytes - after.capacity_bytes)
        self.stats.finished_ms = self.engine.sim.now
        return self.stats

    @property
    def mapping(self):
        return self.reorganizer.stats.mapping


class MarkAndSweepCollector:
    """In-place partitioned mark-and-sweep [AFG95] on the same substrate."""

    algorithm_name = "mark-sweep"

    def __init__(self, engine, partition_id: int):
        self.engine = engine
        self.partition_id = partition_id
        self.stats = GcStats(algorithm=self.algorithm_name,
                             partition_id=partition_id)

    def run(self) -> Generator[Any, Any, GcStats]:
        engine = self.engine
        self.stats.started_ms = engine.sim.now
        trt = engine.activate_trt(self.partition_id)
        try:
            # Same safety protocol as IRA: make the TRT complete, then the
            # traversal (with its L2 reseeding) marks every live object.
            yield from engine.txns.wait_for_quiesce()
            allocated: Set[Oid] = set(
                engine.store.live_oids(self.partition_id))
            result = yield from find_objects_and_approx_parents(
                engine, self.partition_id, trt)
            live = set(result.objects)
            self.stats.live_objects = len(live)
            garbage = sorted(oid for oid in allocated
                             if oid not in live
                             and oid not in trt.created_since_activation
                             and engine.store.exists(oid))
            for start in range(0, len(garbage), 32):
                txn = engine.txns.begin(system=True, reorg_partition=self.partition_id)
                chunk = garbage[start:start + 32]
                yield from engine.cpu.use(
                    engine.config.cpu_update_extra_ms * len(chunk))
                for oid in chunk:
                    self.stats.reclaimed_bytes += len(
                        engine.store.read_raw(oid))
                    yield from txn.delete_object(oid, cpu_ms=0)
                    self.stats.reclaimed_objects += 1
                yield from txn.commit()
            engine.store.partition(self.partition_id).drop_empty_pages()
        finally:
            engine.deactivate_trt(self.partition_id)
        self.stats.finished_ms = engine.sim.now
        return self.stats
