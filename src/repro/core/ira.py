"""The Incremental Reorganization Algorithm (IRA) — paper §3.

IRA migrates every object of a partition to a plan-chosen new location
while user transactions keep running, holding locks only on the parents
of the *one* object currently being migrated:

1. ``Find_Objects_And_Approx_Parents`` (Fig. 3): a fuzzy traversal —
   latches only — finds the live objects and approximate parent lists.
2. Per object (Fig. 4 ``Find_Exact_Parents``): write-lock the approximate
   parents, discard the ones that no longer reference the object, then
   drain the TRT tuples for the object — locking each tuple's parent and
   keeping it if the reference is (still/now) present — until no tuple
   remains.  At that point Lemmas 3.2/3.3 guarantee no committed object
   and no active transaction can reach the old address.
3. ``Move_Object_And_Update_Refs`` (Fig. 5): copy the object, patch every
   parent's reference slot, fix the ERTs (done here by the log analyzer
   mining the migration's own log records), fix the in-memory parent
   lists of the object's children, delete the old copy, release locks.

Each migration runs inside a system transaction; ``migration_batch_size``
groups several migrations per transaction to amortize the commit flush
(§4.3).  A lock timeout (= deadlock, §4.4) aborts the current batch and
retries it.  When the engine runs transactions with short-duration locks
instead of strict 2PL, IRA additionally waits, after locking any object,
for every active transaction that ever locked it (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set

from ..concurrency import LockMode, LockTimeoutError
from ..config import ReorgConfig
from ..errors import ReorganizationError
from ..sim import Delay
from ..storage.oid import Oid
from .plan import RelocationPlan
from .traversal import (
    TraversalResult,
    find_objects_and_approx_parents,
    fuzzy_traversal,
)


@dataclass
class ReorgStats:
    """What a reorganization run did; returned by ``run()``."""

    algorithm: str = "ira"
    partition_id: int = -1
    started_ms: float = 0.0
    finished_ms: float = 0.0
    objects_found: int = 0
    objects_migrated: int = 0
    garbage_collected: int = 0
    parent_patches: int = 0
    deadlock_retries: int = 0
    #: Total simulated time spent sleeping between deadlock retries.
    backoff_ms_total: float = 0.0
    max_locks_held: int = 0
    #: Lock acquisitions on objects outside the partition (the §7 metric
    #: the ParentLocalityPlan ordering minimizes).
    external_lock_acquisitions: int = 0
    trt_peak: int = 0
    checkpoints_taken: int = 0
    #: old address -> new address for every migrated object.
    mapping: Dict[Oid, Oid] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.finished_ms - self.started_ms


class IncrementalReorganizer:
    """On-line reorganization of one partition (basic IRA, §3)."""

    algorithm_name = "ira"

    def __init__(self, engine, partition_id: int,
                 plan: Optional[RelocationPlan] = None,
                 reorg_config: Optional[ReorgConfig] = None,
                 state_store=None, transform=None):
        self.engine = engine
        self.partition_id = partition_id
        self.plan = plan or RelocationPlan()
        self.cfg = reorg_config or ReorgConfig()
        self.state_store = state_store
        #: Optional ``(oid, image) -> image`` hook applied to each object
        #: as it migrates — the schema-evolution use case of §1 (e.g.
        #: widening every object's payload).  The transform must preserve
        #: the reference slots; only the payload may change.
        self.transform = transform
        self.stats = ReorgStats(algorithm=self.algorithm_name,
                                partition_id=partition_id)
        self.trt = None
        # Working state (checkpointable, §4.4).
        self._parents: Dict[Oid, Set[Oid]] = {}
        self._order: List[Oid] = []
        self._mapping: Dict[Oid, Oid] = self.stats.mapping
        # Addresses handed out as migration *targets*.  Slot reuse can
        # hand a freed source address back out as a later target, so a
        # parent-list entry that already names a target must never be
        # pushed through the old->new mapping again (see _translate).
        self._new_targets: Set[Oid] = set()
        self._migrated: Set[Oid] = set()
        self._allocated_at_traversal: Set[Oid] = set()
        self._resumed = False
        # Seeded per-reorganizer: a string seed keeps runs reproducible
        # (tuple seeds would go through randomized hash()).
        self._retry_policy = self.cfg.retry_policy()
        self._retry_rng = self._retry_policy.rng(
            f"backoff/{self.cfg.retry_seed}/{partition_id}")
        #: Observation hook ``probe(event, **info)`` for repro.explore:
        #: fired at "exact_parents" (oid, parents), "migrated"
        #: (oid, new_oid) and "lock" (tid, target).  Must not mutate
        #: reorganizer state.
        self.probe = None
        #: Pacing hook: a zero-arg callable returning a generator the
        #: migration loop drives between batches.  The reorg governor
        #: (:mod:`repro.serve.governor`) uses it to delay or pause the
        #: worker when the serving layer's SLO is breached; ``None``
        #: runs flat out.
        self.pacer = None

    def _probe(self, event: str, **info) -> None:
        if self.probe is not None:
            self.probe(event, **info)

    def _parents_to_patch(self, oid: Oid, parents: Set[Oid]) -> List[Oid]:
        """Seam: the ordered parent list whose slots get patched for one
        migration.  repro.explore's mutation tests override this to model
        a buggy reorganizer that skips a pointer rewrite."""
        return sorted(parents)

    # -- top level (Fig. 1) -------------------------------------------------------

    def run(self) -> Generator[Any, Any, ReorgStats]:
        self.stats.started_ms = self.engine.sim.now
        if self.trt is None:
            self.trt = self.engine.activate_trt(self.partition_id)
        try:
            if not self._resumed:
                # §4.5: wait for transactions active at start so that every
                # relevant pointer update is guaranteed to be in the TRT.
                yield from self.engine.txns.wait_for_quiesce()
                self.plan.prepare(self.engine, self.partition_id)
                yield from self._discover()
            yield from self._migrate_all()
            if self.cfg.collect_garbage:
                yield from self._collect_garbage()
            self.plan.finalize(self.engine, self.partition_id)
            if self.state_store is not None:
                # Tombstone the progress record: a crash after this point
                # must not resume a finished reorganization.
                self.state_store.clear()
        finally:
            self.engine.deactivate_trt(self.partition_id)
        self.stats.trt_peak = self.trt.stats.peak_size
        self.stats.finished_ms = self.engine.sim.now
        return self.stats

    # -- step 1: discovery ---------------------------------------------------------

    def _discover(self) -> Generator[Any, Any, None]:
        if self.cfg.collect_garbage:
            # ERT-seeded traversal: only live objects are found, so the
            # rest of the partition is detectable garbage (§3.4, §4.6).
            result = yield from find_objects_and_approx_parents(
                self.engine, self.partition_id, self.trt)
        else:
            # Allocation-seeded traversal (§3.4's alternative): visit every
            # allocated object so even unreachable ones are migrated with
            # their reference structure intact.
            result = TraversalResult()
            seeds = list(self.engine.store.live_oids(self.partition_id))
            yield from fuzzy_traversal(self.engine, self.partition_id,
                                       seeds, result)
            # TRT reseeding still applies (Fig. 3 L2) for objects created
            # by in-flight inserts we have not seen.
            while True:
                missed = [oid for oid in self.trt.referenced_objects()
                          if not result.visited(oid)
                          and self.engine.store.exists(oid)]
                if not missed:
                    break
                yield from fuzzy_traversal(self.engine, self.partition_id,
                                           missed, result)
        self._parents = result.parents
        self._order = self.plan.order(result.ordered_objects())
        self._allocated_at_traversal = set(
            self.engine.store.live_oids(self.partition_id))
        self.stats.objects_found = len(self._order)

    # -- step 2: migration loop ---------------------------------------------------------

    def _migrate_all(self) -> Generator[Any, Any, None]:
        batch_size = max(1, self.cfg.migration_batch_size)
        pending = [oid for oid in self._order if oid not in self._migrated]
        for start in range(0, len(pending), batch_size):
            batch = [oid for oid in pending[start:start + batch_size]
                     if oid not in self._migrated
                     and self.engine.store.exists(oid)]
            if not batch:
                continue
            yield from self._migrate_batch(batch)
            if self.state_store is not None and self.cfg.checkpoint_every:
                if len(self._migrated) % self.cfg.checkpoint_every < batch_size:
                    self._checkpoint_state()
            if self.pacer is not None:
                yield from self.pacer()

    def _migrate_batch(self, batch: List[Oid]) -> Generator[Any, Any, None]:
        """Migrate a group of objects in one system transaction (§4.3),
        retrying the whole batch after a deadlock-resolving timeout."""
        for attempt in range(self.cfg.max_deadlock_retries + 1):
            txn = self.engine.txns.begin(system=True, reorg_partition=self.partition_id)
            batch_mapping: Dict[Oid, Oid] = {}
            keep_locked: Set[Oid] = set()
            bookkeeping: List[tuple] = []
            try:
                for oid in batch:
                    parents = yield from self._find_exact_parents(
                        txn, oid, batch_mapping, keep_locked)
                    yield from self._move_object(
                        txn, oid, parents, batch_mapping, bookkeeping)
                yield from self._commit_batch(txn, batch_mapping)
            except LockTimeoutError:
                self.stats.deadlock_retries += 1
                yield from txn.abort(reason="deadlock")
                yield from self._retry_backoff(attempt)
                continue
            self._apply_bookkeeping(batch_mapping, bookkeeping)
            return
        raise ReorganizationError(
            f"batch starting at {batch[0]} exceeded "
            f"{self.cfg.max_deadlock_retries} deadlock retries")

    def _commit_batch(self, txn,
                      batch_mapping: Dict[Oid, Oid]
                      ) -> Generator[Any, Any, None]:
        """Commit one migration batch.

        The seam for distributed reorganization (:mod:`repro.dist`):
        when some of the batch's parents live on other nodes the commit
        becomes a two-phase protocol across those nodes.  Single-node
        reorganization just commits the local transaction.
        """
        yield from txn.commit()

    def _retry_backoff(self, attempt: int) -> Generator[Any, Any, None]:
        """Sleep before retrying a deadlock-aborted batch (§4.4 retries).

        Capped exponential backoff with deterministic seeded jitter, so
        repeated collisions with the same user transactions de-synchronize
        instead of re-colliding in lockstep.  ``retry_backoff_ms = 0``
        restores the retry-immediately behaviour.
        """
        delay = self._retry_policy.delay_ms(attempt, self._retry_rng)
        if delay > 0:
            self.stats.backoff_ms_total += delay
            yield Delay(delay)

    # -- Fig. 4: Find_Exact_Parents ------------------------------------------------------

    def _find_exact_parents(self, txn, oid: Oid,
                            batch_mapping: Dict[Oid, Oid],
                            keep_locked: Set[Oid]
                            ) -> Generator[Any, Any, Set[Oid]]:
        store = self.engine.store
        ert = self.engine.ert_for(self.partition_id)
        exact: Set[Oid] = set()

        # S1: lock the approximate parents — traversal-found intra-partition
        # parents (translated through in-batch migrations) plus the ERT's
        # current external parents.
        approx = {self._translate(p, batch_mapping)
                  for p in self._parents.get(oid, ())}
        approx |= ert.parents_of(oid)
        for parent in sorted(approx):
            yield from self._lock_for_reorg(txn, parent)
            if store.exists(parent) and \
                    store.read_object(parent).references(oid):
                exact.add(parent)
                keep_locked.add(parent)
            elif parent not in keep_locked:
                self.engine.locks.release(txn.tid, parent)

        # S2: drain the TRT tuples whose referenced object is oid.
        while True:
            entries = self.trt.entries_for(oid)
            if not entries:
                break
            entry = min(entries, key=lambda e: (e.parent, e.tid, e.action))
            # Translate through committed migrations (stable across deadlock
            # retries) and then through this batch's in-flight migrations.
            stable = self._mapping.get(entry.parent, entry.parent)
            parent = batch_mapping.get(stable, stable)
            yield from self._lock_for_reorg(txn, parent)
            self.trt.pop_entry(entry)
            if store.exists(parent) and \
                    store.read_object(parent).references(oid):
                exact.add(parent)
                keep_locked.add(parent)
                # Remember across deadlock retries: tuples are consumed, so
                # retries must re-verify this parent from the approx list.
                # Record the committed-stable address — the batch mapping
                # rolls back if this batch aborts.
                self._parents.setdefault(oid, set()).add(stable)
            elif parent not in keep_locked:
                self.engine.locks.release(txn.tid, parent)

        self.stats.max_locks_held = max(
            self.stats.max_locks_held,
            self.engine.locks.object_lock_count(txn.tid))
        self._probe("exact_parents", oid=oid, parents=set(exact))
        return exact

    def _lock_for_reorg(self, txn, target: Oid) -> Generator[Any, Any, None]:
        if target.partition != self.partition_id and \
                not self.engine.locks.holds(txn.tid, target):
            self.stats.external_lock_acquisitions += 1
        self._probe("lock", tid=txn.tid, target=target)
        yield from txn.lock(target, LockMode.X)
        if not self.engine.config.strict_transactions:
            # §4.1: transactions release locks early, so also wait for every
            # active transaction that ever locked this object — it may hold
            # a copied-out reference in its local memory.
            lockers = self.engine.locks.ever_lockers(target) - {txn.tid}
            if lockers:
                yield from self.engine.txns.wait_for(lockers)

    # -- Fig. 5: Move_Object_And_Update_Refs ----------------------------------------------

    def _move_object(self, txn, oid: Oid, parents: Set[Oid],
                     batch_mapping: Dict[Oid, Oid],
                     bookkeeping: List[tuple]) -> Generator[Any, Any, Oid]:
        engine = self.engine
        cfg = engine.config
        # Write-lock the object itself before copying its image (the §4.2
        # variant already does).  With a single reorganizer the parent
        # locks suffice — every user access traverses a locked parent —
        # but a *concurrent* reorganization of another partition patches
        # this object's reference slots directly, holding it as a locked
        # parent; copying an unlocked image could resurrect a just-patched
        # stale reference in the new location.
        yield from self._lock_for_reorg(txn, oid)
        if not engine.store.exists(oid):
            return oid  # deleted while we waited for the lock
        image = engine.store.read_object(oid)
        if self.transform is not None:
            original_refs = [ref for _, ref in image.refs()]
            image = self.transform(oid, image)
            if [ref for _, ref in image.refs()] != original_refs:
                raise ReorganizationError(
                    f"transform changed the references of {oid}")
        # One consolidated CPU burst per migration: the copy plus the
        # per-parent patch work (a real reorganizer does not reschedule
        # between the micro-steps of one object's migration).
        burst = (cfg.cpu_migrate_ms + 2 * cfg.cpu_update_extra_ms
                 + cfg.cpu_ref_patch_ms * max(1, len(parents)))
        yield from engine.cpu.use(burst)
        new_oid = yield from txn.create_object(
            self.plan.target_partition(oid), image,
            fresh_only=self.plan.fresh_only, cpu_ms=0)
        # Patch every reference to the old address.  A self-reference lives
        # in the *new* copy now; all other parents are write-locked.
        for parent in self._parents_to_patch(oid, parents):
            patch_target = new_oid if parent == oid else parent
            for slot in engine.store.read_object(
                    patch_target).slots_referencing(oid):
                yield from txn.update_ref(patch_target, slot, new_oid,
                                          cpu_ms=0)
                self.stats.parent_patches += 1
        # The ERT updates Fig. 5 lists are produced by the log analyzer
        # from this transaction's OBJ_CREATE / REF_UPDATE / OBJ_DELETE
        # records — no direct table surgery here.
        yield from txn.delete_object(oid, cpu_ms=0)
        self.stats.max_locks_held = max(
            self.stats.max_locks_held, engine.locks.object_lock_count(txn.tid))
        batch_mapping[oid] = new_oid
        # Defer in-memory bookkeeping to commit time (a deadlock retry must
        # not leave phantom parent-list edits behind).
        children_here = [c for c in image.children()
                         if c.partition == self.partition_id]
        bookkeeping.append((oid, new_oid, children_here))
        return new_oid

    def _apply_bookkeeping(self, batch_mapping: Dict[Oid, Oid],
                           bookkeeping: List[tuple]) -> None:
        for oid, new_oid, children_here in bookkeeping:
            # Fig. 5: for each not-yet-migrated child in the partition,
            # replace oid by new_oid in its parent list.
            for child in children_here:
                parent_set = self._parents.get(child)
                if parent_set is not None and oid in parent_set:
                    parent_set.discard(oid)
                    parent_set.add(new_oid)
            self._mapping[oid] = new_oid
            self._new_targets.add(new_oid)
            self._migrated.add(oid)
            self.stats.objects_migrated += 1
            self._probe("migrated", oid=oid, new_oid=new_oid)

    def _translate(self, oid: Oid, batch_mapping: Dict[Oid, Oid]) -> Oid:
        """Committed migrations first, then this batch's in-flight ones.

        An address already handed out as a migration target is final:
        when the allocator reuses a freed source slot for a later
        target, that address is also a *key* of the mapping, and
        translating it again would alias two different objects.
        """
        if oid in self._new_targets:
            return oid
        oid = self._mapping.get(oid, oid)
        return batch_mapping.get(oid, oid)

    # -- garbage collection (§4.6) ------------------------------------------------------

    def _collect_garbage(self) -> Generator[Any, Any, None]:
        """Free objects the traversal proved unreachable.

        Lemma 3.1: every live object was traversed, so anything allocated
        at traversal time and never visited is garbage.
        """
        found = set(self._order)
        garbage = [oid for oid in sorted(self._allocated_at_traversal)
                   if oid not in found
                   and oid not in self.trt.created_since_activation
                   and self.engine.store.exists(oid)]
        for start in range(0, len(garbage), 32):
            txn = self.engine.txns.begin(system=True, reorg_partition=self.partition_id)
            chunk = garbage[start:start + 32]
            yield from self.engine.cpu.use(
                self.engine.config.cpu_update_extra_ms * len(chunk))
            for oid in chunk:
                yield from txn.delete_object(oid, cpu_ms=0)
                self.stats.garbage_collected += 1
            yield from txn.commit()

    # -- §4.4: reorganizer state checkpointing --------------------------------------------

    def _checkpoint_state(self) -> None:
        from .checkpointing import ReorgState
        state = ReorgState(
            algorithm=self.algorithm_name,
            partition_id=self.partition_id,
            order=list(self._order),
            parents={k: set(v) for k, v in self._parents.items()},
            mapping=dict(self._mapping),
            migrated=set(self._migrated),
            allocated_at_traversal=set(self._allocated_at_traversal),
            log_lsn=self.engine.log.last_lsn,
            relocation_floor=self.engine.store.partition(
                self.partition_id).relocation_floor,
            trt_entries=self.trt.entries(),
        )
        self.state_store.save(state)
        self.stats.checkpoints_taken += 1

    def resume_from(self, state) -> None:
        """Adopt checkpointed state (§4.4) — skips quiesce wait, plan
        preparation and traversal; the caller must have rebuilt the TRT
        from the log (see :mod:`repro.core.checkpointing`)."""
        self._order = list(state.order)
        self._parents = {k: set(v) for k, v in state.parents.items()}
        self._mapping.update(state.mapping)
        self._new_targets.update(self._mapping.values())
        self._migrated = set(state.migrated)
        self._allocated_at_traversal = set(state.allocated_at_traversal)
        self.stats.objects_found = len(self._order)
        self._resumed = True
