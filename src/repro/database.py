"""The high-level public API.

:class:`Database` wraps an engine plus the conveniences a user wants for
the common flows — create partitions, run transactions, reorganize
on-line, compact, garbage-collect, crash and recover — without touching
the simulation kernel directly.  The examples are written against this
class; everything it does is also reachable through the lower layers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from .config import ReorgConfig, SystemConfig, WorkloadConfig
from .core import (
    CopyingGarbageCollector,
    CompactionPlan,
    GcStats,
    IncrementalReorganizer,
    MarkAndSweepCollector,
    OfflineReorganizer,
    PartitionQuiesceReorganizer,
    RelocationPlan,
    ReorgStats,
    TwoLockReorganizer,
)
from .engine import CrashImage, IntegrityReport, StorageEngine
from .mvcc import MergeReorganizer
from .sim import Simulator
from .storage import ObjectImage, Oid, PartitionStats
from .txn import Transaction
from .workload import GraphLayout, build_database

#: Registry of on-line/off-line reorganization algorithms by name.
REORGANIZERS: Dict[str, Callable] = {
    "ira": IncrementalReorganizer,
    "ira-2lock": TwoLockReorganizer,
    "pqr": PartitionQuiesceReorganizer,
    "offline": OfflineReorganizer,
    "mvcc-merge": MergeReorganizer,
}


class Database:
    """An object database with physical references and on-line reorg."""

    def __init__(self, system: Optional[SystemConfig] = None,
                 engine: Optional[StorageEngine] = None):
        self.engine = engine or StorageEngine(system)

    # -- construction ---------------------------------------------------------------

    @classmethod
    def with_workload(cls, workload: Optional[WorkloadConfig] = None,
                      system: Optional[SystemConfig] = None
                      ) -> Tuple["Database", GraphLayout]:
        """A database pre-loaded with the paper's §5.2 object graph."""
        db = cls(system=system)
        layout = build_database(db.engine, workload or WorkloadConfig())
        return db, layout

    @classmethod
    def recover(cls, image: CrashImage,
                sim: Optional[Simulator] = None) -> "Database":
        """Restart recovery from a crash image."""
        return cls(engine=StorageEngine.recover(image, sim=sim))

    # -- plumbing ----------------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self.engine.sim

    @property
    def store(self):
        return self.engine.store

    def run(self, gen: Generator, name: str = "main") -> Any:
        """Drive a generator (transaction logic, reorganizer, …) to
        completion inside the simulator and return its result."""
        return self.sim.run_process(gen, name=name)

    def create_partition(self, partition_id: int) -> None:
        self.engine.create_partition(partition_id)

    def begin(self, system: bool = False) -> Transaction:
        return self.engine.txns.begin(system=system)

    # -- one-shot transactional helpers (each runs the simulator) ------------------------

    def execute(self, body: Callable[[Transaction], Generator]) -> Any:
        """Run ``body(txn)`` inside a committed transaction.

        ``body`` is a generator function receiving the transaction; its
        return value is returned.  On any exception the transaction is
        aborted and the exception re-raised.
        """
        def _wrapper():
            txn = self.begin()
            try:
                result = yield from body(txn)
            except BaseException:
                yield from txn.abort()
                raise
            yield from txn.commit()
            return result
        return self.run(_wrapper(), name="execute")

    def create_object(self, partition_id: int, ref_capacity: int,
                      payload: bytes = b"", refs=()) -> Oid:
        """Convenience: create one object in its own transaction."""
        image = ObjectImage.new(ref_capacity, payload=payload, refs=refs)

        def _body(txn):
            txn.local_refs.update(image.children())
            oid = yield from txn.create_object(partition_id, image)
            return oid
        return self.execute(_body)

    def read_object(self, oid: Oid) -> ObjectImage:
        """Direct (non-transactional) read, for inspection."""
        return self.store.read_object(oid)

    # -- reorganization -----------------------------------------------------------------

    def reorganize(self, partition_id: int, algorithm: str = "ira",
                   plan: Optional[RelocationPlan] = None,
                   reorg_config: Optional[ReorgConfig] = None) -> ReorgStats:
        """Reorganize a partition to completion (no concurrent load).

        For experiments with concurrent transactions use
        :class:`~repro.workload.WorkloadDriver` instead.
        """
        reorganizer = self.reorganizer(partition_id, algorithm, plan,
                                       reorg_config)
        return self.run(reorganizer.run(), name=f"reorg-{algorithm}")

    def reorganizer(self, partition_id: int, algorithm: str = "ira",
                    plan: Optional[RelocationPlan] = None,
                    reorg_config: Optional[ReorgConfig] = None,
                    **kwargs):
        """Construct (but do not run) a reorganizer by algorithm name."""
        try:
            factory = REORGANIZERS[algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {sorted(REORGANIZERS)}") from None
        if algorithm == "offline":
            return factory(self.engine, partition_id, plan=plan)
        return factory(self.engine, partition_id, plan=plan,
                       reorg_config=reorg_config, **kwargs)

    def compact(self, partition_id: int,
                algorithm: str = "ira") -> ReorgStats:
        """On-line compaction: repack live objects, drop emptied pages."""
        return self.reorganize(partition_id, algorithm=algorithm,
                               plan=CompactionPlan())

    def collect_garbage(self, partition_id: int, method: str = "copying",
                        target_partition: Optional[int] = None) -> GcStats:
        """On-line garbage collection (§4.6)."""
        if method == "copying":
            if target_partition is None:
                target_partition = max(self.store.partition_ids()) + 1
            collector = CopyingGarbageCollector(self.engine, partition_id,
                                                target_partition)
        elif method == "mark-sweep":
            collector = MarkAndSweepCollector(self.engine, partition_id)
        else:
            raise ValueError(f"unknown GC method {method!r}")
        return self.run(collector.run(), name=f"gc-{method}")

    # -- durability ------------------------------------------------------------------------

    def checkpoint(self) -> int:
        return self.engine.take_checkpoint()

    def crash(self) -> CrashImage:
        return self.engine.crash()

    # -- inspection --------------------------------------------------------------------------

    def verify_integrity(self) -> IntegrityReport:
        return self.engine.verify_integrity()

    def partition_stats(self, partition_id: int) -> PartitionStats:
        return self.store.stats(partition_id)

    def __repr__(self) -> str:
        return f"<Database {self.engine!r}>"
