"""Free-space tracking for a partition.

Continuous allocation/deallocation of variable-length objects fragments
pages — the compaction motivation in the paper's introduction.  The map
tracks each page's free bytes and answers "which page can hold N bytes?",
optionally restricted to pages at or above a floor (used by compaction to
force relocation into *fresh* pages instead of refilling fragmented ones).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class FreeSpaceMap:
    """Tracks free bytes per page of one partition."""

    def __init__(self) -> None:
        self._free: Dict[int, int] = {}

    def register_page(self, page_no: int, free_space: int) -> None:
        self._free[page_no] = free_space

    def forget_page(self, page_no: int) -> None:
        self._free.pop(page_no, None)

    def update(self, page_no: int, free_space: int) -> None:
        if page_no not in self._free:
            raise KeyError(f"page {page_no} not registered")
        self._free[page_no] = free_space

    def free_space(self, page_no: int) -> int:
        return self._free[page_no]

    def find_page(self, nbytes: int, min_page: int = 0) -> Optional[int]:
        """Lowest-numbered page >= ``min_page`` with >= ``nbytes`` free.

        First-fit by page number keeps allocation deterministic, which the
        reproducibility of the experiments relies on.
        """
        best: Optional[int] = None
        for page_no, free in self._free.items():
            if page_no < min_page or free < nbytes:
                continue
            if best is None or page_no < best:
                best = page_no
        return best

    def pages(self) -> Iterator[int]:
        return iter(sorted(self._free))

    def total_free(self) -> int:
        return sum(self._free.values())

    def __len__(self) -> int:
        return len(self._free)

    def __contains__(self, page_no: int) -> bool:
        return page_no in self._free
