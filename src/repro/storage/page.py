"""Slotted pages.

Each partition is a set of slotted pages.  A page holds variable-length
records addressed by a stable slot number (so an object's OID — which
embeds the slot — survives in-page compaction).  Records grow from the
front of the page, the slot directory from the back, classic style.

The page also carries a ``page_lsn``: the LSN of the last log record
applied to it.  Redo during restart recovery compares record LSNs against
it, which makes redo idempotent (ARIES).

Every page maintains a CRC32 over its content, updated by each mutating
operation.  The checksum travels with the page's durable image
(``snapshot``) and is verified on ``restore`` — a torn checkpoint write
or a flipped bit in stable storage surfaces as a
:class:`~repro.storage.errors.PageChecksumError` instead of silently
corrupt data.  ``verify`` re-checks a *live* page (checksum plus slot
directory invariants), which is what the scrubber and the buffer pool's
read-verification use: a stray write that bypasses the page API cannot
keep the checksum in sync, so it is detected.
"""

from __future__ import annotations

import struct
import zlib
from itertools import chain, count
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import (
    NoSuchObjectError,
    PageChecksumError,
    PageFullError,
    StorageError,
)

#: Bytes of fixed page header we account for (slot count, free pointer,
#: page LSN).
PAGE_HEADER_BYTES = 16
#: Bytes per slot-directory entry (offset + length).
SLOT_ENTRY_BYTES = 4

_FREE = -1
_crc32 = zlib.crc32
_META = struct.Struct("<qqq")   # free_ptr, live_bytes, page_lsn (snapshots)
_QQ = struct.Struct("<qq")
#: Process-wide page-mutation stamp.  Every mutating page operation takes
#: the next value, so a ``(page, version)`` pair observed once can be
#: re-validated later with a single integer compare — and, because the
#: counter is global, a version can never recur on a *different* page
#: object (restore/repair build fresh pages with fresh stamps), so stale
#: cache entries can never alias a rebuilt page.
_VERSION_COUNTER = count(1)
_next_version = _VERSION_COUNTER.__next__

#: Cached packers for flattened slot directories, keyed by value count.
#: Packing the whole directory in one call feeds crc32 the same byte
#: stream as the old per-slot loop (CRC values are unchanged) at a
#: fraction of the Python-call overhead — this function runs on every
#: page mutation and dominated the bench profile.
_SLOT_PACKERS: Dict[int, struct.Struct] = {}


def _crc_content(buf, slots: List[Tuple[int, int]],
                 free_ptr: int, live_bytes: int) -> int:
    """CRC32 over everything a torn write or bit flip could damage."""
    crc = zlib.crc32(buf)
    crc = zlib.crc32(_QQ.pack(free_ptr, live_bytes), crc)
    if slots:
        count = len(slots) * 2
        packer = _SLOT_PACKERS.get(count)
        if packer is None:
            packer = _SLOT_PACKERS[count] = struct.Struct(f"<{count}q")
        crc = zlib.crc32(packer.pack(*chain.from_iterable(slots)), crc)
    return crc


def snapshot_checksum(state: Dict[str, object]) -> int:
    """The checksum a page snapshot's content *should* carry."""
    crc = _crc_content(state["buf"], state["slots"],  # type: ignore
                       state["free_ptr"], state["live_bytes"])  # type: ignore
    return zlib.crc32(_META.pack(0, 0, state["page_lsn"]), crc)  # type: ignore


def snapshot_checksum_ok(state: Dict[str, object]) -> bool:
    """Whether a durable page image passes its own checksum (pre-CRC
    snapshots, which carry no ``crc`` field, are accepted)."""
    recorded = state.get("crc")
    return recorded is None or recorded == snapshot_checksum(state)


class Page:
    """A slotted page of ``size`` bytes.

    Record bytes live in an actual ``bytearray`` so partial in-place writes
    (reference-slot updates, payload pokes) operate on real storage, not on
    Python object attributes.
    """

    __slots__ = ("size", "page_lsn", "_buf", "_mv", "_free_ptr", "_slots",
                 "_live_bytes", "_crc", "_tail", "_version")

    def __init__(self, size: int):
        if size <= PAGE_HEADER_BYTES + SLOT_ENTRY_BYTES:
            raise ValueError(f"page size too small: {size}")
        self.size = size
        self.page_lsn = 0
        self._buf = bytearray(size)
        # Long-lived memoryview over the buffer, sliced per read instead
        # of constructed per read.  Safe to hold: the buffer is never
        # resized (records are placed with equal-length slice writes),
        # and every path that rebinds ``_buf`` rebinds the view with it.
        self._mv = memoryview(self._buf)
        self._free_ptr = 0               # next byte offset for appends
        self._slots: List[Tuple[int, int]] = []   # slot -> (offset, length)
        self._live_bytes = 0
        # Mutation stamp (see ``_VERSION_COUNTER``); bumped by every
        # operation that changes record bytes or the slot directory.
        self._version = _next_version()
        # Packed (free_ptr, live_bytes, slot directory) bytes, reused by
        # the checksum while only record *bytes* change (the common case:
        # in-place payload pokes and reference-slot writes).  Any method
        # touching the directory or the space accounting resets it.
        self._tail: Optional[bytes] = None
        self._crc = self._content_crc()

    # -- space accounting ----------------------------------------------------

    @property
    def slot_count(self) -> int:
        return len(self._slots)

    @property
    def live_slot_count(self) -> int:
        return sum(1 for off, _ in self._slots if off != _FREE)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed by live records plus fixed overheads."""
        return (PAGE_HEADER_BYTES + self._live_bytes
                + len(self._slots) * SLOT_ENTRY_BYTES)

    @property
    def free_space(self) -> int:
        """Bytes available for new records (assuming one new slot entry)."""
        return max(0, self.size - self.used_bytes - SLOT_ENTRY_BYTES)

    @property
    def is_empty(self) -> bool:
        return self._live_bytes == 0

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_space

    # -- record operations -----------------------------------------------------

    def insert(self, data: bytes) -> int:
        """Store ``data`` in a free slot; returns the slot number."""
        if not self.fits(len(data)):
            raise PageFullError(
                f"{len(data)} bytes do not fit ({self.free_space} free)")
        slot = self._find_free_slot()
        self._place(slot, data)
        return slot

    def insert_at(self, slot: int, data: bytes) -> None:
        """Store ``data`` at a specific slot number (recovery redo path)."""
        while len(self._slots) <= slot:
            self._slots.append((_FREE, 0))
            self._tail = None
        offset, _ = self._slots[slot]
        if offset != _FREE:
            raise StorageError(f"slot {slot} already occupied")
        needed = len(data)
        if self.size - self.used_bytes < needed:
            raise PageFullError(
                f"{needed} bytes do not fit at slot {slot}")
        self._place(slot, data)

    def read(self, slot: int) -> bytes:
        offset, length = self._slot_entry(slot)
        return bytes(self._buf[offset:offset + length])

    def read_view(self, slot: int) -> memoryview:
        """Zero-copy view of a record — valid only until the next page
        mutation; callers must compare/copy immediately, never hold it."""
        offset, length = self._slot_entry(slot)
        return self._mv[offset:offset + length]

    def read_bytes(self, slot: int, start: int, length: int) -> bytes:
        """Read ``length`` bytes at record-relative offset ``start``."""
        offset, reclen = self._slot_entry(slot)
        if start < 0 or start + length > reclen:
            raise StorageError(
                f"read [{start}:{start + length}] out of record of {reclen}B")
        return bytes(self._buf[offset + start:offset + start + length])

    def write_bytes(self, slot: int, start: int, data: bytes) -> None:
        """Overwrite bytes within a record in place (size unchanged)."""
        offset, reclen = self._slot_entry(slot)
        if start < 0 or start + len(data) > reclen:
            raise StorageError(
                f"write [{start}:{start + len(data)}] out of record "
                f"of {reclen}B")
        self._buf[offset + start:offset + start + len(data)] = data
        self._version = _next_version()
        # In-place writes never touch the directory, so the cached tail
        # is almost always valid — inline that branch of _content_crc.
        tail = self._tail
        if tail is not None:
            self._crc = _crc32(tail, _crc32(self._buf))
        else:
            self._crc = self._content_crc()

    def update(self, slot: int, data: bytes) -> None:
        """Replace a record's bytes; relocates within the page if resized."""
        offset, reclen = self._slot_entry(slot)
        if len(data) == reclen:
            self._buf[offset:offset + reclen] = data
            self._version = _next_version()
            self._crc = self._content_crc()
            return
        # Free the old record and try to place the new one; roll back to the
        # old image if it does not fit so the page is never left corrupted.
        old = bytes(self._buf[offset:offset + reclen])
        self._slots[slot] = (_FREE, 0)
        self._live_bytes -= reclen
        available = self.size - self.used_bytes
        if len(data) > available:
            self._place(slot, old)
            raise PageFullError(
                f"resized record of {len(data)}B does not fit "
                f"({available}B available)")
        self._place(slot, data)

    def delete(self, slot: int) -> None:
        offset, length = self._slot_entry(slot)
        self._buf[offset:offset + length] = b"\x00" * length
        self._slots[slot] = (_FREE, 0)
        self._live_bytes -= length
        self._tail = None
        self._version = _next_version()
        self._crc = self._content_crc()

    def slots(self) -> Iterator[int]:
        """Yield every occupied slot number."""
        for slot, (offset, _) in enumerate(self._slots):
            if offset != _FREE:
                yield slot

    def has_slot(self, slot: int) -> bool:
        return (0 <= slot < len(self._slots)
                and self._slots[slot][0] != _FREE)

    # -- integrity ----------------------------------------------------------

    @property
    def checksum(self) -> int:
        """The CRC maintained by the mutating operations."""
        return self._crc

    def _content_crc(self) -> int:
        # Same byte stream as ``_crc_content`` (buf ‖ meta ‖ slots), with
        # the meta+slot suffix cached across buf-only mutations; crc32
        # accepts the bytearray directly — no bytes() copy per call.
        tail = self._tail
        if tail is None:
            slots = self._slots
            tail = _QQ.pack(self._free_ptr, self._live_bytes)
            if slots:
                count = len(slots) * 2
                packer = _SLOT_PACKERS.get(count)
                if packer is None:
                    packer = _SLOT_PACKERS[count] = struct.Struct(f"<{count}q")
                tail += packer.pack(*chain.from_iterable(slots))
            self._tail = tail
        return zlib.crc32(tail, zlib.crc32(self._buf))

    def verify(self) -> None:
        """Check the live page against its checksum and invariants.

        Raises :class:`PageChecksumError` on any violation.  Catches both
        corruption of the record bytes (writes that bypassed the page
        API cannot update the checksum) and structural damage to the
        slot directory.
        """
        problems: List[str] = []
        if not 0 <= self._free_ptr <= self.size:
            problems.append(f"free_ptr {self._free_ptr} out of page")
        live = 0
        for slot, (offset, length) in enumerate(self._slots):
            if offset == _FREE:
                continue
            live += length
            if offset < 0 or length < 0 or offset + length > self._free_ptr:
                problems.append(
                    f"slot {slot} [{offset}:{offset + length}] outside "
                    f"written region [0:{self._free_ptr}]")
        if live != self._live_bytes:
            problems.append(
                f"live_bytes {self._live_bytes} != slot total {live}")
        if self.used_bytes > self.size:
            problems.append(f"used {self.used_bytes}B > page {self.size}B")
        if self._content_crc() != self._crc:
            problems.append("content CRC mismatch")
        if problems:
            raise PageChecksumError("; ".join(problems))

    # -- checkpoint support -------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Deep-copyable state for fuzzy checkpoints, checksummed so a
        damaged durable image is detected at restore.

        The recorded checksum folds the *maintained* CRC, not one
        recomputed from the buffer: a page whose memory already rotted
        (a bit flip behind the page API) must not get its corruption
        laundered into a validly-checksummed durable image — the stale
        maintained CRC travels with the snapshot and restore rejects it.
        """
        state = {
            "size": self.size,
            "page_lsn": self.page_lsn,
            "buf": bytes(self._buf),
            "free_ptr": self._free_ptr,
            "slots": list(self._slots),
            "live_bytes": self._live_bytes,
        }
        state["crc"] = zlib.crc32(_META.pack(0, 0, self.page_lsn), self._crc)
        return state

    @classmethod
    def restore(cls, state: Dict[str, object],
                verify_checksum: bool = True) -> "Page":
        if verify_checksum and not snapshot_checksum_ok(state):
            raise PageChecksumError(
                f"page image checksum mismatch (recorded "
                f"{state.get('crc')}, computed {snapshot_checksum(state)})")
        page = cls(state["size"])  # type: ignore[arg-type]
        page.page_lsn = state["page_lsn"]  # type: ignore[assignment]
        page._buf = bytearray(state["buf"])  # type: ignore[arg-type]
        page._mv = memoryview(page._buf)
        page._version = _next_version()
        page._free_ptr = state["free_ptr"]  # type: ignore[assignment]
        page._slots = list(state["slots"])  # type: ignore[arg-type]
        page._live_bytes = state["live_bytes"]  # type: ignore[assignment]
        page._tail = None
        page._crc = page._content_crc()
        return page

    # -- internals ------------------------------------------------------------

    def _find_free_slot(self) -> int:
        for slot, (offset, _) in enumerate(self._slots):
            if offset == _FREE:
                return slot
        self._slots.append((_FREE, 0))
        return len(self._slots) - 1

    def _place(self, slot: int, data: bytes) -> None:
        self._tail = None
        if self._free_ptr + len(data) > self._data_limit():
            self._compact()
        offset = self._free_ptr
        self._buf[offset:offset + len(data)] = data
        self._free_ptr += len(data)
        self._slots[slot] = (offset, len(data))
        self._live_bytes += len(data)
        self._version = _next_version()
        self._crc = self._content_crc()

    def _data_limit(self) -> int:
        """First byte reserved for header/directory accounting."""
        return self.size - PAGE_HEADER_BYTES - len(self._slots) * SLOT_ENTRY_BYTES

    def _compact(self) -> None:
        """Squeeze out holes left by deleted/moved records."""
        new_buf = bytearray(self.size)
        write_ptr = 0
        for slot, (offset, length) in enumerate(self._slots):
            if offset == _FREE:
                continue
            new_buf[write_ptr:write_ptr + length] = \
                self._buf[offset:offset + length]
            self._slots[slot] = (write_ptr, length)
            write_ptr += length
        self._buf = new_buf
        self._mv = memoryview(new_buf)
        self._free_ptr = write_ptr

    def _slot_entry(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < len(self._slots):
            raise NoSuchObjectError(f"no slot {slot} in page")
        offset, length = self._slots[slot]
        if offset == _FREE:
            raise NoSuchObjectError(f"slot {slot} is free")
        return offset, length

    def __repr__(self) -> str:
        return (f"<Page {self.live_slot_count} live slots, "
                f"{self.free_space}B free, lsn={self.page_lsn}>")
