"""On-page object format.

An object is a fixed-capacity array of reference slots plus an opaque
payload::

    +--------+-----------+----------------------+------------------+
    | ncap u16 | plen u16 | ncap x u64 ref slots | plen payload ... |
    +--------+-----------+----------------------+------------------+

Reference slots hold packed OIDs; empty slots hold ``NULL_REF``.  The slot
array's *capacity* is fixed at creation, so inserting or deleting a
reference never changes the object's size — updates are always in place
(one 8-byte write), which is what makes reference updates cheap,
physically-loggable operations.  Growing the *payload* past its original
size can overflow the page; that relocation pressure is precisely the
schema-evolution motivation in the paper's introduction.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Sequence, Tuple

from .errors import ObjectFormatError, RefSlotError
from .oid import NULL_REF, Oid

_HEADER = struct.Struct("<HH")
_REF = struct.Struct("<Q")
#: Cached packers for whole ref-slot arrays, keyed by capacity: objects
#: are decoded on every transactional read, so the per-slot
#: ``Struct.unpack_from`` loop was a measurable bench hotspot.
_REF_ARRAYS: dict = {}

# Oid field extraction, inlined from Oid.unpack (the bounds checks there
# are redundant for values read back from our own pages).
_SLOT_MASK = (1 << 16) - 1
_PAGE_MASK = (1 << 32) - 1

#: Interned Oids keyed by packed value.  Oid is an immutable NamedTuple,
#: so sharing instances is safe; a random-walk bench decodes the same few
#: thousand objects hundreds of thousands of times, and the tuple
#: construction per slot showed up in the profile.
_OID_INTERN: dict = {}


def _ref_array(count: int) -> struct.Struct:
    packer = _REF_ARRAYS.get(count)
    if packer is None:
        packer = _REF_ARRAYS[count] = struct.Struct(f"<{count}Q")
    return packer

#: Byte offset of reference slot ``i`` within an object image.
def ref_slot_offset(index: int) -> int:
    return _HEADER.size + index * _REF.size


def payload_offset(ref_capacity: int) -> int:
    """Byte offset of the payload region within an object image."""
    return _HEADER.size + ref_capacity * _REF.size


class ObjectImage:
    """A decoded object: reference slots + payload.

    This is a *value* type — reading an object from the store hands you a
    private copy; mutations only take effect when written back (by the
    transaction layer, which also logs them).
    """

    __slots__ = ("_refs", "payload")

    def __init__(self, refs: Sequence[Optional[Oid]], payload: bytes = b""):
        self._refs: List[Optional[Oid]] = list(refs)
        self.payload = bytes(payload)

    # -- construction ------------------------------------------------------

    @classmethod
    def new(cls, ref_capacity: int, payload: bytes = b"",
            refs: Sequence[Oid] = ()) -> "ObjectImage":
        """Create an image with ``ref_capacity`` slots, the first ``len(refs)``
        filled in order."""
        if len(refs) > ref_capacity:
            raise RefSlotError(
                f"{len(refs)} refs do not fit in {ref_capacity} slots")
        slots: List[Optional[Oid]] = list(refs)
        slots.extend([None] * (ref_capacity - len(refs)))
        return cls(slots, payload)

    @classmethod
    def decode(cls, data: bytes) -> "ObjectImage":
        """Decode an on-page image."""
        if len(data) < _HEADER.size:
            raise ObjectFormatError(f"image too short: {len(data)} bytes")
        ncap, plen = _HEADER.unpack_from(data, 0)
        expected = payload_offset(ncap) + plen
        if len(data) != expected:
            raise ObjectFormatError(
                f"image length {len(data)} != expected {expected} "
                f"(ncap={ncap}, plen={plen})")
        offset = _HEADER.size
        if ncap:
            packed_refs = _ref_array(ncap).unpack_from(data, offset)
            intern = _OID_INTERN
            refs: List[Optional[Oid]] = []
            append = refs.append
            for packed in packed_refs:
                if packed == NULL_REF:
                    append(None)
                    continue
                oid = intern.get(packed)
                if oid is None:
                    oid = intern[packed] = Oid(
                        packed >> 48, (packed >> 16) & _PAGE_MASK,
                        packed & _SLOT_MASK)
                append(oid)
            offset += ncap * _REF.size
        else:
            refs = []
        return cls(refs, data[offset:])

    def encode(self) -> bytes:
        """Encode to the on-page byte format."""
        refs = self._refs
        if refs:
            body = _ref_array(len(refs)).pack(
                *[NULL_REF if ref is None else ref.pack() for ref in refs])
        else:
            body = b""
        return _HEADER.pack(len(refs), len(self.payload)) + body + self.payload

    # -- reference slots ---------------------------------------------------

    @property
    def ref_capacity(self) -> int:
        return len(self._refs)

    @property
    def size(self) -> int:
        """Encoded size in bytes."""
        return payload_offset(len(self._refs)) + len(self.payload)

    def get_ref(self, index: int) -> Optional[Oid]:
        self._check_index(index)
        return self._refs[index]

    def set_ref(self, index: int, child: Optional[Oid]) -> None:
        self._check_index(index)
        self._refs[index] = child

    def refs(self) -> Iterator[Tuple[int, Oid]]:
        """Yield ``(slot_index, child_oid)`` for every non-null slot."""
        for index, ref in enumerate(self._refs):
            if ref is not None:
                yield index, ref

    def children(self) -> List[Oid]:
        """All non-null referenced OIDs, in slot order (may repeat)."""
        return [ref for ref in self._refs if ref is not None]

    def slots_referencing(self, child: Oid) -> List[int]:
        """Indices of every slot holding a reference to ``child``."""
        return [i for i, ref in enumerate(self._refs) if ref == child]

    def free_slot(self) -> int:
        """Index of the first empty reference slot.

        Raises :class:`RefSlotError` when the slot array is full — the
        object was created without enough capacity for this insert.
        """
        for index, ref in enumerate(self._refs):
            if ref is None:
                return index
        raise RefSlotError("no free reference slot")

    def references(self, child: Oid) -> bool:
        """True if any slot holds a reference to ``child``."""
        return child in self._refs

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._refs):
            raise RefSlotError(
                f"ref slot {index} out of range 0..{len(self._refs) - 1}")

    # -- misc ----------------------------------------------------------------

    def copy(self) -> "ObjectImage":
        # Bypasses ``__init__``: the refs list is copied directly and the
        # payload is immutable ``bytes`` already, so re-wrapping both
        # through the constructor is pure overhead on the hottest read
        # path (every transactional read hands out a copy).
        new = ObjectImage.__new__(ObjectImage)
        new._refs = self._refs[:]
        new.payload = self.payload
        return new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObjectImage):
            return NotImplemented
        return self._refs == other._refs and self.payload == other.payload

    def __repr__(self) -> str:
        filled = sum(1 for r in self._refs if r is not None)
        return (f"<ObjectImage refs={filled}/{len(self._refs)} "
                f"payload={len(self.payload)}B>")
