"""Physical object identifiers.

The whole point of the paper is that references are *physical*: an OID is
the actual storage address of the object — ``(partition, page, slot)`` —
not a logical identifier resolved through an indirection table.  Migrating
an object therefore changes its OID, and every parent holding the old OID
must be patched.

OIDs pack into a 64-bit integer (16-bit partition, 32-bit page, 16-bit
slot) which is exactly how they are stored inside object images on pages.
The all-ones value is the NULL reference.
"""

from __future__ import annotations

from typing import NamedTuple

_PARTITION_BITS = 16
_PAGE_BITS = 32
_SLOT_BITS = 16

MAX_PARTITION = (1 << _PARTITION_BITS) - 1
MAX_PAGE = (1 << _PAGE_BITS) - 1
MAX_SLOT = (1 << _SLOT_BITS) - 1

#: Packed representation of the NULL reference (empty ref slot).
NULL_REF = (1 << 64) - 1


class Oid(NamedTuple):
    """A physical object address: ``(partition, page, slot)``.

    Immutable and hashable, so OIDs serve directly as dict/set keys in the
    lock manager, ERT, TRT and parent lists.
    """

    partition: int
    page: int
    slot: int

    def pack(self) -> int:
        """Encode as the 64-bit integer stored inside object images."""
        return (self.partition << (_PAGE_BITS + _SLOT_BITS)) | \
               (self.page << _SLOT_BITS) | self.slot

    @classmethod
    def unpack(cls, value: int) -> "Oid":
        """Decode a packed 64-bit OID (must not be ``NULL_REF``)."""
        if value == NULL_REF:
            raise ValueError("cannot unpack NULL_REF into an Oid")
        if not 0 <= value < NULL_REF:
            raise ValueError(f"packed oid out of range: {value:#x}")
        return cls(
            partition=value >> (_PAGE_BITS + _SLOT_BITS),
            page=(value >> _SLOT_BITS) & MAX_PAGE,
            slot=value & MAX_SLOT,
        )

    def validate(self) -> "Oid":
        """Raise ``ValueError`` unless every component is in range."""
        if not 0 <= self.partition <= MAX_PARTITION:
            raise ValueError(f"partition out of range: {self.partition}")
        if not 0 <= self.page <= MAX_PAGE:
            raise ValueError(f"page out of range: {self.page}")
        if not 0 <= self.slot <= MAX_SLOT:
            raise ValueError(f"slot out of range: {self.slot}")
        return self

    def __repr__(self) -> str:
        return f"Oid({self.partition}:{self.page}:{self.slot})"

    def __str__(self) -> str:
        return f"{self.partition}:{self.page}:{self.slot}"
