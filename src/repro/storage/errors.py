"""Storage-layer exceptions."""


class StorageError(Exception):
    """Base class for object-store errors."""


class PageFullError(StorageError):
    """Raised when an insert or in-place grow does not fit in the page."""


class PartitionFullError(StorageError):
    """Raised when a partition cannot grow to satisfy an allocation."""


class NoSuchObjectError(StorageError):
    """Raised when an OID does not name an allocated object."""


class NoSuchPartitionError(StorageError):
    """Raised when a partition id is unknown to the store."""


class ObjectFormatError(StorageError):
    """Raised when stored object bytes cannot be decoded."""


class RefSlotError(StorageError):
    """Raised on invalid reference-slot operations (bad index, no free slot)."""


class TransientIOError(StorageError):
    """A (simulated) device I/O failed but may succeed on retry.

    Raised by the fault-injection hooks in the buffer pool and the log
    manager; both retry with capped exponential backoff before letting
    the error escalate to the caller.
    """


class CorruptionError(StorageError):
    """Base class for *detected* corruption of stored bytes.

    Distinct from the other storage errors: those signal misuse or
    resource exhaustion, this one signals that bytes read back from
    (simulated) stable storage fail their integrity check — a torn
    write, a flipped bit, a truncated log record.  Callers can therefore
    distinguish corruption (heal or fail loudly) from bugs (crash).
    """


class PageChecksumError(CorruptionError):
    """A page's content does not match its recorded checksum, or its
    slot directory violates the page invariants."""


class PageRepairError(CorruptionError):
    """Single-page repair could not rebuild a checksum-failing page
    (no intact base image exists in any snapshot and the page's content
    predates the log)."""


class LogCorruptionError(CorruptionError):
    """Log bytes cannot be decoded: bad framing, CRC mismatch, or a
    malformed record body."""
