"""Storage-layer exceptions."""


class StorageError(Exception):
    """Base class for object-store errors."""


class PageFullError(StorageError):
    """Raised when an insert or in-place grow does not fit in the page."""


class PartitionFullError(StorageError):
    """Raised when a partition cannot grow to satisfy an allocation."""


class NoSuchObjectError(StorageError):
    """Raised when an OID does not name an allocated object."""


class NoSuchPartitionError(StorageError):
    """Raised when a partition id is unknown to the store."""


class ObjectFormatError(StorageError):
    """Raised when stored object bytes cannot be decoded."""


class RefSlotError(StorageError):
    """Raised on invalid reference-slot operations (bad index, no free slot)."""


class TransientIOError(StorageError):
    """A (simulated) device I/O failed but may succeed on retry.

    Raised by the fault-injection hooks in the buffer pool and the log
    manager; both retry with capped exponential backoff before letting
    the error escalate to the caller.
    """
