"""Buffer pool for the disk-resident setting (paper §7, future work).

The paper's experiments keep the database memory-resident; §7 plans "a
detailed performance study of our algorithms in a disk-based setting".
This buffer pool provides that setting: pages live on a (simulated) data
disk, a fixed number of frames cache them with LRU replacement, and every
page touch goes through ``fix`` — a miss pays a disk read (plus a
write-back when the evicted frame is dirty).

The pool only models *timing and residency*; page contents always live in
the in-memory store (a real system's buffer frames — the simulation's
"disk" never diverges from them because write-back is synchronous at
eviction and checkpoints are sharp).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Generator, Optional, Set, Tuple

from ..sim import Delay, Event, Resource, Simulator, Wait
from .errors import TransientIOError

#: A page is identified by ``(partition_id, page_no)``.
PageKey = Tuple[int, int]

#: Fault-injection hook: called with ("read"|"write", page_key) before
#: every disk transfer; raising :class:`TransientIOError` fails that
#: attempt (the pool retries with capped exponential backoff).
IOFaultHook = Callable[[str, PageKey], None]

#: Read-verification hook: called with the page key after every
#: successful miss read, before the page is served.  The engine points
#: this at the page's checksum verifier so corruption is caught at the
#: I/O boundary (raising :class:`~repro.storage.PageChecksumError`)
#: instead of propagating into transactions.
ReadVerifyHook = Callable[[PageKey], None]


class BufferStats:
    __slots__ = ("hits", "misses", "evictions", "writebacks", "io_faults",
                 "io_retries", "reads_verified", "coalesced_reads")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.io_faults = 0
        self.io_retries = 0
        self.reads_verified = 0
        #: Concurrent misses of a page whose read was already in flight;
        #: they waited on that read instead of paying their own.
        self.coalesced_reads = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        """Current counter values, for windowed (per-run) deltas."""
        return {name: getattr(self, name) for name in self.__slots__}

    def since(self, base: Optional[Dict[str, int]]) -> Dict[str, int]:
        """Counter deltas since a :meth:`snapshot` (``base=None`` means
        "since construction")."""
        if base is None:
            return self.snapshot()
        return {name: getattr(self, name) - base[name]
                for name in self.__slots__}

    def __repr__(self) -> str:
        return (f"<BufferStats hits={self.hits} misses={self.misses} "
                f"hit_ratio={self.hit_ratio:.2%}>")


class BufferPool:
    """An LRU page cache in front of a simulated data disk."""

    def __init__(self, sim: Simulator, data_disk: Resource,
                 capacity_pages: int, read_ms: float, write_ms: float,
                 io_retry_limit: int = 4, io_retry_backoff_ms: float = 5.0):
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.sim = sim
        self.data_disk = data_disk
        self.capacity_pages = capacity_pages
        self.read_ms = read_ms
        self.write_ms = write_ms
        self.io_retry_limit = io_retry_limit
        self.io_retry_backoff_ms = io_retry_backoff_ms
        self.fault_hook: Optional[IOFaultHook] = None
        self.verify_hook: Optional[ReadVerifyHook] = None
        self._frames: "OrderedDict[PageKey, bool]" = OrderedDict()  # -> dirty
        # Monotonic per-page dirty generation: bumped on *every* dirtying
        # touch, so a flush can tell "still dirty from before my write"
        # apart from "re-dirtied while my write was in flight".
        self._dirty_epoch: Dict[PageKey, int] = {}
        # Pages whose miss read is in flight: concurrent fixes wait on
        # the event instead of paying a duplicate disk read.
        self._inflight_reads: Dict[PageKey, Event] = {}
        self.stats = BufferStats()

    def _transfer(self, op: str, key: PageKey,
                  cost_ms: float) -> Generator[Any, Any, None]:
        """One disk transfer, retried on injected transient faults."""
        for attempt in range(self.io_retry_limit + 1):
            yield from self.data_disk.use(cost_ms)
            if self.fault_hook is None:
                return
            try:
                self.fault_hook(op, key)
                return
            except TransientIOError:
                self.stats.io_faults += 1
                if attempt >= self.io_retry_limit:
                    raise
                self.stats.io_retries += 1
                yield Delay(self.io_retry_backoff_ms * (2 ** attempt))

    # -- the one operation that matters --------------------------------------

    def fix(self, key: PageKey,
            dirty: bool = False) -> Generator[Any, Any, None]:
        """Ensure ``key``'s page is resident; mark it dirty if requested.

        A hit costs nothing; a miss pays one disk read, preceded by one
        disk write if the evicted frame is dirty.  Concurrent misses of
        the same page coalesce on the first miss's in-flight read — they
        neither pay a duplicate disk read nor run the eviction loop, and
        ``stats.misses`` counts the page fault once.
        """
        while True:
            if key in self._frames:
                self.stats.hits += 1
                if dirty:
                    self._mark_dirty(key)
                self._frames.move_to_end(key)
                return
            inflight = self._inflight_reads.get(key)
            if inflight is None:
                break
            # Another process is already reading this page: ride along.
            # Loop afterwards — the common case is a hit on the freshly
            # inserted frame, but it may already have been evicted again,
            # in which case this fix pays its own miss (or coalesces on
            # the next in-flight read).
            self.stats.coalesced_reads += 1
            yield Wait(inflight)

        self.stats.misses += 1
        gate = self.sim.event(name=f"read:{key[0]}:{key[1]}")
        self._inflight_reads[key] = gate
        try:
            while len(self._frames) >= self.capacity_pages:
                yield from self._evict_lru()
            yield from self._transfer("read", key, self.read_ms)
            if self.verify_hook is not None:
                self.verify_hook(key)
                self.stats.reads_verified += 1
            # Eviction during the read (by a concurrent miss of another
            # page) may have shrunk the pool below capacity again, but a
            # concurrent *insert* of this key is impossible — we hold the
            # in-flight registration.
            if len(self._frames) >= self.capacity_pages:
                yield from self._evict_lru()
            self._frames[key] = False
            if dirty:
                self._mark_dirty(key)
        except BaseException as exc:
            gate.fail(exc)  # waiters see the same read failure
            raise
        else:
            gate.succeed()
        finally:
            del self._inflight_reads[key]

    def _mark_dirty(self, key: PageKey) -> None:
        """Mark a resident frame dirty, bumping its dirty generation.

        The bump happens on every dirtying touch — not just clean→dirty
        transitions — because each one may precede new writes to the page
        content that a write-back captured *before* the touch would miss.
        """
        self._frames[key] = True
        self._dirty_epoch[key] = self._dirty_epoch.get(key, 0) + 1

    def _evict_lru(self) -> Generator[Any, Any, None]:
        victim, victim_dirty = next(iter(self._frames.items()))
        del self._frames[victim]
        self.stats.evictions += 1
        if victim_dirty:
            self.stats.writebacks += 1
            yield from self._transfer("write", victim, self.write_ms)

    # -- maintenance ------------------------------------------------------------

    def discard(self, key: PageKey) -> None:
        """Drop a frame without write-back (its page was freed)."""
        self._frames.pop(key, None)

    def flush_all(self) -> Generator[Any, Any, int]:
        """Write every dirty frame back (checkpoint); returns the count.

        The frame state is re-checked after each (yielding) disk write:
        a frame evicted while the write was in flight must not be
        re-inserted (the pool would exceed capacity), and a frame
        re-dirtied by a concurrent ``fix`` must keep its dirty bit — the
        write captured the older content, so clearing the bit would lose
        the newer write-back.
        """
        written = 0
        for key in [k for k, d in self._frames.items() if d]:
            if not self._frames.get(key, False):
                # Evicted (its write-back already happened) or cleaned
                # by a concurrent flush while we were writing others.
                continue
            epoch = self._dirty_epoch.get(key, 0)
            yield from self._transfer("write", key, self.write_ms)
            written += 1
            if key in self._frames and self._dirty_epoch.get(key, 0) == epoch:
                self._frames[key] = False
        self.stats.writebacks += written
        return written

    def resident(self, key: PageKey) -> bool:
        return key in self._frames

    def is_dirty(self, key: PageKey) -> bool:
        return self._frames.get(key, False)

    def __len__(self) -> int:
        return len(self._frames)

    def __repr__(self) -> str:
        return (f"<BufferPool {len(self._frames)}/{self.capacity_pages} "
                f"{self.stats!r}>")
