"""Partitions: the unit of reorganization.

The database is divided into partitions (paper §2); given an OID the
partition is read straight off the address.  Each partition owns a set of
slotted pages, a free-space map, and the fragmentation statistics the
compaction examples report.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .errors import NoSuchObjectError, PageChecksumError, PartitionFullError
from .freespace import FreeSpaceMap
from .oid import Oid
from .page import Page


class PartitionStats:
    """Space-usage summary used by the compaction examples and tests."""

    __slots__ = ("partition_id", "page_count", "live_objects", "live_bytes",
                 "free_bytes", "capacity_bytes")

    def __init__(self, partition_id: int, page_count: int, live_objects: int,
                 live_bytes: int, free_bytes: int, capacity_bytes: int):
        self.partition_id = partition_id
        self.page_count = page_count
        self.live_objects = live_objects
        self.live_bytes = live_bytes
        self.free_bytes = free_bytes
        self.capacity_bytes = capacity_bytes

    @property
    def fragmentation(self) -> float:
        """Fraction of allocated page space not holding live data.

        0.0 for a perfectly packed partition; approaches 1.0 as deletes
        riddle the pages with holes.
        """
        if self.capacity_bytes == 0:
            return 0.0
        return self.free_bytes / self.capacity_bytes

    def __repr__(self) -> str:
        return (f"<PartitionStats p{self.partition_id} pages={self.page_count} "
                f"objects={self.live_objects} frag={self.fragmentation:.2%}>")


class Partition:
    """A set of slotted pages addressed by ``(page, slot)``."""

    def __init__(self, partition_id: int, page_size: int,
                 max_pages: Optional[int] = None):
        self.partition_id = partition_id
        self.page_size = page_size
        self.max_pages = max_pages
        self._pages: Dict[int, Page] = {}
        self._next_page_no = 0
        self._fsm = FreeSpaceMap()
        #: Compaction floor: when callers ask for fresh-page allocation,
        #: only pages >= this number are considered.
        self.relocation_floor = 0

    # -- page management ------------------------------------------------------

    def page(self, page_no: int) -> Page:
        try:
            return self._pages[page_no]
        except KeyError:
            raise NoSuchObjectError(
                f"partition {self.partition_id} has no page {page_no}") \
                from None

    def page_numbers(self) -> Iterator[int]:
        return iter(sorted(self._pages))

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def mark_relocation_floor(self) -> int:
        """Record the boundary between old pages and fresh relocation pages.

        Compaction calls this before migrating so that every allocation with
        ``fresh_only=True`` lands in pages created afterwards.
        """
        self.relocation_floor = self._next_page_no
        return self.relocation_floor

    def _grow(self) -> int:
        if self.max_pages is not None and len(self._pages) >= self.max_pages:
            raise PartitionFullError(
                f"partition {self.partition_id} at max {self.max_pages} pages")
        page_no = self._next_page_no
        self._next_page_no += 1
        page = Page(self.page_size)
        self._pages[page_no] = page
        self._fsm.register_page(page_no, page.free_space)
        return page_no

    def drop_empty_pages(self) -> int:
        """Release pages with no live records; returns how many were freed."""
        dropped = 0
        for page_no in list(self._pages):
            if self._pages[page_no].is_empty:
                del self._pages[page_no]
                self._fsm.forget_page(page_no)
                dropped += 1
        return dropped

    # -- object-level operations ------------------------------------------------

    def allocate(self, data: bytes, fresh_only: bool = False) -> Oid:
        """Store ``data`` somewhere in the partition; returns its address."""
        min_page = self.relocation_floor if fresh_only else 0
        page_no = self._fsm.find_page(len(data), min_page=min_page)
        if page_no is None:
            page_no = self._grow()
            if not self._pages[page_no].fits(len(data)):
                raise PartitionFullError(
                    f"object of {len(data)}B larger than a fresh page")
        page = self._pages[page_no]
        slot = page.insert(data)
        self._fsm.update(page_no, page.free_space)
        return Oid(self.partition_id, page_no, slot)

    def allocate_at(self, oid: Oid, data: bytes) -> None:
        """Recreate a record at an exact address (recovery redo path)."""
        self._require_mine(oid)
        while oid.page >= self._next_page_no:
            self._grow()
        if oid.page not in self._pages:
            # Page was dropped (e.g. empty after a crash mid-reorg): recreate.
            page = Page(self.page_size)
            self._pages[oid.page] = page
            self._fsm.register_page(oid.page, page.free_space)
        page = self._pages[oid.page]
        page.insert_at(oid.slot, data)
        self._fsm.update(oid.page, page.free_space)

    def read(self, oid: Oid) -> bytes:
        return self._page_of(oid).read(oid.slot)

    def read_view(self, oid: Oid) -> memoryview:
        """Zero-copy record view (see :meth:`Page.read_view`)."""
        return self._page_of(oid).read_view(oid.slot)

    def read_bytes(self, oid: Oid, start: int, length: int) -> bytes:
        return self._page_of(oid).read_bytes(oid.slot, start, length)

    def write_bytes(self, oid: Oid, start: int, data: bytes) -> None:
        self._page_of(oid).write_bytes(oid.slot, start, data)

    def update(self, oid: Oid, data: bytes) -> None:
        """Replace a record in place (may raise ``PageFullError`` on grow)."""
        page = self._page_of(oid)
        page.update(oid.slot, data)
        self._fsm.update(oid.page, page.free_space)

    def free(self, oid: Oid) -> None:
        page = self._page_of(oid)
        page.delete(oid.slot)
        self._fsm.update(oid.page, page.free_space)

    def exists(self, oid: Oid) -> bool:
        if oid.partition != self.partition_id or oid.page not in self._pages:
            return False
        return self._pages[oid.page].has_slot(oid.slot)

    def live_oids(self) -> Iterator[Oid]:
        """Every allocated object address, in (page, slot) order."""
        for page_no in sorted(self._pages):
            for slot in self._pages[page_no].slots():
                yield Oid(self.partition_id, page_no, slot)

    def adopt_page(self, page_no: int, page: Page) -> None:
        """Install a rebuilt page image (single-page repair)."""
        if page.size != self.page_size:
            raise ValueError(
                f"page size {page.size} != partition's {self.page_size}")
        while page_no >= self._next_page_no:
            self._next_page_no += 1
        self._pages[page_no] = page
        self._fsm.register_page(page_no, page.free_space)

    def verify_pages(self) -> List[str]:
        """Checksum/invariant sweep over every live page; returns the
        violations found (empty = clean)."""
        problems: List[str] = []
        for page_no in sorted(self._pages):
            try:
                self._pages[page_no].verify()
            except PageChecksumError as exc:
                problems.append(
                    f"partition {self.partition_id} page {page_no}: {exc}")
        return problems

    def set_page_lsn(self, page_no: int, lsn: int) -> None:
        self.page(page_no).page_lsn = lsn

    def page_lsn(self, page_no: int) -> int:
        if page_no not in self._pages:
            return 0
        return self._pages[page_no].page_lsn

    # -- statistics / checkpoint --------------------------------------------------

    def stats(self) -> PartitionStats:
        live_objects = 0
        live_bytes = 0
        free_bytes = 0
        for page in self._pages.values():
            live_objects += page.live_slot_count
            live_bytes += page.used_bytes
            free_bytes += page.free_space
        return PartitionStats(
            partition_id=self.partition_id,
            page_count=len(self._pages),
            live_objects=live_objects,
            live_bytes=live_bytes,
            free_bytes=free_bytes,
            capacity_bytes=len(self._pages) * self.page_size,
        )

    def snapshot(self) -> Dict[str, object]:
        return {
            "partition_id": self.partition_id,
            "page_size": self.page_size,
            "max_pages": self.max_pages,
            "next_page_no": self._next_page_no,
            "relocation_floor": self.relocation_floor,
            "pages": {no: page.snapshot() for no, page in self._pages.items()},
        }

    @classmethod
    def restore(cls, state: Dict[str, object],
                corrupt_sink: Optional[List[Tuple[int, int]]] = None
                ) -> "Partition":
        """Rebuild from a snapshot, verifying each page's checksum.

        A checksum-failing page raises :class:`PageChecksumError` —
        unless ``corrupt_sink`` is given, in which case the damaged page
        is replaced by an empty placeholder and ``(partition_id,
        page_no)`` is appended to the sink for the caller (restart
        recovery) to repair from an older image plus the log.
        """
        part = cls(state["partition_id"], state["page_size"],  # type: ignore
                   state["max_pages"])  # type: ignore[arg-type]
        part._next_page_no = state["next_page_no"]  # type: ignore[assignment]
        part.relocation_floor = state["relocation_floor"]  # type: ignore
        for page_no, page_state in state["pages"].items():  # type: ignore
            try:
                page = Page.restore(page_state)
            except PageChecksumError:
                if corrupt_sink is None:
                    raise
                corrupt_sink.append((part.partition_id, page_no))
                page = Page(part.page_size)
            part._pages[page_no] = page
            part._fsm.register_page(page_no, page.free_space)
        return part

    # -- internals ------------------------------------------------------------

    def _page_of(self, oid: Oid) -> Page:
        self._require_mine(oid)
        return self.page(oid.page)

    def _require_mine(self, oid: Oid) -> None:
        if oid.partition != self.partition_id:
            raise NoSuchObjectError(
                f"{oid} does not belong to partition {self.partition_id}")

    def __repr__(self) -> str:
        return f"<Partition {self.partition_id} pages={len(self._pages)}>"
