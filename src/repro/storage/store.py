"""The object store: partitions + object-level operations.

This is the physical layer the transaction system and the reorganizer sit
on.  It knows nothing about locks, logging or transactions — it applies
byte-level operations (which is what makes it reusable by both the normal
execution path and recovery redo).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import NoSuchObjectError, NoSuchPartitionError, RefSlotError
from .objects import ObjectImage, payload_offset, ref_slot_offset
from .oid import NULL_REF, Oid
from .page import Page
from .partition import Partition, PartitionStats

_REF = struct.Struct("<Q")


class ObjectStore:
    """All partitions of one database."""

    def __init__(self, page_size: int = 4096):
        self.page_size = page_size
        self._partitions: Dict[int, Partition] = {}
        # Decoded-image cache: oid -> (raw bytes, decoded image).  Entries
        # are validated against the freshly-read raw bytes (a memcmp), so
        # any byte-level mutation — in-place writes, replaces, recovery
        # redo — invalidates them naturally and the cache can never serve
        # stale content.  Random-walk workloads re-read the same objects
        # many times; decoding dominated the bench profile.
        self._image_cache: Dict[Oid, Tuple[bytes, ObjectImage]] = {}

    # -- partition management ---------------------------------------------------

    def create_partition(self, partition_id: int,
                         page_size: Optional[int] = None,
                         max_pages: Optional[int] = None) -> Partition:
        if partition_id in self._partitions:
            raise ValueError(f"partition {partition_id} already exists")
        part = Partition(partition_id, page_size or self.page_size, max_pages)
        self._partitions[partition_id] = part
        return part

    def ensure_partition(self, partition_id: int) -> Partition:
        """Get-or-create a partition (recovery redo creates them lazily:
        partition creation itself is not logged)."""
        if partition_id not in self._partitions:
            return self.create_partition(partition_id)
        return self._partitions[partition_id]

    def drop_partition(self, partition_id: int) -> None:
        """Remove an (evacuated) partition entirely — copying-GC reclaim."""
        self.partition(partition_id)  # raise if unknown
        del self._partitions[partition_id]
        for oid in [o for o in self._image_cache if o.partition == partition_id]:
            del self._image_cache[oid]

    def partition(self, partition_id: int) -> Partition:
        try:
            return self._partitions[partition_id]
        except KeyError:
            raise NoSuchPartitionError(
                f"no partition {partition_id}") from None

    def has_partition(self, partition_id: int) -> bool:
        return partition_id in self._partitions

    def partition_ids(self) -> List[int]:
        return sorted(self._partitions)

    # -- whole-object operations --------------------------------------------------

    def allocate_object(self, partition_id: int, image: ObjectImage,
                        fresh_only: bool = False) -> Oid:
        return self.partition(partition_id).allocate(
            image.encode(), fresh_only=fresh_only)

    def allocate_object_at(self, oid: Oid, image: ObjectImage) -> None:
        self.partition(oid.partition).allocate_at(oid, image.encode())

    def _cached_entry(self, oid: Oid) -> Tuple[bytes, ObjectImage]:
        """The validated ``(raw, image)`` cache entry for ``oid``.

        The returned image is the shared cached instance — callers must
        either copy it before handing it out or mutate it only in
        lockstep with the underlying page bytes.
        """
        part = self._partitions.get(oid.partition)
        if part is None:
            raise NoSuchPartitionError(f"no partition {oid.partition}")
        # ``Partition._page_of``'s ownership check is vacuous here (the
        # partition was just looked up from ``oid.partition``), so go to
        # the page directly.
        page = part._pages.get(oid.page)
        if page is None:
            raise NoSuchObjectError(
                f"partition {oid.partition} has no page {oid.page}")
        view = page.read_view(oid.slot)
        cached = self._image_cache.get(oid)
        if cached is not None and cached[0] == view:
            return cached
        raw = bytes(view)
        entry = (raw, ObjectImage.decode(raw))
        self._image_cache[oid] = entry
        return entry

    def read_object(self, oid: Oid) -> ObjectImage:
        return self._cached_entry(oid)[1].copy()

    def read_raw(self, oid: Oid) -> bytes:
        return self.partition(oid.partition).read(oid)

    def replace_object(self, oid: Oid, image: ObjectImage) -> None:
        """In-place full rewrite (may raise ``PageFullError`` on grow)."""
        self.partition(oid.partition).update(oid, image.encode())

    def free_object(self, oid: Oid) -> None:
        self.partition(oid.partition).free(oid)
        self._image_cache.pop(oid, None)

    def exists(self, oid: Oid) -> bool:
        if oid.partition not in self._partitions:
            return False
        return self._partitions[oid.partition].exists(oid)

    def live_oids(self, partition_id: int) -> Iterator[Oid]:
        return self.partition(partition_id).live_oids()

    def all_live_oids(self) -> Iterator[Oid]:
        for partition_id in self.partition_ids():
            yield from self._partitions[partition_id].live_oids()

    # -- sub-record operations (the physical ops WAL records describe) -------------

    def ref_capacity(self, oid: Oid) -> int:
        return self._cached_entry(oid)[1].ref_capacity

    def get_ref(self, oid: Oid, index: int) -> Optional[Oid]:
        image = self._cached_entry(oid)[1]
        if not 0 <= index < image.ref_capacity:
            raise RefSlotError(f"ref slot {index} out of range for {oid}")
        return image.get_ref(index)

    def set_ref(self, oid: Oid, index: int, child: Optional[Oid]) -> None:
        """Overwrite one reference slot in place — an 8-byte physical write."""
        raw, image = self._cached_entry(oid)
        if not 0 <= index < image.ref_capacity:
            raise RefSlotError(f"ref slot {index} out of range for {oid}")
        data = _REF.pack(NULL_REF if child is None else child.pack())
        offset = ref_slot_offset(index)
        self.partition(oid.partition).write_bytes(oid, offset, data)
        # Patch the cache in lockstep with the page bytes instead of
        # letting the raw-bytes check evict it — hot objects are re-read
        # right after every update.
        image.set_ref(index, child)
        self._image_cache[oid] = (
            raw[:offset] + data + raw[offset + _REF.size:], image)

    def get_payload(self, oid: Oid) -> bytes:
        return self._cached_entry(oid)[1].payload

    def set_payload_bytes(self, oid: Oid, start: int, data: bytes) -> None:
        """Overwrite payload bytes in place (no size change)."""
        raw, image = self._cached_entry(oid)
        plen = len(image.payload)
        if start < 0 or start + len(data) > plen:
            raise NoSuchObjectError(
                f"payload write [{start}:{start + len(data)}] out of "
                f"{plen}B payload of {oid}")
        offset = payload_offset(image.ref_capacity) + start
        self.partition(oid.partition).write_bytes(oid, offset, data)
        new_raw = raw[:offset] + data + raw[offset + len(data):]
        image.payload = new_raw[payload_offset(image.ref_capacity):]
        self._image_cache[oid] = (new_raw, image)

    def children_of(self, oid: Oid) -> List[Oid]:
        """Non-null references out of an object (decoding only the slots)."""
        return self._cached_entry(oid)[1].children()

    # -- bookkeeping --------------------------------------------------------------

    def set_page_lsn(self, oid: Oid, lsn: int) -> None:
        self.partition(oid.partition).set_page_lsn(oid.page, lsn)

    def page_lsn(self, oid: Oid) -> int:
        if oid.partition not in self._partitions:
            return 0
        return self._partitions[oid.partition].page_lsn(oid.page)

    def stats(self, partition_id: int) -> PartitionStats:
        return self.partition(partition_id).stats()

    # -- integrity ----------------------------------------------------------------

    def verify_pages(self) -> List[str]:
        """Checksum/invariant sweep over every page of every partition."""
        problems: List[str] = []
        for partition_id in self.partition_ids():
            problems.extend(self._partitions[partition_id].verify_pages())
        return problems

    def adopt_page(self, partition_id: int, page_no: int,
                   page: Page) -> None:
        """Install a rebuilt page (single-page repair)."""
        self.ensure_partition(partition_id).adopt_page(page_no, page)

    def snapshot(self) -> Dict[str, object]:
        return {
            "page_size": self.page_size,
            "partitions": {pid: part.snapshot()
                           for pid, part in self._partitions.items()},
        }

    @classmethod
    def restore(cls, state: Dict[str, object],
                corrupt_sink: Optional[List[Tuple[int, int]]] = None
                ) -> "ObjectStore":
        """Rebuild from a snapshot.  With ``corrupt_sink``, checksum-
        failing pages become empty placeholders listed in the sink
        instead of raising (see :meth:`Partition.restore`)."""
        store = cls(page_size=state["page_size"])  # type: ignore[arg-type]
        for pid, part_state in state["partitions"].items():  # type: ignore
            store._partitions[pid] = Partition.restore(
                part_state, corrupt_sink=corrupt_sink)
        return store

    def __repr__(self) -> str:
        return f"<ObjectStore partitions={self.partition_ids()}>"
