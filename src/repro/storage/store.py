"""The object store: partitions + object-level operations.

This is the physical layer the transaction system and the reorganizer sit
on.  It knows nothing about locks, logging or transactions — it applies
byte-level operations (which is what makes it reusable by both the normal
execution path and recovery redo).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import NoSuchObjectError, NoSuchPartitionError, RefSlotError
from .objects import ObjectImage, payload_offset, ref_slot_offset
from .oid import NULL_REF, Oid
from .page import Page
from .partition import Partition, PartitionStats

_HEADER = struct.Struct("<HH")
_REF = struct.Struct("<Q")


class ObjectStore:
    """All partitions of one database."""

    def __init__(self, page_size: int = 4096):
        self.page_size = page_size
        self._partitions: Dict[int, Partition] = {}

    # -- partition management ---------------------------------------------------

    def create_partition(self, partition_id: int,
                         page_size: Optional[int] = None,
                         max_pages: Optional[int] = None) -> Partition:
        if partition_id in self._partitions:
            raise ValueError(f"partition {partition_id} already exists")
        part = Partition(partition_id, page_size or self.page_size, max_pages)
        self._partitions[partition_id] = part
        return part

    def ensure_partition(self, partition_id: int) -> Partition:
        """Get-or-create a partition (recovery redo creates them lazily:
        partition creation itself is not logged)."""
        if partition_id not in self._partitions:
            return self.create_partition(partition_id)
        return self._partitions[partition_id]

    def drop_partition(self, partition_id: int) -> None:
        """Remove an (evacuated) partition entirely — copying-GC reclaim."""
        self.partition(partition_id)  # raise if unknown
        del self._partitions[partition_id]

    def partition(self, partition_id: int) -> Partition:
        try:
            return self._partitions[partition_id]
        except KeyError:
            raise NoSuchPartitionError(
                f"no partition {partition_id}") from None

    def has_partition(self, partition_id: int) -> bool:
        return partition_id in self._partitions

    def partition_ids(self) -> List[int]:
        return sorted(self._partitions)

    # -- whole-object operations --------------------------------------------------

    def allocate_object(self, partition_id: int, image: ObjectImage,
                        fresh_only: bool = False) -> Oid:
        return self.partition(partition_id).allocate(
            image.encode(), fresh_only=fresh_only)

    def allocate_object_at(self, oid: Oid, image: ObjectImage) -> None:
        self.partition(oid.partition).allocate_at(oid, image.encode())

    def read_object(self, oid: Oid) -> ObjectImage:
        return ObjectImage.decode(self.partition(oid.partition).read(oid))

    def read_raw(self, oid: Oid) -> bytes:
        return self.partition(oid.partition).read(oid)

    def replace_object(self, oid: Oid, image: ObjectImage) -> None:
        """In-place full rewrite (may raise ``PageFullError`` on grow)."""
        self.partition(oid.partition).update(oid, image.encode())

    def free_object(self, oid: Oid) -> None:
        self.partition(oid.partition).free(oid)

    def exists(self, oid: Oid) -> bool:
        if oid.partition not in self._partitions:
            return False
        return self._partitions[oid.partition].exists(oid)

    def live_oids(self, partition_id: int) -> Iterator[Oid]:
        return self.partition(partition_id).live_oids()

    def all_live_oids(self) -> Iterator[Oid]:
        for partition_id in self.partition_ids():
            yield from self._partitions[partition_id].live_oids()

    # -- sub-record operations (the physical ops WAL records describe) -------------

    def _header(self, oid: Oid) -> tuple[int, int]:
        part = self.partition(oid.partition)
        return _HEADER.unpack(part.read_bytes(oid, 0, _HEADER.size))

    def ref_capacity(self, oid: Oid) -> int:
        ncap, _ = self._header(oid)
        return ncap

    def get_ref(self, oid: Oid, index: int) -> Optional[Oid]:
        ncap, _ = self._header(oid)
        if not 0 <= index < ncap:
            raise RefSlotError(f"ref slot {index} out of range for {oid}")
        part = self.partition(oid.partition)
        (packed,) = _REF.unpack(
            part.read_bytes(oid, ref_slot_offset(index), _REF.size))
        return None if packed == NULL_REF else Oid.unpack(packed)

    def set_ref(self, oid: Oid, index: int, child: Optional[Oid]) -> None:
        """Overwrite one reference slot in place — an 8-byte physical write."""
        ncap, _ = self._header(oid)
        if not 0 <= index < ncap:
            raise RefSlotError(f"ref slot {index} out of range for {oid}")
        packed = NULL_REF if child is None else child.pack()
        self.partition(oid.partition).write_bytes(
            oid, ref_slot_offset(index), _REF.pack(packed))

    def get_payload(self, oid: Oid) -> bytes:
        ncap, plen = self._header(oid)
        part = self.partition(oid.partition)
        return part.read_bytes(oid, payload_offset(ncap), plen)

    def set_payload_bytes(self, oid: Oid, start: int, data: bytes) -> None:
        """Overwrite payload bytes in place (no size change)."""
        ncap, plen = self._header(oid)
        if start < 0 or start + len(data) > plen:
            raise NoSuchObjectError(
                f"payload write [{start}:{start + len(data)}] out of "
                f"{plen}B payload of {oid}")
        self.partition(oid.partition).write_bytes(
            oid, payload_offset(ncap) + start, data)

    def children_of(self, oid: Oid) -> List[Oid]:
        """Non-null references out of an object (decoding only the slots)."""
        return self.read_object(oid).children()

    # -- bookkeeping --------------------------------------------------------------

    def set_page_lsn(self, oid: Oid, lsn: int) -> None:
        self.partition(oid.partition).set_page_lsn(oid.page, lsn)

    def page_lsn(self, oid: Oid) -> int:
        if oid.partition not in self._partitions:
            return 0
        return self._partitions[oid.partition].page_lsn(oid.page)

    def stats(self, partition_id: int) -> PartitionStats:
        return self.partition(partition_id).stats()

    # -- integrity ----------------------------------------------------------------

    def verify_pages(self) -> List[str]:
        """Checksum/invariant sweep over every page of every partition."""
        problems: List[str] = []
        for partition_id in self.partition_ids():
            problems.extend(self._partitions[partition_id].verify_pages())
        return problems

    def adopt_page(self, partition_id: int, page_no: int,
                   page: Page) -> None:
        """Install a rebuilt page (single-page repair)."""
        self.ensure_partition(partition_id).adopt_page(page_no, page)

    def snapshot(self) -> Dict[str, object]:
        return {
            "page_size": self.page_size,
            "partitions": {pid: part.snapshot()
                           for pid, part in self._partitions.items()},
        }

    @classmethod
    def restore(cls, state: Dict[str, object],
                corrupt_sink: Optional[List[Tuple[int, int]]] = None
                ) -> "ObjectStore":
        """Rebuild from a snapshot.  With ``corrupt_sink``, checksum-
        failing pages become empty placeholders listed in the sink
        instead of raising (see :meth:`Partition.restore`)."""
        store = cls(page_size=state["page_size"])  # type: ignore[arg-type]
        for pid, part_state in state["partitions"].items():  # type: ignore
            store._partitions[pid] = Partition.restore(
                part_state, corrupt_sink=corrupt_sink)
        return store

    def __repr__(self) -> str:
        return f"<ObjectStore partitions={self.partition_ids()}>"
