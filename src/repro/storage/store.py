"""The object store: partitions + object-level operations.

This is the physical layer the transaction system and the reorganizer sit
on.  It knows nothing about locks, logging or transactions — it applies
byte-level operations (which is what makes it reusable by both the normal
execution path and recovery redo).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import NoSuchObjectError, NoSuchPartitionError, RefSlotError
from .objects import ObjectImage, payload_offset, ref_slot_offset
from .oid import NULL_REF, Oid
from .page import Page
from .partition import Partition, PartitionStats

_REF = struct.Struct("<Q")


class ObjectStore:
    """All partitions of one database."""

    def __init__(self, page_size: int = 4096):
        self.page_size = page_size
        self._partitions: Dict[int, Partition] = {}
        # Decoded-image cache: oid -> [page version, raw bytes, decoded
        # image, children tuple or None, owning Page].  Two validation
        # tiers: if the owning page's mutation stamp is unchanged since
        # the entry was (re)validated, nothing on the page moved — one
        # integer compare and no partition/page lookup at all (the Page
        # object rides in the entry; pages are never swapped out from
        # under a live oid — every path that removes one first frees its
        # records, which pops their entries, and ``adopt_page`` below
        # invalidates explicitly).  After any page mutation the entry
        # falls back to a memcmp against the freshly-read raw bytes, so
        # byte-level mutations — in-place writes, replaces, recovery
        # redo — still invalidate it naturally and the cache can never
        # serve stale content.  Random-walk workloads re-read the same
        # objects many times; decoding, then the per-read view + memcmp,
        # dominated the bench profile.
        self._image_cache: Dict[Oid, list] = {}

    # -- partition management ---------------------------------------------------

    def create_partition(self, partition_id: int,
                         page_size: Optional[int] = None,
                         max_pages: Optional[int] = None) -> Partition:
        if partition_id in self._partitions:
            raise ValueError(f"partition {partition_id} already exists")
        part = Partition(partition_id, page_size or self.page_size, max_pages)
        self._partitions[partition_id] = part
        return part

    def ensure_partition(self, partition_id: int) -> Partition:
        """Get-or-create a partition (recovery redo creates them lazily:
        partition creation itself is not logged)."""
        if partition_id not in self._partitions:
            return self.create_partition(partition_id)
        return self._partitions[partition_id]

    def drop_partition(self, partition_id: int) -> None:
        """Remove an (evacuated) partition entirely — copying-GC reclaim."""
        self.partition(partition_id)  # raise if unknown
        del self._partitions[partition_id]
        for oid in [o for o in self._image_cache if o.partition == partition_id]:
            del self._image_cache[oid]

    def partition(self, partition_id: int) -> Partition:
        try:
            return self._partitions[partition_id]
        except KeyError:
            raise NoSuchPartitionError(
                f"no partition {partition_id}") from None

    def has_partition(self, partition_id: int) -> bool:
        return partition_id in self._partitions

    def partition_ids(self) -> List[int]:
        return sorted(self._partitions)

    # -- whole-object operations --------------------------------------------------

    def allocate_object(self, partition_id: int, image: ObjectImage,
                        fresh_only: bool = False) -> Oid:
        part = self.partition(partition_id)
        raw = image.encode()
        oid = part.allocate(raw, fresh_only=fresh_only)
        # Seed the image cache from the bytes just placed: bulk loads and
        # migrations read every freshly-created object right back, and
        # this spares them the first-touch page read + decode.  A copy is
        # cached — the caller keeps ownership of ``image``.
        page = part._pages[oid.page]
        self._image_cache[oid] = [page._version, raw, image.copy(), None, page]
        return oid

    def allocate_object_at(self, oid: Oid, image: ObjectImage) -> None:
        part = self.partition(oid.partition)
        raw = image.encode()
        part.allocate_at(oid, raw)
        page = part._pages[oid.page]
        self._image_cache[oid] = [page._version, raw, image.copy(), None, page]

    def _cached_entry(self, oid: Oid) -> list:
        """The validated ``[version, raw, image, children, page]`` entry.

        The returned image is the shared cached instance — callers must
        either copy it before handing it out or mutate it only in
        lockstep with the underlying page bytes (patching ``version``
        and ``raw`` too, so both validation tiers stay satisfied).
        """
        cached = self._image_cache.get(oid)
        if cached is not None and cached[0] == cached[4]._version:
            # Page untouched since validation: the slot was live and
            # identical then, so it still is.  (The cached Page is the
            # live one — see the cache invariant above.)
            return cached
        part = self._partitions.get(oid.partition)
        if part is None:
            raise NoSuchPartitionError(f"no partition {oid.partition}")
        # ``Partition._page_of``'s ownership check is vacuous here (the
        # partition was just looked up from ``oid.partition``), so go to
        # the page directly.
        page = part._pages.get(oid.page)
        if page is None:
            raise NoSuchObjectError(
                f"partition {oid.partition} has no page {oid.page}")
        view = page.read_view(oid.slot)
        if cached is not None and cached[1] == view:
            cached[0] = page._version
            cached[4] = page
            return cached
        raw = bytes(view)
        entry = [page._version, raw, ObjectImage.decode(raw), None, page]
        self._image_cache[oid] = entry
        return entry

    def read_object(self, oid: Oid) -> ObjectImage:
        return self._cached_entry(oid)[2].copy()

    def read_object_with_children(self, oid: Oid
                                  ) -> Tuple[ObjectImage, Tuple[Oid, ...]]:
        """One cache hit for the hot transactional read: a private copy
        of the image plus its non-null children (a shared tuple)."""
        entry = self._cached_entry(oid)
        children = entry[3]
        if children is None:
            children = entry[3] = tuple(
                ref for ref in entry[2]._refs if ref is not None)
        return entry[2].copy(), children

    def read_raw(self, oid: Oid) -> bytes:
        return self.partition(oid.partition).read(oid)

    def replace_object(self, oid: Oid, image: ObjectImage) -> None:
        """In-place full rewrite (may raise ``PageFullError`` on grow)."""
        self.partition(oid.partition).update(oid, image.encode())

    def free_object(self, oid: Oid) -> None:
        self.partition(oid.partition).free(oid)
        self._image_cache.pop(oid, None)

    def exists(self, oid: Oid) -> bool:
        if oid.partition not in self._partitions:
            return False
        return self._partitions[oid.partition].exists(oid)

    def live_oids(self, partition_id: int) -> Iterator[Oid]:
        return self.partition(partition_id).live_oids()

    def all_live_oids(self) -> Iterator[Oid]:
        for partition_id in self.partition_ids():
            yield from self._partitions[partition_id].live_oids()

    # -- sub-record operations (the physical ops WAL records describe) -------------

    def ref_capacity(self, oid: Oid) -> int:
        return self._cached_entry(oid)[2].ref_capacity

    def get_ref(self, oid: Oid, index: int) -> Optional[Oid]:
        image = self._cached_entry(oid)[2]
        if not 0 <= index < image.ref_capacity:
            raise RefSlotError(f"ref slot {index} out of range for {oid}")
        return image.get_ref(index)

    def set_ref(self, oid: Oid, index: int, child: Optional[Oid]) -> None:
        """Overwrite one reference slot in place — an 8-byte physical write."""
        entry = self._cached_entry(oid)
        image = entry[2]
        if not 0 <= index < image.ref_capacity:
            raise RefSlotError(f"ref slot {index} out of range for {oid}")
        data = _REF.pack(NULL_REF if child is None else child.pack())
        offset = ref_slot_offset(index)
        # ``_cached_entry`` just validated the entry's page, so write
        # through it directly (``Partition.write_bytes`` adds only
        # re-validation; in-place writes never change free space).
        page = entry[4]
        page.write_bytes(oid.slot, offset, data)
        # Patch the cache in lockstep with the page bytes instead of
        # letting the raw-bytes check evict it — hot objects are re-read
        # right after every update.  The write bumped the page's version,
        # so refresh the stamp too; the children tuple is stale now.
        raw = entry[1]
        image.set_ref(index, child)
        entry[0] = page._version
        entry[1] = raw[:offset] + data + raw[offset + _REF.size:]
        entry[3] = None

    def get_payload(self, oid: Oid) -> bytes:
        return self._cached_entry(oid)[2].payload

    def set_payload_bytes(self, oid: Oid, start: int, data: bytes) -> None:
        """Overwrite payload bytes in place (no size change)."""
        entry = self._cached_entry(oid)
        image = entry[2]
        plen = len(image.payload)
        if start < 0 or start + len(data) > plen:
            raise NoSuchObjectError(
                f"payload write [{start}:{start + len(data)}] out of "
                f"{plen}B payload of {oid}")
        offset = payload_offset(image.ref_capacity) + start
        page = entry[4]
        page.write_bytes(oid.slot, offset, data)
        new_raw = entry[1][:offset] + data + entry[1][offset + len(data):]
        image.payload = new_raw[payload_offset(image.ref_capacity):]
        entry[0] = page._version
        entry[1] = new_raw

    def children_tuple(self, oid: Oid) -> Tuple[Oid, ...]:
        """Non-null references out of an object, in slot order — the
        cache's shared tuple, which callers must not mutate."""
        # Flattened cache hit (the random walk calls this per step):
        # one dict get + version compare, no ``_cached_entry`` frame.
        entry = self._image_cache.get(oid)
        if entry is None or entry[0] != entry[4]._version:
            entry = self._cached_entry(oid)
        children = entry[3]
        if children is None:
            children = entry[3] = tuple(
                ref for ref in entry[2]._refs if ref is not None)
        return children

    def children_of(self, oid: Oid) -> List[Oid]:
        """Non-null references out of an object (decoding only the slots)."""
        return list(self.children_tuple(oid))

    # -- bookkeeping --------------------------------------------------------------

    def set_page_lsn(self, oid: Oid, lsn: int) -> None:
        self.partition(oid.partition).set_page_lsn(oid.page, lsn)

    def page_lsn(self, oid: Oid) -> int:
        if oid.partition not in self._partitions:
            return 0
        return self._partitions[oid.partition].page_lsn(oid.page)

    def stats(self, partition_id: int) -> PartitionStats:
        return self.partition(partition_id).stats()

    # -- integrity ----------------------------------------------------------------

    def verify_pages(self) -> List[str]:
        """Checksum/invariant sweep over every page of every partition."""
        problems: List[str] = []
        for partition_id in self.partition_ids():
            problems.extend(self._partitions[partition_id].verify_pages())
        return problems

    def adopt_page(self, partition_id: int, page_no: int,
                   page: Page) -> None:
        """Install a rebuilt page (single-page repair)."""
        self.ensure_partition(partition_id).adopt_page(page_no, page)
        # The only path that swaps a Page object out from under live
        # oids — drop the cache entries that still hold the old one.
        for oid in [o for o in self._image_cache
                    if o.partition == partition_id and o.page == page_no]:
            del self._image_cache[oid]

    def snapshot(self) -> Dict[str, object]:
        return {
            "page_size": self.page_size,
            "partitions": {pid: part.snapshot()
                           for pid, part in self._partitions.items()},
        }

    @classmethod
    def restore(cls, state: Dict[str, object],
                corrupt_sink: Optional[List[Tuple[int, int]]] = None
                ) -> "ObjectStore":
        """Rebuild from a snapshot.  With ``corrupt_sink``, checksum-
        failing pages become empty placeholders listed in the sink
        instead of raising (see :meth:`Partition.restore`)."""
        store = cls(page_size=state["page_size"])  # type: ignore[arg-type]
        for pid, part_state in state["partitions"].items():  # type: ignore
            store._partitions[pid] = Partition.restore(
                part_state, corrupt_sink=corrupt_sink)
        return store

    def __repr__(self) -> str:
        return f"<ObjectStore partitions={self.partition_ids()}>"
