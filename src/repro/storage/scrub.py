"""Background checksum scrubber.

A real storage engine cannot wait for a page to be *read* to notice it
rotted: cold pages would carry latent corruption into the next backup or
recovery.  The scrubber is a low-duty-cycle simulation process that
round-robins over every live page, re-verifying checksums and slotted-
page invariants a few pages per sweep, under full concurrent traffic.

Findings are recorded (and optionally reported through ``on_corrupt``)
rather than raised: the scrubber runs detached, where an exception would
only kill the scrubbing process itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..sim import Delay
from .errors import PageChecksumError

#: Called with ``(partition_id, page_no, problem)`` for each detection.
CorruptionCallback = Callable[[int, int, str], None]


@dataclass
class ScrubStats:
    pages_scanned: int = 0
    sweeps_completed: int = 0
    corrupt_pages_found: int = 0
    #: ``(partition_id, page_no, problem)`` per detection, in scan order.
    findings: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.corrupt_pages_found == 0


class Scrubber:
    """Continuously sweep an engine's pages, verifying checksums.

    ``run()`` is a simulation-process generator; spawn it with
    ``engine.sim.spawn(scrubber.run(), name="scrubber")`` or via
    :meth:`repro.engine.StorageEngine.spawn_scrubber`.  Each detected
    page is reported once per sweep position change; ``stop()`` ends the
    process at its next wakeup.
    """

    def __init__(self, engine, interval_ms: float = 50.0,
                 pages_per_sweep: int = 8,
                 on_corrupt: Optional[CorruptionCallback] = None):
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if pages_per_sweep < 1:
            raise ValueError("pages_per_sweep must be >= 1")
        self.engine = engine
        self.interval_ms = interval_ms
        self.pages_per_sweep = pages_per_sweep
        self.on_corrupt = on_corrupt
        self.stats = ScrubStats()
        self._stopped = False
        self._cursor = 0  # position in the (partition, page) scan order

    def stop(self) -> None:
        self._stopped = True

    def _scan_order(self) -> List[Tuple[int, int]]:
        store = self.engine.store
        return [(pid, page_no)
                for pid in store.partition_ids()
                for page_no in store.partition(pid).page_numbers()]

    def _check(self, pid: int, page_no: int) -> None:
        store = self.engine.store
        if not store.has_partition(pid):
            return
        partition = store.partition(pid)
        if page_no not in partition._pages:
            return  # dropped between listing and checking
        self.stats.pages_scanned += 1
        try:
            partition.page(page_no).verify()
        except PageChecksumError as exc:
            self.stats.corrupt_pages_found += 1
            self.stats.findings.append((pid, page_no, str(exc)))
            if self.on_corrupt is not None:
                self.on_corrupt(pid, page_no, str(exc))

    def run(self) -> Generator[Any, Any, None]:
        while not self._stopped:
            order = self._scan_order()
            if order:
                for _ in range(min(self.pages_per_sweep, len(order))):
                    if self._cursor >= len(order):
                        self._cursor = 0
                        self.stats.sweeps_completed += 1
                    self._check(*order[self._cursor])
                    self._cursor += 1
            yield Delay(self.interval_ms)

    def __repr__(self) -> str:
        return (f"<Scrubber scanned={self.stats.pages_scanned} "
                f"corrupt={self.stats.corrupt_pages_found}>")
