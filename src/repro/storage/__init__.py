"""Physical object storage: OIDs, slotted pages, partitions, object store."""

from .errors import (
    NoSuchObjectError,
    NoSuchPartitionError,
    ObjectFormatError,
    PageFullError,
    PartitionFullError,
    RefSlotError,
    StorageError,
    TransientIOError,
)
from .objects import ObjectImage, payload_offset, ref_slot_offset
from .oid import NULL_REF, Oid
from .page import Page
from .partition import Partition, PartitionStats
from .store import ObjectStore

__all__ = [
    "NULL_REF",
    "NoSuchObjectError",
    "NoSuchPartitionError",
    "ObjectFormatError",
    "ObjectImage",
    "ObjectStore",
    "Oid",
    "Page",
    "PageFullError",
    "Partition",
    "PartitionFullError",
    "PartitionStats",
    "RefSlotError",
    "StorageError",
    "TransientIOError",
    "payload_offset",
    "ref_slot_offset",
]
