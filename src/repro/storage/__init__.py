"""Physical object storage: OIDs, slotted pages, partitions, object store."""

from .errors import (
    CorruptionError,
    LogCorruptionError,
    NoSuchObjectError,
    NoSuchPartitionError,
    ObjectFormatError,
    PageChecksumError,
    PageFullError,
    PageRepairError,
    PartitionFullError,
    RefSlotError,
    StorageError,
    TransientIOError,
)
from .objects import ObjectImage, payload_offset, ref_slot_offset
from .oid import NULL_REF, Oid
from .page import Page
from .partition import Partition, PartitionStats
from .store import ObjectStore

__all__ = [
    "NULL_REF",
    "CorruptionError",
    "LogCorruptionError",
    "NoSuchObjectError",
    "NoSuchPartitionError",
    "ObjectFormatError",
    "ObjectImage",
    "ObjectStore",
    "Oid",
    "Page",
    "PageChecksumError",
    "PageFullError",
    "PageRepairError",
    "Partition",
    "PartitionFullError",
    "PartitionStats",
    "RefSlotError",
    "StorageError",
    "TransientIOError",
    "payload_offset",
    "ref_slot_offset",
]
