"""Lineage/MVCC read tier (ROADMAP item 2).

Snapshot reads served from commit-timestamped version chains, writers
appending WAL-logged tail deltas, and a merge-style reorganizer that
consolidates tails into relocated, cluster-placed base records installed
with an atomic epoch flip — on-line reorganization that never blocks a
reader.  See ``MVCC.md`` for the design note.
"""

from .merge import MergeReorganizer
from .snapshot import SnapshotTransaction, begin_snapshot_txn
from .versions import MvccStats, MvccTier, TxnHistory, VersionEntry
from .workload import mvcc_random_walk

__all__ = [
    "MergeReorganizer",
    "MvccStats",
    "MvccTier",
    "SnapshotTransaction",
    "TxnHistory",
    "VersionEntry",
    "begin_snapshot_txn",
    "mvcc_random_walk",
]
