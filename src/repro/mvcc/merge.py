"""The merge reorganizer: on-line reorganization under MVCC.

The third arm beside IRA and two-lock IRA.  Where IRA write-locks the
parents of each object it moves — which is exactly what degrades user
response times in Table 2 — the merge never locks anything a user
transaction touches:

1. take a consolidation snapshot (an ordinary begin timestamp, which
   also pins the GC watermark below the cut while the merge reads);
2. for every logical object anchored in the partition, materialize the
   newest version at or below the cut and copy it into a freshly-placed
   base object, in plan order — the same ``RelocationPlan`` /
   ``repro.cluster`` placement policies IRA uses, so clustered-IRA's
   locality gains carry over;
3. log one ``MERGE_INSTALL`` record inside the system transaction and
   commit — the durable flip point;
4. re-anchor the lineage map in one synchronous step (the epoch flip):
   readers resolve to the new bases from that instant, and never
   observed an intermediate state;
5. old bases are freed later, once the GC watermark passes the cut.

A crash before the commit point physically undoes the new bases and
leaves the lineage untouched; a crash after it replays the creates and
re-applies the flip during ``MvccTier.recover`` — crash-resumable in
both directions with no torn state (the recovery tests' twin check).

Parent patching, exact-parent discovery, and the TRT have no
counterpart here: reference slots hold logical OIDs, so relocation is
one lineage-map write per object.  That is the lineage indirection the
tier pays one map lookup per read for.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..config import MvccConfig, ReorgConfig
from ..core.ira import ReorgStats
from ..core.plan import RelocationPlan
from ..errors import ReorganizationError
from ..sim import Delay
from ..storage.oid import Oid
from ..wal.records import MergeInstallRecord


class MergeReorganizer:
    """Consolidate one partition's versions into relocated fresh bases.

    Constructor signature matches the ``REORGANIZERS`` registry so the
    serving fleet can drive merge workers exactly like IRA workers.
    """

    algorithm_name = "mvcc-merge"

    def __init__(self, engine, partition_id: int,
                 plan: Optional[RelocationPlan] = None,
                 reorg_config: Optional[ReorgConfig] = None,
                 state_store=None,
                 mvcc_config: Optional[MvccConfig] = None):
        self.engine = engine
        self.partition_id = partition_id
        self.plan = plan or RelocationPlan()
        self.cfg = reorg_config or ReorgConfig()
        self.mvcc_cfg = mvcc_config
        # The merge is a single atomic system transaction; there is no
        # mid-run progress worth carrying in the WAL (a crash re-runs it
        # from scratch), so the fleet's state store is accepted for
        # signature compatibility and only ever cleared.
        self.state_store = state_store
        self.stats = ReorgStats(algorithm=self.algorithm_name,
                                partition_id=partition_id)
        #: logical oid -> new base oid of the last completed run.
        self.flips: Dict[Oid, Oid] = {}
        #: Pacing hook (the reorg governor), as on the IRA arms.
        self.pacer = None
        #: Observation hook ``probe(event, **info)`` for repro.explore.
        self.probe = None

    def _probe(self, event: str, **info) -> None:
        if self.probe is not None:
            self.probe(event, **info)

    def run(self) -> Generator[Any, Any, ReorgStats]:
        engine = self.engine
        tier = getattr(engine, "mvcc", None)
        if tier is None:
            raise ReorganizationError(
                "merge reorganization needs an attached MVCC tier")
        if self.mvcc_cfg is None:
            self.mvcc_cfg = tier.cfg
        self.stats.started_ms = engine.sim.now
        self.plan.prepare(engine, self.partition_id)

        # The consolidation cut: also an active snapshot, pinning the GC
        # watermark so nothing the merge is about to read gets pruned.
        cut_ts = tier.begin_snapshot()
        targets = [loid for loid in sorted(tier.logical_ids)
                   if tier.resolve_physical(loid).partition
                   == self.partition_id]
        order = self.plan.order(targets)
        self.stats.objects_found = len(order)
        batch_size = max(1, self.mvcc_cfg.merge_batch_size)

        txn = engine.txns.begin(system=True)
        flips: Dict[Oid, Oid] = {}
        frees: List[Oid] = []
        try:
            for index, loid in enumerate(order):
                old_physical = tier.resolve_physical(loid)
                image, _ = yield from tier.read(loid, cut_ts)
                yield from engine.cpu.use(engine.config.cpu_migrate_ms)
                new_oid = yield from txn.create_object(
                    self.plan.target_partition(old_physical), image,
                    fresh_only=True, cpu_ms=0)
                flips[loid] = new_oid
                frees.append(old_physical)
                self._probe("merged", oid=loid, new_oid=new_oid)
                if (index + 1) % batch_size == 0:
                    if self.pacer is not None:
                        yield from self.pacer()
                    else:
                        # Let user transactions breathe between batches —
                        # the merge holds no locks, so this bounds only
                        # its CPU monopolization.
                        yield Delay(0.0)
            # The durable flip point rides inside the system transaction:
            # committed -> the flip happened; undone -> it never did.
            engine.log.append(MergeInstallRecord(
                0, 0, owner_tid=txn.tid, partition_id=self.partition_id,
                merge_ts=cut_ts,
                flips=tuple(sorted(flips.items())),
                frees=tuple(sorted(frees))))
            yield from txn.commit()
        except BaseException:
            if txn.active:
                yield from txn.abort(reason="merge-failed")
            tier.end_snapshot(cut_ts)
            raise
        # The epoch flip: synchronous, between scheduler yields — no
        # reader ever resolves through a half-installed lineage.
        tier.install_merge(flips, cut_ts, frees)
        self.flips = flips
        self.stats.objects_migrated = len(flips)
        # Relocation is invisible at the logical layer, so there is no
        # old->new mapping for layouts/tracers to chase (``mapping``
        # stays empty on purpose — that invariance IS the feature).
        tier.end_snapshot(cut_ts)
        self.plan.finalize(engine, self.partition_id)
        freed = yield from tier.sweep_frees()
        self.stats.garbage_collected = freed
        if self.state_store is not None:
            self.state_store.clear()
        self.stats.finished_ms = engine.sim.now
        return self.stats
