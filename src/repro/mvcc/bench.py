"""The MVCC benchmark: does reorganization still cost readers anything?

``repro bench mvcc`` runs the §5.3 interference experiment across five
arms on identical workloads (same seeds, same walk sequences):

* ``nr``        — 2PL, no reorganization (the paper's baseline).
* ``ira``       — 2PL under basic IRA.
* ``ira-2lock`` — 2PL under two-lock IRA.
* ``mvcc-nr``   — snapshot transactions, no reorganization.
* ``mvcc``      — snapshot transactions under the merge reorganizer.

The claim under test (ROADMAP item 2): the 2PL arms' tail response
times degrade during reorganization because user transactions wait on
the reorganizer's X locks, while the MVCC arm's reads are served from
versioned images and its p99 during a merge stays within a few percent
of its own no-reorg baseline.  The committed ``BENCH_8.json`` gates
exactly that ordering in CI.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..bench.harness import (
    BenchPoint,
    SCALES,
    base_workload,
    bench_scale,
    run_point,
)
from ..config import ExperimentConfig, MvccConfig, WorkloadConfig
from ..core import CompactionPlan
from ..database import Database
from ..concurrency import LockTimeoutError
from ..errors import WriteConflictError
from ..storage import NoSuchObjectError
from ..workload import WorkloadDriver
from .merge import MergeReorganizer
from .versions import MvccTier
from .workload import mvcc_random_walk

#: Arm order of the figure payload (and the rendered table).
MVCC_ARMS = ("nr", "ira", "ira-2lock", "mvcc-nr", "mvcc")


class TwoLockBenchDriver(WorkloadDriver):
    """2PL driver that also retries §4.2 stale-address reads.

    Under two-lock IRA a walk can queue on an old address's lock and be
    granted it only after the migration freed the slot; the walk aborts
    with ``NoSuchObjectError`` and the retry (same seed) re-reads the
    now-patched parent.  The retry latency is charged to the arm — it is
    part of the two-lock reorganization tax.
    """

    retry_on = (LockTimeoutError, NoSuchObjectError)


class MvccWorkloadDriver(WorkloadDriver):
    """The closed-loop driver over snapshot transactions: same seeding
    and retry discipline, different transaction API and abort shape."""

    walk_fn = staticmethod(mvcc_random_walk)
    retry_on = (WriteConflictError,)


def run_mvcc_point(workload: WorkloadConfig, reorganize: bool = True,
                   horizon_ms: Optional[float] = None) -> BenchPoint:
    """One MVCC experiment on a freshly built, tier-attached database."""
    db, layout = Database.with_workload(workload)
    engine = db.engine
    tier = MvccTier.attach(engine, MvccConfig())
    driver = MvccWorkloadDriver(engine, layout,
                                ExperimentConfig(workload=workload))
    if reorganize:
        reorganizer = MergeReorganizer(engine, 1, plan=CompactionPlan())
        metrics = driver.run(reorganizer=reorganizer, horizon_ms=horizon_ms)
    else:
        metrics = driver.run(horizon_ms=horizon_ms)
        metrics.algorithm = "mvcc-nr"
    problems = tier.verify()
    report = engine.verify_integrity()
    if problems or not report.ok:
        raise AssertionError(
            f"MVCC integrity violated: {(problems + report.problems())[:3]}")
    return BenchPoint(algorithm=metrics.algorithm, metrics=metrics,
                      counters=engine.sim.counters())


def run_mvcc_experiment(scale_name: Optional[str] = None,
                        progress: Optional[Callable[[str], None]] = None
                        ) -> Dict[str, BenchPoint]:
    """All five arms at one parameter point.

    Duration protocol follows the paper (and ``run_three_way``): each
    reorganizing arm runs until its reorganization completes; each
    no-reorg twin is measured over the matching arm's window (capped),
    so every during-reorg tail is compared against a baseline of the
    same length.
    """
    scale = SCALES[scale_name] if scale_name else bench_scale()
    # MPL 10: enough concurrency that the 2PL arms' readers collide with
    # the reorganizer's X locks, low enough that the two-lock arm's
    # deadlock-timeout churn stays tractable at every scale.
    workload = base_workload(scale, mpl=10)
    say = progress or (lambda line: None)
    points: Dict[str, BenchPoint] = {}

    points["ira"] = run_point("ira", workload)
    say(f"ira done ({points['ira'].metrics.window_ms:.0f} ms window)")
    points["ira-2lock"] = run_point("ira-2lock", workload,
                                    driver_cls=TwoLockBenchDriver)
    say("ira-2lock done")
    nr_horizon = min(points["ira"].metrics.window_ms,
                     scale.nr_horizon_cap_ms)
    points["nr"] = run_point("nr", workload, horizon_ms=nr_horizon)
    say("nr done")
    points["mvcc"] = run_mvcc_point(workload, reorganize=True)
    say(f"mvcc done ({points['mvcc'].metrics.window_ms:.0f} ms window)")
    mvcc_horizon = min(points["mvcc"].metrics.window_ms,
                       scale.nr_horizon_cap_ms)
    points["mvcc-nr"] = run_mvcc_point(workload, reorganize=False,
                                       horizon_ms=mvcc_horizon)
    say("mvcc-nr done")
    return points


def format_mvcc(points: Dict[str, BenchPoint]) -> str:
    """The figure: per-arm tails plus the reorganization tax on p99."""
    lines = [
        "MVCC read tier: response times during on-line reorganization",
        f"{'':10} {'tput(tps)':>10} {'avg(ms)':>8} {'p99(ms)':>8} "
        f"{'p999(ms)':>9} {'max(ms)':>8} {'aborts':>7} {'retries':>8}",
    ]
    for name in MVCC_ARMS:
        m = points[name].metrics
        lines.append(
            f"{name:10} {m.throughput_tps:10.1f} {m.avg_response_ms:8.0f} "
            f"{m.p99_response_ms:8.0f} {m.p999_response_ms:9.0f} "
            f"{m.max_response_ms:8.0f} {m.aborts:7d} {m.total_retries:8d}")

    def tax(arm: str, baseline: str) -> float:
        base = points[baseline].metrics.p99_response_ms
        if base <= 0:
            return 0.0
        return points[arm].metrics.p99_response_ms / base

    lines.append("")
    lines.append("reorganization tax on p99 (reorg arm / its no-reorg "
                 "baseline; 1.00 = readers never noticed):")
    lines.append(f"  ira        / nr      {tax('ira', 'nr'):8.2f}x")
    lines.append(f"  ira-2lock  / nr      {tax('ira-2lock', 'nr'):8.2f}x")
    lines.append(f"  mvcc merge / mvcc-nr {tax('mvcc', 'mvcc-nr'):8.2f}x")
    return "\n".join(lines)
