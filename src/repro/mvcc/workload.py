"""The paper's random-walk workload, ported to snapshot transactions.

Draw-for-draw identical to
:func:`repro.workload.transactions.random_walk_transaction` — same RNG
consumption order, same update/rewire decisions, same walk shape — so a
given ``(seed, thread, attempt)`` triple denotes the *same logical
transaction* on the 2PL and MVCC arms and the benchmark compares read
paths, not workloads.  The only behavioural difference is the failure
mode: 2PL aborts on lock timeouts mid-walk, MVCC aborts on
first-committer-wins conflicts at commit.
"""

from __future__ import annotations

import random
from typing import Any, Generator

from ..config import WorkloadConfig
from ..errors import WriteConflictError
from ..workload.graphgen import GraphLayout, glue_slot, random_bytes
from ..workload.transactions import WalkOutcome
from .snapshot import SnapshotTransaction, begin_snapshot_txn


def mvcc_random_walk(engine, layout: GraphLayout,
                     config: WorkloadConfig, rng: random.Random,
                     home_partition: int
                     ) -> Generator[Any, Any, WalkOutcome]:
    """Run one random-walk transaction on a snapshot; re-raises
    :class:`WriteConflictError` so the submitting thread can retry the
    same logical transaction on a fresh snapshot."""
    txn: SnapshotTransaction = begin_snapshot_txn(engine)
    ops = updates = ref_updates = 0
    try:
        stub_oids = layout.root_stubs[home_partition]
        stub = stub_oids[rng.randrange(len(stub_oids))]
        stub_image = yield from txn.read(stub)
        current = stub_image.children()[0]
        visited = []

        for _ in range(config.ops_per_trans):
            is_update = rng.random() < config.update_prob
            image = yield from txn.read(current, for_update=is_update)
            ops += 1
            if is_update:
                updates += 1
                rewire = (rng.random() < config.ref_update_prob
                          and len(visited) >= 1)
                if rewire:
                    candidates = [oid for oid in visited if oid != current]
                    if candidates:
                        target = candidates[rng.randrange(len(candidates))]
                        yield from txn.update_ref(
                            current, glue_slot(config), target)
                        ref_updates += 1
                        # The rewire lives only in the write buffer until
                        # commit; continue the walk through it.
                        image = txn._writes[current].copy()
                else:
                    offset = rng.randrange(
                        max(1, config.payload_bytes - 4))
                    poke = random_bytes(rng, 4)
                    yield from txn.write_payload(current, offset, poke)
            visited.append(current)
            children = image.children()
            if not children:
                break
            current = children[rng.randrange(len(children))]

        yield from txn.commit()
        return WalkOutcome(True, ops, updates, ref_updates)
    except WriteConflictError:
        # commit() already recorded the abort and released the snapshot.
        raise
    except BaseException:
        yield from txn.abort()
        raise
