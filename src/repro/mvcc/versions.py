"""The multi-version read tier: lineage map + commit-timestamped chains.

ROADMAP item 2's L-Store-style base+tail design, adapted to the object
store:

* Every *logical* OID is anchored at a **base record** in the physical
  store; reference slots everywhere hold logical OIDs, resolved through
  the tier's **lineage map** at read time.  Relocating a base therefore
  patches one map entry instead of every parent's reference slot — which
  is what lets the merge reorganizer move objects without taking a
  single lock a reader could block on.
* Writers never update in place: a commit appends the transaction's
  whole write set as one :class:`~repro.wal.records.TailDeltaRecord`
  (the atomic durability point) and pushes the after-images onto the
  objects' in-memory **version chains**, keyed by a monotonically
  increasing commit timestamp.
* A snapshot reads, for each object, the version with the greatest
  commit timestamp ``<=`` its begin timestamp.  A chain entry is either
  a materialized tail image or a **base sentinel** naming the physical
  base object that holds the bytes — base reads go through the buffer
  pool like any page access, so the disk-resident cost model applies.
* The merge reorganizer consolidates each object's newest committed
  version into a freshly-placed base and installs the whole partition's
  relocation with one :class:`~repro.wal.records.MergeInstallRecord`
  inside its system transaction — the **epoch flip**.  The flip runs
  without a scheduler yield, so no process ever observes half of it.
* **Epoch GC**: versions strictly below the newest version visible at
  the oldest active snapshot are unreachable and are pruned; superseded
  base objects are freed only once the watermark passes their merge's
  cut timestamp.

Allocation discipline: everything the tier creates is placed with
``fresh_only=True``, so a freed base's address is never recycled — the
lineage map and the WAL rebuild can treat physical addresses as unique
across the database's lifetime.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..config import MvccConfig
from ..errors import WriteConflictError
from ..storage import ObjectImage
from ..storage.oid import Oid
from ..wal.records import (
    CommitRecord,
    MergeInstallRecord,
    TailDeltaRecord,
)


#: Latch key serializing the tier's commit critical section.
_COMMIT_LATCH = ("mvcc", "commit")


class VersionEntry:
    """One link of a version chain.

    ``image is None`` marks a base sentinel: the bytes live in the
    physical store at ``physical`` (read through the buffer pool).  A
    materialized entry carries the committed after-image directly.
    """

    __slots__ = ("ts", "image", "physical")

    def __init__(self, ts: int, image: Optional[ObjectImage],
                 physical: Optional[Oid] = None):
        self.ts = ts
        self.image = image
        self.physical = physical

    @property
    def is_base(self) -> bool:
        return self.image is None

    def __repr__(self) -> str:
        kind = f"base@{self.physical}" if self.is_base else "tail"
        return f"<VersionEntry ts={self.ts} {kind}>"


@dataclass
class TxnHistory:
    """One snapshot transaction's footprint, kept for the oracle."""

    begin_ts: int
    commit_ts: Optional[int]            # None = aborted / read-only
    #: ``(logical oid, commit_ts of the version the read returned)``.
    reads: List[Tuple[Oid, int]] = field(default_factory=list)
    writes: Tuple[Oid, ...] = ()
    committed: bool = False


@dataclass
class MvccStats:
    """Tier counters (shape mirrors ``ReorgStats``' role for oracles)."""

    commits: int = 0
    write_conflicts: int = 0
    tail_reads: int = 0
    base_reads: int = 0
    versions_pruned: int = 0
    bases_freed: int = 0
    merges_installed: int = 0
    snapshot_peak: int = 0


class MvccTier:
    """Versioned read path over one :class:`~repro.engine.StorageEngine`.

    Attach with :meth:`attach` (fresh engine) or :meth:`recover`
    (post-crash: replays TAIL_DELTA / committed MERGE_INSTALL records
    from the durable log).  The engine keeps a ``mvcc`` attribute
    pointing at the attached tier; ``StorageEngine.recover`` resets it
    to ``None`` like every other hook, so recovery paths must call
    :meth:`recover` explicitly.
    """

    def __init__(self, engine, config: Optional[MvccConfig] = None):
        self.engine = engine
        self.cfg = config or MvccConfig()
        self.stats = MvccStats()
        #: Logical OIDs under version control (fixed at attach; merge
        #: targets are physical artifacts, never new logical identities).
        self.logical_ids: Set[Oid] = set()
        self._chains: Dict[Oid, List[VersionEntry]] = {}
        #: Explicit relocations only; identity for never-merged objects.
        self._lineage: Dict[Oid, Oid] = {}
        self.last_commit_ts = 0
        self.epoch = 0
        #: Multiset of active snapshot begin timestamps.
        self._active: Dict[int, int] = {}
        #: ``(cut_ts, [old base OIDs])`` awaiting the GC watermark.
        self._pending_frees: List[Tuple[int, List[Oid]]] = []
        self._commits_since_gc = 0
        #: Oracle food (``cfg.record_history``): every commit's
        #: timestamp and write set, in commit order, never pruned.
        self.commit_log: List[Tuple[int, Tuple[Oid, ...]]] = []
        self.history: List[TxnHistory] = []
        #: GC audit trail: ``(loid, pruned_ts, successor_ts, watermark)``
        #: per pruned version — the property tests assert
        #: ``successor_ts <= watermark`` for every entry (nothing a live
        #: snapshot could still see is ever reclaimed).
        self.gc_log: List[Tuple[Oid, int, int, int]] = []

    # -- construction -----------------------------------------------------------

    @classmethod
    def attach(cls, engine, config: Optional[MvccConfig] = None) -> "MvccTier":
        """Put every live object of the store under version control."""
        tier = cls(engine, config)
        for oid in engine.store.all_live_oids():
            tier.logical_ids.add(oid)
            tier._chains[oid] = [VersionEntry(0, None, oid)]
        engine.mvcc = tier
        return tier

    @classmethod
    def recover(cls, engine,
                config: Optional[MvccConfig] = None) -> "MvccTier":
        """Rebuild the tier from the recovered engine's durable log.

        Tail deltas are non-transactional (their single record *is* the
        commit point); merge installs are honored only when their owning
        system transaction committed — a crash mid-merge left the new
        bases undone, and the lineage must keep naming the old ones.
        """
        tier = cls(engine, config)
        store = engine.store
        records = list(engine.log.records())
        committed = {r.tid for r in records if isinstance(r, CommitRecord)}
        installs = [r for r in records if isinstance(r, MergeInstallRecord)
                    and r.owner_tid in committed]
        targets = {phys for r in installs for _, phys in r.flips}
        for oid in store.all_live_oids():
            if oid not in targets:
                tier.logical_ids.add(oid)
                tier._chains[oid] = [VersionEntry(0, None, oid)]
        for record in records:
            if isinstance(record, TailDeltaRecord):
                for loid, image in record.writes:
                    chain = tier._chains.setdefault(
                        loid, [VersionEntry(0, None, loid)])
                    chain.append(VersionEntry(record.commit_ts,
                                              ObjectImage.decode(image)))
                    tier.logical_ids.add(loid)
                tier.last_commit_ts = max(tier.last_commit_ts,
                                          record.commit_ts)
            elif isinstance(record, MergeInstallRecord) and \
                    record.owner_tid in committed:
                for loid, _ in record.flips:
                    # A never-updated logical id whose pre-merge base was
                    # already swept has no live-oid seed; anchor it so the
                    # flip below lands on a chain.
                    tier._chains.setdefault(
                        loid, [VersionEntry(0, None, loid)])
                    tier.logical_ids.add(loid)
                tier._apply_flip(dict(record.flips), record.merge_ts)
                tier.last_commit_ts = max(tier.last_commit_ts,
                                          record.merge_ts)
                still = [oid for oid in record.frees if store.exists(oid)]
                if still:
                    tier._pending_frees.append((record.merge_ts, still))
        # Replay can leave seed sentinels naming already-swept bases
        # below flipped entries; no snapshot is active, so one GC pass
        # reduces every chain to its recoverable suffix.
        tier.gc_pass()
        engine.mvcc = tier
        return tier

    # -- snapshots ---------------------------------------------------------------

    def begin_snapshot(self) -> int:
        ts = self.last_commit_ts
        self._active[ts] = self._active.get(ts, 0) + 1
        self.stats.snapshot_peak = max(self.stats.snapshot_peak,
                                       sum(self._active.values()))
        return ts

    def end_snapshot(self, begin_ts: int) -> None:
        count = self._active.get(begin_ts, 0)
        if count <= 1:
            self._active.pop(begin_ts, None)
        else:
            self._active[begin_ts] = count - 1

    def watermark(self) -> int:
        """Oldest begin timestamp any active snapshot could read at."""
        if self._active:
            return min(self._active)
        return self.last_commit_ts

    # -- the read path -----------------------------------------------------------

    def version_for(self, loid: Oid, ts: int) -> VersionEntry:
        """The chain entry a snapshot at ``ts`` reads for ``loid``.

        The seam the ``stale_snapshot_read`` mutation wraps: returning
        any entry but the greatest one ``<= ts`` violates snapshot
        isolation, and the oracle must notice.
        """
        chain = self._chains.get(loid)
        if chain is None:
            raise KeyError(f"{loid} is not under version control")
        index = bisect_right(chain, ts, key=lambda entry: entry.ts) - 1
        if index < 0:
            raise KeyError(f"{loid} has no version at or below ts {ts}")
        return chain[index]

    def read(self, loid: Oid,
             ts: int) -> Generator[Any, Any, Tuple[ObjectImage, int]]:
        """Materialize the snapshot-visible image of ``loid`` at ``ts``.

        Returns ``(image copy, version commit_ts)``.  Base sentinels go
        through the buffer pool; after the page fix the entry is looked
        up *again* — an epoch flip may have landed during the I/O wait,
        and the re-resolved entry names the base that is guaranteed to
        outlive this snapshot (the pre-flip base may already be
        GC-eligible once the flip bumps the watermark past its cut).
        """
        entry = self.version_for(loid, ts)
        if entry.is_base:
            yield from self.engine.fix_page(entry.physical)
            entry = self.version_for(loid, ts)
        if entry.is_base:
            self.stats.base_reads += 1
            image = self.engine.store.read_object(entry.physical)
        else:
            self.stats.tail_reads += 1
            image = entry.image.copy()
        return image, entry.ts

    def resolve_physical(self, loid: Oid) -> Oid:
        """Current base address of ``loid`` (the lineage indirection)."""
        return self._lineage.get(loid, loid)

    def latest_image(self, loid: Oid) -> ObjectImage:
        """Newest committed image (no snapshot) — verification helper."""
        entry = self._chains[loid][-1]
        if entry.is_base:
            return self.engine.store.read_object(entry.physical)
        return entry.image.copy()

    # -- the write path ----------------------------------------------------------

    def validate(self, writes: Dict[Oid, ObjectImage],
                 begin_ts: int) -> None:
        """First-committer-wins: any newer committed version of a
        written object since the snapshot began is a conflict."""
        for loid in writes:
            chain = self._chains.get(loid)
            if chain is None:
                raise KeyError(f"{loid} is not under version control")
            if chain[-1].ts > begin_ts:
                self.stats.write_conflicts += 1
                raise WriteConflictError(
                    f"{loid}: committed version {chain[-1].ts} is newer "
                    f"than snapshot {begin_ts}", oid=loid)

    def commit(self, writes: Dict[Oid, ObjectImage],
               begin_ts: int) -> Generator[Any, Any, int]:
        """Validate, force-log one tail-delta record, publish the
        versions.  Returns the commit timestamp.

        The whole sequence runs under the tier's commit latch: the
        timestamp is allocated before the flush yield, and without the
        latch two committers parked on the log disk would mint the same
        timestamp (and the second-durable one could publish first,
        breaking commit-order = timestamp-order).  Only writers take
        the latch — the read path stays wait-free.
        """
        latches = self.engine.latches
        yield from latches.latch(_COMMIT_LATCH)
        try:
            # Validate inside the critical section: a commit that landed
            # while we waited for the latch must count as a conflict.
            self.validate(writes, begin_ts)
            commit_ts = self.last_commit_ts + 1
            record = TailDeltaRecord(
                0, 0, commit_ts=commit_ts,
                writes=tuple(sorted(((loid, image.encode())
                                     for loid, image in writes.items()),
                                    key=lambda pair: pair[0])))
            lsn = self.engine.log.append(record)
            yield from self.engine.log.flush(lsn)
            # Publish only after the flush: a crash during the log write
            # must leave no reader having seen the version.
            for loid, image in writes.items():
                self._chains[loid].append(
                    VersionEntry(commit_ts, image.copy()))
            self.last_commit_ts = commit_ts
        finally:
            latches.unlatch(_COMMIT_LATCH)
        self.stats.commits += 1
        if self.cfg.record_history:
            self.commit_log.append(
                (commit_ts, tuple(sorted(writes))))
        self._commits_since_gc += 1
        if self.cfg.gc_every_commits and \
                self._commits_since_gc >= self.cfg.gc_every_commits:
            self.gc_pass()
        return commit_ts

    # -- the epoch flip (called by the merge reorganizer) ------------------------

    def install_merge(self, flips: Dict[Oid, Oid], cut_ts: int,
                      frees: List[Oid]) -> None:
        """Atomically re-anchor merged objects at their new bases.

        Runs synchronously — no scheduler yield — after the merge's
        system transaction committed, so every reader sees either the
        whole flip or none of it.  ``cut_ts`` is the commit timestamp
        the consolidation read at; versions above it survive in the
        chains, versions at or below it are now served by the new base.
        """
        self._apply_flip(flips, cut_ts)
        self._pending_frees.append((cut_ts, list(frees)))
        self.epoch += 1
        self.stats.merges_installed += 1

    def _apply_flip(self, flips: Dict[Oid, Oid], cut_ts: int) -> None:
        for loid, physical in flips.items():
            chain = self._chains[loid]
            index = bisect_right(chain, cut_ts,
                                 key=lambda entry: entry.ts) - 1
            consolidated = chain[index]
            # The new base carries the consolidated version's *content*
            # at its original timestamp: readers' version accounting is
            # unchanged by relocation (the flip is invisible to the
            # snapshot-isolation oracle, as reorganization must be).
            chain[index] = VersionEntry(consolidated.ts, None, physical)
            self._lineage[loid] = physical

    # -- epoch GC ----------------------------------------------------------------

    def gc_pass(self) -> None:
        """Prune chain versions no active (or future) snapshot can see."""
        self._commits_since_gc = 0
        watermark = self.watermark()
        for loid, chain in self._chains.items():
            if len(chain) == 1:
                continue
            keep = bisect_right(chain, watermark,
                                key=lambda entry: entry.ts) - 1
            if keep <= 0:
                continue
            successor = chain[keep].ts
            for entry in chain[:keep]:
                self.gc_log.append(
                    (loid, entry.ts, successor, watermark))
            self.stats.versions_pruned += keep
            del chain[:keep]

    def sweep_frees(self) -> Generator[Any, Any, int]:
        """Free superseded base objects below the watermark.

        Runs as a short system transaction per ripe merge cut; returns
        the number of bases freed.  Driven by the merge reorganizer
        after its flip and by anyone who wants reclamation sooner.
        """
        watermark = self.watermark()
        ripe = [(cut, oids) for cut, oids in self._pending_frees
                if cut <= watermark]
        if not ripe:
            return 0
        self._pending_frees = [(cut, oids) for cut, oids
                               in self._pending_frees if cut > watermark]
        # Prune first: every chain entry naming a base we are about to
        # free sits strictly below its merge's consolidated entry, whose
        # timestamp is <= the ripe cut <= the watermark — so a GC pass
        # removes all of them before the store address goes away.
        self.gc_pass()
        freed = 0
        for _, oids in ripe:
            txn = self.engine.txns.begin(system=True)
            for oid in oids:
                if self.engine.store.exists(oid):
                    yield from txn.delete_object(oid, cpu_ms=0)
                    freed += 1
            yield from txn.commit()
        self.stats.bases_freed += freed
        return freed

    @property
    def pending_free_count(self) -> int:
        return sum(len(oids) for _, oids in self._pending_frees)

    # -- verification ------------------------------------------------------------

    def chain(self, loid: Oid) -> List[VersionEntry]:
        """The live version chain (oldest first) — test/oracle access."""
        return list(self._chains[loid])

    def verify(self) -> List[str]:
        """Structural invariants; returns human-readable violations."""
        problems: List[str] = []
        store = self.engine.store
        for loid in sorted(self.logical_ids):
            chain = self._chains.get(loid)
            if not chain:
                problems.append(f"{loid}: no version chain")
                continue
            ts_list = [entry.ts for entry in chain]
            if ts_list != sorted(set(ts_list)):
                problems.append(
                    f"{loid}: chain timestamps not strictly increasing: "
                    f"{ts_list}")
            for entry in chain:
                if entry.is_base and not store.exists(entry.physical):
                    problems.append(
                        f"{loid}: base sentinel at ts {entry.ts} names "
                        f"freed object {entry.physical}")
            head = chain[-1]
            if head.is_base and \
                    head.physical != self.resolve_physical(loid):
                problems.append(
                    f"{loid}: head base {head.physical} disagrees with "
                    f"lineage {self.resolve_physical(loid)}")
        return problems

    def signature(self) -> Any:
        """Address-free reachability signature of the newest committed
        state: a multiset of ``(payload, sorted child payloads)`` with
        references resolved logically — the MVCC analogue of
        :func:`repro.faults.chaos.graph_signature`, invariant under
        merge relocation by construction."""
        payloads = {loid: self.latest_image(loid).payload
                    for loid in self.logical_ids}
        contributions = []
        for loid in self.logical_ids:
            image = self.latest_image(loid)
            children = tuple(sorted(
                payloads[child] for child in image.children()
                if child in payloads))
            contributions.append((payloads[loid], children))
        contributions.sort()
        return tuple(contributions)
