"""Snapshot transactions over the MVCC tier.

The user-transaction API of the versioned read path: a begin-timestamp
snapshot, lock-free reads, buffered writes, and first-committer-wins
validation at commit.  The shape mirrors :class:`repro.txn.Transaction`
— generator methods driven by the simulation kernel, the same CPU cost
model per object access — but no entry here ever touches the lock
manager, which is the whole point: a reader can never wait on the
reorganizer, because there is nothing to wait *on*.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import TransactionStateError, WriteConflictError
from ..storage import ObjectImage
from ..storage.oid import Oid
from .versions import MvccTier, TxnHistory


class SnapshotTransaction:
    """One snapshot-isolated transaction.  Create via ``begin()``."""

    def __init__(self, tier: MvccTier):
        self.tier = tier
        self.engine = tier.engine
        self.begin_ts = tier.begin_snapshot()
        self.commit_ts: Optional[int] = None
        self.active = True
        #: Buffered after-images, applied atomically at commit.
        self._writes: Dict[Oid, ObjectImage] = {}
        #: ``(loid, version ts read)`` — oracle food.
        self._reads: List[Tuple[Oid, int]] = []

    # -- reads -------------------------------------------------------------------

    def read(self, loid: Oid,
             for_update: bool = False) -> Generator[Any, Any, ObjectImage]:
        """Snapshot read; ``for_update`` only affects the CPU charge (the
        2PL API's lock-mode distinction has no MVCC counterpart)."""
        self._check_active()
        cfg = self.engine.config
        cpu_ms = cfg.cpu_object_access_ms
        if for_update:
            cpu_ms += cfg.cpu_update_extra_ms
        yield from self.engine.cpu.use(cpu_ms)
        own = self._writes.get(loid)
        if own is not None:
            return own.copy()
        image, seen_ts = yield from self.tier.read(loid, self.begin_ts)
        self._reads.append((loid, seen_ts))
        return image

    # -- buffered writes ---------------------------------------------------------

    def write_payload(self, loid: Oid, offset: int,
                      data: bytes) -> Generator[Any, Any, None]:
        image = yield from self._writable(loid)
        payload = bytearray(image.payload)
        payload[offset:offset + len(data)] = data
        image.payload = bytes(payload)

    def update_ref(self, loid: Oid, slot: int,
                   child: Optional[Oid]) -> Generator[Any, Any, None]:
        image = yield from self._writable(loid)
        image.set_ref(slot, child)

    def _writable(self, loid: Oid) -> Generator[Any, Any, ObjectImage]:
        """The buffered image for ``loid``, faulting it in from the
        snapshot on first touch."""
        self._check_active()
        image = self._writes.get(loid)
        if image is None:
            image, seen_ts = yield from self.tier.read(loid, self.begin_ts)
            self._reads.append((loid, seen_ts))
            self._writes[loid] = image
        return image

    # -- outcome -----------------------------------------------------------------

    def commit(self) -> Generator[Any, Any, None]:
        self._check_active()
        self.active = False
        try:
            if self._writes:
                self.commit_ts = yield from self.tier.commit(
                    self._writes, self.begin_ts)
            self._record(committed=True)
        except WriteConflictError:
            self._record(committed=False)
            raise
        finally:
            self.tier.end_snapshot(self.begin_ts)

    def abort(self) -> Generator[Any, Any, None]:
        """Discard the buffered writes (nothing was published or logged,
        so there is no undo work — the generator shape matches the 2PL
        API for drop-in use in retry loops)."""
        if not self.active:
            return
        self.active = False
        self._writes.clear()
        self._record(committed=False)
        self.tier.end_snapshot(self.begin_ts)
        return
        yield  # pragma: no cover — keeps this a generator

    def _record(self, committed: bool) -> None:
        if self.tier.cfg.record_history:
            self.tier.history.append(TxnHistory(
                begin_ts=self.begin_ts,
                commit_ts=self.commit_ts,
                reads=list(self._reads),
                writes=tuple(sorted(self._writes)),
                committed=committed))

    def _check_active(self) -> None:
        if not self.active:
            raise TransactionStateError(
                "snapshot transaction is no longer active")


def begin_snapshot_txn(engine) -> SnapshotTransaction:
    """Start a snapshot transaction on the engine's attached tier."""
    tier = getattr(engine, "mvcc", None)
    if tier is None:
        raise TransactionStateError("engine has no attached MVCC tier")
    return SnapshotTransaction(tier)
