"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    Run one of the bundled scenarios (quickstart-style) without writing
    any code: build the paper's workload, reorganize a partition on-line
    with the chosen algorithm, and report interference + integrity.

``bench``
    Run one paper experiment (table2, mpl, partition-size, update-prob)
    or one of the extension experiments — clustering (NR vs random
    placement vs affinity-clustered IRA in the disk-resident setting),
    dist, mvcc, scale, or locks (flat vs hierarchical lock manager
    under a scan-heavy mix, see CONCURRENCY.md) — and print its data
    table.

``inspect``
    Build the workload and print the database's physical layout
    (partitions, pages, fragmentation, ERT sizes).  ``--pages PID``
    zooms into one partition: per-page fill fraction and which objects
    co-reside on each page.

``cluster``
    Trace the workload on-line for a while, then print the affinity
    statistics (hot objects, co-access edges), the clustering advisor's
    partition ranking, and the placement the chosen policy would build
    for the recommended partition.

``chaos``
    Crash-point sweep: crash a reorganization run at N distinct points
    (or one chosen point via ``--crash-at``), recover, resume from the
    WAL progress records, and verify integrity + graph isomorphism +
    no-re-migration after every cycle.  ``--corruption`` adds the
    silent-corruption dimension (torn checkpoint pages, durable bit
    flips, torn log tails) with zero-silent-corruption accounting.

``verify``
    Build a workload database, reorganize it under load, checkpoint,
    crash and recover, then deep-verify every durability surface (live
    page checksums, snapshot checksums, log decodability, reference
    integrity).  Exits non-zero on any finding; ``--corrupt`` plants
    one deliberate corruption first to prove the sweep catches it.

``explore``
    Schedule-space exploration (see EXPLORING.md): run the workload +
    reorganization many times under permuted same-timestamp schedules
    and bounded preemptions, judging every run with the oracle suite
    (serializability, transparency, lock footprint, recovery
    idempotence, deep verify).  Failures are minimized and serialized
    as replayable artifacts; ``--replay FILE`` reproduces one in a
    fresh process, ``--mutation NAME`` plants a known bug to prove the
    oracles fire.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from typing import List, Optional

from .bench import (
    SCALES,
    base_workload,
    compare_figure,
    figure_payload,
    format_contention,
    format_series,
    format_table2,
    load_baseline,
    new_baseline,
    run_three_way,
    save_baseline,
)
from .config import ExperimentConfig, ReorgConfig, SystemConfig, WorkloadConfig
from .core import CompactionPlan
from .database import Database, REORGANIZERS
from .explore.mutations import MUTATIONS
from .workload import WorkloadDriver


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--partitions", type=int, default=3,
                        help="number of data partitions (default 3)")
    parser.add_argument("--objects", type=int, default=1020,
                        help="objects per partition, multiple of 85 "
                             "(default 1020)")
    parser.add_argument("--mpl", type=int, default=8,
                        help="concurrent transaction threads (default 8)")
    parser.add_argument("--seed", type=int, default=42)


def _workload(args) -> WorkloadConfig:
    return WorkloadConfig(num_partitions=args.partitions,
                          objects_per_partition=args.objects,
                          mpl=args.mpl, seed=args.seed)


def cmd_demo(args) -> int:
    workload = _workload(args)
    # ``--locks flat`` keeps the default-construction path (and its
    # byte-identical schedules); only the hierarchical choice builds an
    # explicit system config.
    system = None
    if args.locks == "hier":
        system = SystemConfig(lock_manager="hier",
                              lock_escalate_after=args.escalate_after)
    db, layout = Database.with_workload(workload, system=system)
    print(f"loaded {workload.num_partitions} x "
          f"{workload.objects_per_partition} objects; running "
          f"{args.algorithm} on partition 1 under MPL {workload.mpl} "
          f"({args.locks} locks) ...")
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload,
                                             system=system or SystemConfig()))
    metrics = driver.run(reorganizer=db.reorganizer(
        1, args.algorithm, plan=CompactionPlan()))
    stats = metrics.reorg_stats
    print(f"\n  objects migrated     {stats.objects_migrated}")
    print(f"  parent refs patched  {stats.parent_patches}")
    print(f"  max locks held       {stats.max_locks_held}")
    print(f"  reorg duration       {stats.duration_ms / 1000:.1f} s "
          f"(simulated)")
    print(f"\n  concurrent txns      {metrics.completed} committed at "
          f"{metrics.throughput_tps:.1f} tps")
    print(f"  avg / max response   {metrics.avg_response_ms:.0f} / "
          f"{metrics.max_response_ms:.0f} ms")
    print(f"  aborts / retries     {metrics.aborts} / "
          f"{metrics.total_retries}")
    print(f"  reorg dl-retries     {stats.deadlock_retries} "
          f"(backoff {stats.backoff_ms_total:.0f} ms)")
    print(f"  deadlock aborts      {metrics.deadlock_aborts} "
          f"({metrics.deadlock_victims} cycle victims, "
          f"{metrics.retry_budget_exhausted} gave up)")
    print(f"  p99 / p999 response  {metrics.p99_response_ms:.0f} / "
          f"{metrics.p999_response_ms:.0f} ms")
    if metrics.locks is not None:
        print(f"  lock manager         {metrics.locks['manager']}: "
              f"{metrics.locks['acquires']} acquires, "
              f"{metrics.locks['conflicts']} conflicts, "
              f"{metrics.locks['escalations']} escalations "
              f"({metrics.locks['deescalations']} undone), "
              f"table peak {metrics.locks['table_peak']}")
    report = db.verify_integrity()
    print(f"\n  integrity: {'OK' if report.ok else 'BROKEN'}")
    return 0 if report.ok else 1


def _bench_figure(args, workload):
    """Run the requested experiment; returns (rendered text, figure
    payload for --json/--compare)."""
    if args.experiment == "table2":
        points = run_three_way(workload, scale=SCALES[args.scale])
        text = format_table2(points) + "\n\n" + format_contention(points)
        return text, figure_payload(points, 0.0)
    if args.experiment == "clustering":
        from .cluster.bench import format_clustering, run_clustering_experiment
        points = run_clustering_experiment(
            args.scale,
            progress=lambda line: print(f"  {line}", file=sys.stderr))
        return format_clustering(points), figure_payload(points, 0.0)
    if args.experiment == "dist":
        from .dist.bench import (dist_payload, format_dist,
                                 run_dist_experiment)
        rows = run_dist_experiment(
            args.scale,
            progress=lambda line: print(f"  {line}", file=sys.stderr))
        return format_dist(rows), dist_payload(rows)
    if args.experiment == "locks":
        from .hlock.bench import (format_locks, locks_payload,
                                  run_locks_experiment)
        rows = run_locks_experiment(
            args.scale,
            progress=lambda line: print(f"  {line}", file=sys.stderr))
        return format_locks(rows), locks_payload(rows)
    if args.experiment == "mvcc":
        from .mvcc.bench import format_mvcc, run_mvcc_experiment
        points = run_mvcc_experiment(
            args.scale,
            progress=lambda line: print(f"  {line}", file=sys.stderr))
        return format_mvcc(points), figure_payload(points, 0.0)
    if args.experiment == "scale":
        from .serve.bench import SCALE_ARMS, format_scale, run_scale_experiment
        rows = run_scale_experiment(
            args.scale,
            progress=lambda line: print(f"  {line}", file=sys.stderr))
        payload = {
            "wall_clock_s": 0.0,
            "metrics": {str(servers): {arm: rows[servers][arm].metrics.summary()
                                       for arm in SCALE_ARMS}
                        for servers in sorted(rows)},
            "counters": {str(servers): {arm: rows[servers][arm].counters
                                        for arm in SCALE_ARMS}
                         for servers in sorted(rows)},
        }
        return format_scale(rows), payload
    sweeps = {
        "mpl": ("mpl", SCALES[args.scale].mpl_points),
        "partition-size": ("objects_per_partition",
                           SCALES[args.scale].partition_size_points),
        "update-prob": ("update_prob",
                        SCALES[args.scale].update_prob_points),
    }
    field, points = sweeps[args.experiment]
    rows = {}
    for value in points:
        rows[value] = run_three_way(workload.copy(**{field: value}),
                                    scale=SCALES[args.scale])
        print(f"  {field}={value} done", file=sys.stderr)
    text = format_series(
        f"{args.experiment} sweep - Throughput (tps)", field, list(points),
        {name.upper(): [rows[v][name].throughput for v in points]
         for name in ("nr", "ira", "pqr")})
    text += "\n\n" + format_series(
        f"{args.experiment} sweep - Avg Response Time (ms)", field,
        list(points),
        {name.upper(): [rows[v][name].art for v in points]
         for name in ("nr", "ira", "pqr")},
        y_format="{:9.0f}")
    payload = {
        "wall_clock_s": 0.0,
        "metrics": {str(value): {name: rows[value][name].metrics.summary()
                                 for name in ("nr", "ira", "pqr")}
                    for value in points},
        "counters": {str(value): {name: rows[value][name].counters
                                  for name in ("nr", "ira", "pqr")}
                     for value in points},
    }
    return text, payload


def _profile_summary(profiler, top_n: int) -> List[dict]:
    """Top ``top_n`` functions by cumulative time, JSON-serialisable."""
    import pstats
    stats = pstats.Stats(profiler)
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, lineno, name = func
        rows.append({
            "function": f"{filename.rsplit('/', 1)[-1]}:{lineno}({name})",
            "ncalls": nc,
            "tottime_s": round(tt, 4),
            "cumtime_s": round(ct, 4),
        })
    rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
    return rows[:top_n]


def cmd_bench(args) -> int:
    workload = base_workload(SCALES[args.scale], mpl=30)
    figure_key = f"{args.experiment}/{args.scale}"

    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    # The run allocates heavily but cyclic garbage is negligible; the
    # collector's periodic scans are pure timing noise for the
    # wall-clock baseline.  Simulated metrics are unaffected either way.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    try:
        text, payload = _bench_figure(args, workload)
    finally:
        if gc_was_enabled:
            gc.enable()
    payload["wall_clock_s"] = round(time.perf_counter() - start, 3)
    if profiler is not None:
        profiler.disable()

    print(text)
    print(f"\n[{figure_key}] wall-clock {payload['wall_clock_s']:.2f}s",
          file=sys.stderr)

    if profiler is not None:
        import pstats
        print(f"\ncProfile hotspots (top {args.profile} by total time):")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("tottime").print_stats(args.profile)
        # Mirror the top N by *cumulative* time into the JSON payload so
        # a committed baseline carries its own profile summary.
        payload["profile"] = _profile_summary(profiler, args.profile)

    if args.json:
        try:
            data = load_baseline(args.json)
        except (OSError, ValueError):
            data = new_baseline()
        data["figures"][figure_key] = payload
        save_baseline(args.json, data)
        print(f"wrote {figure_key} to {args.json}", file=sys.stderr)

    if args.compare:
        baseline = load_baseline(args.compare)
        problems = compare_figure(figure_key, payload, baseline,
                                  max_regress_pct=args.max_regress)
        if problems:
            for problem in problems:
                print(f"BENCH REGRESSION: {problem}", file=sys.stderr)
            return 1
        base_wall = baseline["figures"][figure_key]["wall_clock_s"]
        print(f"bench-smoke OK: {payload['wall_clock_s']:.2f}s vs baseline "
              f"{base_wall:.2f}s (+{args.max_regress:.0f}% allowed), "
              f"simulated metrics identical", file=sys.stderr)
    return 0


def cmd_inspect(args) -> int:
    workload = _workload(args)
    db, layout = Database.with_workload(workload)
    if args.pages is not None:
        return _inspect_pages(db, args.pages)
    print(f"{'partition':>9} {'objects':>8} {'pages':>6} {'frag':>7} "
          f"{'ERT entries':>12}")
    for pid in db.store.partition_ids():
        stats = db.partition_stats(pid)
        ert = db.engine.ert_for(pid)
        print(f"{pid:>9} {stats.live_objects:>8} {stats.page_count:>6} "
              f"{stats.fragmentation:>7.1%} {len(ert):>12}")
    report = db.verify_integrity()
    print(f"\nintegrity: {'OK' if report.ok else report.problems()[:3]}")
    return 0


def _inspect_pages(db, partition_id: int) -> int:
    """Per-page occupancy and co-residency for one partition."""
    from .storage.oid import Oid
    store = db.store
    if not store.has_partition(partition_id):
        print(f"no partition {partition_id} "
              f"(have: {store.partition_ids()})", file=sys.stderr)
        return 1
    part = store.partition(partition_id)
    print(f"partition {partition_id}: {part.page_count} pages, "
          f"page size {part.page_size} B, relocation floor "
          f"{part.relocation_floor}")
    print(f"{'page':>5} {'slots':>6} {'fill':>6}  co-resident objects")
    for page_no in part.page_numbers():
        page = part.page(page_no)
        oids = [str(Oid(partition_id, page_no, slot))
                for slot in page.slots()]
        fill = page.used_bytes / part.page_size
        shown = ", ".join(oids[:6]) + (f", … +{len(oids) - 6}"
                                       if len(oids) > 6 else "")
        print(f"{page_no:>5} {len(oids):>6} {fill:>6.0%}  {shown or '-'}")
    return 0


def cmd_cluster(args) -> int:
    from .cluster import (ClusteringAdvisor, ClusterTracer, make_policy,
                          objects_per_page)
    workload = _workload(args)
    db, layout = Database.with_workload(workload)
    engine = db.engine
    tracer = ClusterTracer(pair_window=args.pair_window)
    engine.tracer = tracer
    print(f"tracing {workload.mpl} threads over "
          f"{workload.num_partitions} x "
          f"{workload.objects_per_partition} objects for "
          f"{args.trace_ms / 1000:.0f} s (simulated) ...")
    driver = WorkloadDriver(engine, layout,
                            ExperimentConfig(workload=workload))
    driver.run(horizon_ms=args.trace_ms)
    engine.tracer = None
    graph = tracer.graph
    print(f"traced {tracer.commits} commits: {graph.accesses} accesses, "
          f"{graph.pairs} co-access pairs ({len(graph.heat)} objects and "
          f"{len(graph.edges)} edges tracked after decay)")

    print(f"\ntop {args.top} hot objects (decayed heat):")
    for oid, heat in graph.top_hot(args.top):
        print(f"  {oid!s:>12}  {heat:8.2f}")
    print(f"\ntop {args.top} affinity edges (decayed weight):")
    for (a, b), weight in graph.top_edges(args.top):
        print(f"  {a!s:>12} -- {b!s:<12} {weight:8.2f}")

    advisor = ClusteringAdvisor(graph)
    # Partition 0 holds the persistent-root stubs, not workload data.
    candidates = [pid for pid in db.store.partition_ids() if pid != 0]
    print("\nadvisor ranking, data partitions "
          "(score = fragmentation + scatter x heat-share):")
    for advice in advisor.rank(engine, candidates):
        print(f"  {advice.describe()}")
    best = advisor.recommend(engine, candidates)
    if best is None:
        print("\nrecommendation: nothing worth reorganizing")
        return 0
    pid = best.partition_id
    per_page = objects_per_page(engine, pid)
    placement = make_policy(args.policy).build(
        list(db.store.live_oids(pid)), graph, per_page)
    sizes = [len(cluster) for cluster in placement.clusters]
    print(f"\nrecommendation: reorganize partition {pid} "
          f"(score {best.score:.3f})")
    print(f"  policy {args.policy!r}: {len(sizes)} clusters covering "
          f"{placement.placed_count} hot objects "
          f"(target {per_page} objects/page"
          + (f", largest cluster {max(sizes)}" if sizes else "") + ")")
    print(f"  run it: repro demo --algorithm ira  # with an "
          f"AffinityClusteringPlan(graph, policy={args.policy!r})")
    return 0


def _cmd_chaos_dist(args) -> int:
    from .dist import run_dist_chaos

    def show(name, result):
        status = "ok" if result.ok else "FAIL"
        print(f"  {name:<32} {status}  crashes={result.crashes} "
              f"sim={result.sim_ms:.0f}ms")
        for problem in result.problems:
            print(f"      {problem}")

    report = run_dist_chaos(quick=args.quick, progress=show)
    print(f"\n  scenarios {len(report.results)}  passed {report.passed}")
    for result in report.failures():
        flags = []
        if not result.fired:
            flags.append("fault never fired")
        if not result.completed:
            flags.append("did not quiesce")
        if not result.signature_ok:
            flags.append("graph signature changed")
        if not result.twin_identical:
            flags.append("state differs from unkilled twin")
        print(f"  FAILED {result.scenario}: "
              f"{'; '.join(flags) or 'integrity problems'}")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    from .faults import (CORRUPTION_KINDS, chaos_sweep, corruption_sweep,
                         run_chaos_point)
    if args.dist:
        return _cmd_chaos_dist(args)
    workload = WorkloadConfig(num_partitions=args.partitions,
                              objects_per_partition=args.objects,
                              mpl=args.mpl, seed=args.seed)
    reorg_config = ReorgConfig(checkpoint_every=args.checkpoint_every)
    kinds = None
    if args.corruption != "none":
        kinds = (CORRUPTION_KINDS if args.corruption == "all"
                 else (args.corruption,))
    if args.crash_at is not None:
        result = run_chaos_point(args.crash_at, algorithm=args.algorithm,
                                 workload=workload,
                                 reorg_config=reorg_config, seed=args.seed,
                                 corruption=kinds[0] if kinds else None)
        print(result.describe())
        return 0 if result.ok and not result.silent_corruption else 1
    if kinds is not None:
        report = corruption_sweep(points=args.points,
                                  algorithm=args.algorithm,
                                  workload=workload,
                                  reorg_config=reorg_config,
                                  seed=args.seed, kinds=kinds,
                                  progress=lambda line: print(f"  {line}"))
    else:
        report = chaos_sweep(points=args.points, algorithm=args.algorithm,
                             workload=workload, reorg_config=reorg_config,
                             seed=args.seed,
                             progress=lambda line: print(f"  {line}"))
    print()
    for key, value in report.summary().items():
        print(f"  {key:>21}: {value}")
    ok = report.all_ok and (kinds is None or report.no_silent_corruption)
    return 0 if ok else 1


def cmd_verify(args) -> int:
    import random

    from .verify import deep_verify
    workload = _workload(args)
    db, layout = Database.with_workload(workload)
    print(f"built {workload.num_partitions} x "
          f"{workload.objects_per_partition} objects; reorganizing "
          f"partition 1 under MPL {workload.mpl} ...")
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    driver.run(reorganizer=db.reorganizer(1, "ira", plan=CompactionPlan()))
    db.checkpoint()
    if not args.skip_recovery:
        print("crashing and running restart recovery ...")
        db = Database.recover(db.crash())
    engine = db.engine
    if args.corrupt != "none":
        # Deliberate damage, planted behind the maintenance APIs so the
        # checksums cannot know about it — the verify sweep must catch
        # it or exit 0 would be a lie.
        rng = random.Random(f"verify/{args.seed}")
        store = engine.store
        if args.corrupt == "page":
            keys = [(pid, page_no) for pid in store.partition_ids()
                    for page_no in store.partition(pid).page_numbers()]
            pid, page_no = keys[rng.randrange(len(keys))]
            page = store.partition(pid).page(page_no)
            bit = rng.randrange(len(page._buf) * 8)
            page._buf[bit // 8] ^= 1 << (bit % 8)
            print(f"flipped a bit in live page {pid}:{page_no}")
        elif args.corrupt == "snapshot":
            payload = engine.snapshots.load(engine.snapshots.latest())
            states = [state
                      for part in payload["store"]["partitions"].values()
                      for state in part["pages"].values()]
            state = states[rng.randrange(len(states))]
            buf = bytearray(state["buf"])
            bit = rng.randrange(len(buf) * 8)
            buf[bit // 8] ^= 1 << (bit % 8)
            state["buf"] = bytes(buf)
            print("flipped a bit in the latest durable snapshot")
        elif args.corrupt == "log":
            lsn = rng.randrange(1, engine.log.last_lsn + 1)
            encoded = engine.log._encoded[lsn - 1]
            engine.log._encoded[lsn - 1] = encoded[:max(1, len(encoded) // 2)]
            print(f"truncated the stored bytes of log record {lsn}")
    report = deep_verify(engine)
    print()
    print(report.describe())
    return 0 if report.ok else 1


def cmd_explore(args) -> int:
    from .explore import MUTATIONS, explore, replay_artifact

    if args.replay is not None:
        result = replay_artifact(args.replay)
        print(f"replayed {args.replay}:")
        for verdict in result.verdicts:
            print(f"  {verdict.describe()}")
        print(f"  sim end {result.sim_end_ms:.1f} ms, "
              f"trace {result.trace_hash}"
              + (f", mutation {result.mutation} "
                 f"(triggered={result.mutation_triggered})"
                 if result.mutation else ""))
        return 0 if result.ok else 1

    workload = WorkloadConfig(num_partitions=args.partitions,
                              objects_per_partition=args.objects,
                              mpl=args.mpl, seed=args.seed)
    # Each mutation targets one algorithm's (and lock manager's) seam;
    # follow it unless the user explicitly picked one.
    algorithm = args.algorithm or (
        MUTATIONS[args.mutation].algorithm if args.mutation else "ira")
    locks = args.locks or (
        MUTATIONS[args.mutation].locks if args.mutation else "flat")
    report = explore(seeds=args.seeds, depth=args.depth, workload=workload,
                     algorithm=algorithm, mutation_name=args.mutation,
                     locks=locks, strict=not args.relaxed,
                     out_dir=args.out,
                     progress=lambda line: print(f"  {line}"))
    print(f"\n  distinct schedules   {report.distinct} "
          f"({report.schedules_run} runs)")
    print(f"  baseline choices     {report.baseline_choice_points}")
    print(f"  oracle violations    {len(report.failures)}")
    for result in report.failures:
        print(f"    {result.trace_hash}: {', '.join(result.failing())}")
    for path in report.artifacts:
        print(f"  artifact             {path}")
    if args.mutation is not None:
        # A mutated run is *supposed* to fail; exit 0 only if the
        # matching oracle caught the planted bug somewhere.
        expected = MUTATIONS[args.mutation].expected_oracle
        caught = any(expected in r.failing() for r in report.failures)
        print(f"  planted {args.mutation}: "
              f"{'caught by ' + expected if caught else 'NOT CAUGHT'}")
        return 0 if caught else 1
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On-line Reorganization in Object Databases "
                    "(SIGMOD 2000) — reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="reorganize on-line under load")
    demo.add_argument("--algorithm", default="ira",
                      choices=sorted(REORGANIZERS))
    demo.add_argument("--locks", default="flat", choices=["flat", "hier"],
                      help="lock manager: flat (one granule per object) "
                           "or hier (IS/IX/S/SIX/X over partition/page/"
                           "object with auto-escalation, default flat)")
    demo.add_argument("--escalate-after", type=int, default=8,
                      metavar="N",
                      help="with --locks hier: fine locks on one page "
                           "before escalating to a page lock (default 8, "
                           "0 disables)")
    _add_scale_arguments(demo)
    demo.set_defaults(fn=cmd_demo)

    bench = sub.add_parser("bench", help="run one paper experiment")
    bench.add_argument("experiment",
                       choices=["table2", "mpl", "partition-size",
                                "update-prob", "clustering", "scale",
                                "dist", "mvcc", "locks"])
    bench.add_argument("--profile", type=int, nargs="?", const=25,
                       default=0, metavar="N",
                       help="run under cProfile and print the top N "
                            "hotspots by total time (default N=25)")
    bench.add_argument("--json", metavar="FILE",
                       help="record wall-clock, simulated metrics and "
                            "kernel counters into a BENCH_*.json baseline "
                            "(merged into FILE if it exists)")
    bench.add_argument("--compare", metavar="FILE",
                       help="compare against a committed BENCH_*.json; "
                            "exit 1 on wall-clock regression beyond "
                            "--max-regress or any simulated-metric drift")
    bench.add_argument("--max-regress", "--tolerance", type=float,
                       default=50.0, dest="max_regress", metavar="PCT",
                       help="allowed wall-clock regression vs the "
                            "--compare baseline, percent (default 50); "
                            "--tolerance is an alias")
    bench.add_argument("--scale", default="quick",
                       choices=sorted(SCALES))
    bench.set_defaults(fn=cmd_bench)

    inspect = sub.add_parser("inspect", help="print the physical layout")
    _add_scale_arguments(inspect)
    inspect.add_argument("--pages", type=int, default=None, metavar="PID",
                         help="zoom into one partition: per-page fill "
                              "and co-resident objects")
    inspect.set_defaults(fn=cmd_inspect)

    cluster = sub.add_parser(
        "cluster", help="trace the workload, print affinity statistics "
                        "and the advisor's recommendation")
    _add_scale_arguments(cluster)
    cluster.add_argument("--trace-ms", type=float, default=10_000.0,
                         help="simulated tracing horizon in ms "
                              "(default 10000)")
    cluster.add_argument("--policy", default="dstc",
                         choices=["dstc", "heat"],
                         help="placement policy to preview (default dstc)")
    cluster.add_argument("--pair-window", type=int, default=3,
                         help="max in-transaction distance that counts as "
                              "a co-access (default 3)")
    cluster.add_argument("--top", type=int, default=8,
                         help="how many hot objects / edges to print "
                              "(default 8)")
    cluster.set_defaults(fn=cmd_cluster)

    chaos = sub.add_parser("chaos",
                           help="crash-point sweep over a reorg run")
    chaos.add_argument("--algorithm", default="ira",
                       choices=["ira", "ira-2lock"])
    chaos.add_argument("--points", type=int, default=50,
                       help="crash points to sweep (default 50)")
    chaos.add_argument("--crash-at", type=float, default=None,
                       help="run a single point: crash at this simulated "
                            "time (ms) instead of sweeping")
    chaos.add_argument("--checkpoint-every", type=int, default=20,
                       help="reorg progress checkpoint interval "
                            "(migrations, default 20)")
    chaos.add_argument("--partitions", type=int, default=2)
    chaos.add_argument("--objects", type=int, default=340)
    chaos.add_argument("--mpl", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=13,
                       help="workload + fault-plan seed (default 13)")
    chaos.add_argument("--corruption", default="none",
                       choices=["none", "all", "torn_page", "bit_flip",
                                "torn_log_tail"],
                       help="inject silent corruption at every point and "
                            "demand detection + repair (default none)")
    chaos.add_argument("--dist", action="store_true",
                       help="sweep the distributed cluster instead: 2PC "
                            "stage crashes, node kills, link partitions "
                            "and message loss, gated on a fault-free twin")
    chaos.add_argument("--quick", action="store_true",
                       help="with --dist: the reduced scenario set")
    chaos.set_defaults(fn=cmd_chaos)

    verify = sub.add_parser("verify",
                            help="crash, recover, deep-verify every "
                                 "durability surface")
    _add_scale_arguments(verify)
    verify.add_argument("--corrupt", default="none",
                        choices=["none", "page", "snapshot", "log"],
                        help="plant one deliberate corruption before "
                             "verifying (the sweep must catch it)")
    verify.add_argument("--skip-recovery", action="store_true",
                        help="verify the live engine without the "
                             "crash/recover cycle")
    verify.set_defaults(fn=cmd_verify)

    explore = sub.add_parser(
        "explore", help="explore perturbed schedules against the oracles")
    explore.add_argument("--seeds", type=int, default=50,
                         help="distinct schedules to explore (default 50)")
    explore.add_argument("--depth", type=int, default=2,
                         help="systematic deviations per schedule "
                              "(default 2)")
    explore.add_argument("--algorithm", default=None,
                         choices=["ira", "ira-2lock", "mvcc"],
                         help="default: ira, or the --mutation's target "
                              "algorithm")
    explore.add_argument("--partitions", type=int, default=2)
    explore.add_argument("--objects", type=int, default=85,
                         help="objects per partition, multiple of 85 "
                              "(default 85)")
    explore.add_argument("--mpl", type=int, default=3)
    explore.add_argument("--seed", type=int, default=131,
                         help="workload seed (default 131)")
    explore.add_argument("--locks", default=None,
                         choices=["flat", "hier"],
                         help="lock manager to explore under (default: "
                              "flat, or the --mutation's target manager)")
    explore.add_argument("--relaxed", action="store_true",
                         help="relaxed 2PL (§4.1/§6): read locks release "
                              "at operation end; the serializability "
                              "oracle is skipped, the rest still apply")
    explore.add_argument("--mutation", default=None,
                         choices=sorted(MUTATIONS),
                         help="plant a known reorganizer bug; the run "
                              "then must be caught by its oracle")
    explore.add_argument("--out", default=None, metavar="DIR",
                         help="write minimized replayable failure "
                              "artifacts into DIR")
    explore.add_argument("--replay", default=None, metavar="FILE",
                         help="re-run a failure artifact instead of "
                              "exploring")
    explore.set_defaults(fn=cmd_explore)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
