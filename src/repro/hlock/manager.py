"""Multi-granularity hierarchical lock manager (ROADMAP item 4).

Gray-style intention locking over the partition → page → object granule
tree, drop-in behind the flat :class:`~repro.concurrency.locks.LockManager`
protocol: transactions, the reorganizers, the serve-layer deadlock
detector and the explorer's oracles all run unchanged against either
manager.

Protocol-visible behaviour
--------------------------

* ``try_acquire / acquire_wait / acquire`` on an **object** key first
  plant intention locks (IS for shared, IX for exclusive) on the
  object's partition and page granules — root first, the classic
  deadlock-free order — then take the fine object lock.  Non-object
  keys pass straight through to the base manager.
* All queueing, FIFO dispatch, upgrades, timeouts, chaos kills and the
  waits-for deadlock detector are inherited: a wait on an ancestor
  granule is an ordinary wait edge in the shared waits-for graph, so
  deadlock cycles passing through granules are detected exactly like
  flat cycles, and the ``observer`` hook sees granule grants/releases
  like any other key.

Escalation
----------

With ``escalate_after = N > 0``, the N-th fine lock a transaction
accumulates on one page promotes them all to a single page lock (S if
every fine lock is S, else X; an existing IX intent folds in as SIX).
Escalation is *opportunistic and synchronous*: it only happens when the
coarse mode is immediately grantable against every other holder of the
granule, and never blocks.  That check is also what makes releasing the
covered fine locks safe: any transaction holding **or waiting for** a
conflicting fine lock under the page necessarily planted its own
conflicting page intent first (root-first order), which defeats the
escalation — so a successful escalation proves no conflicting fine
holder or waiter exists below, and the freed fine entries can only
admit compatible waiters.  ``lock_partition_escalate_after`` applies the
same rule one level up.

When another transaction's request later conflicts with an *escalated*
coarse lock, the manager de-escalates the holder instead of blocking the
requester (``deescalate_on_conflict``): the remembered fine locks are
re-granted — provably compatible, by the same intent argument — the
coarse grant demotes back to the intents the survivors need, and the
requester retries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..concurrency.locks import (
    _COMPATIBLE,
    _COVERS,
    _SUP,
    LockManager,
    LockMode,
    _LockEntry,
)
from ..storage.oid import Oid
from .granules import PageGranule, PartitionGranule, descendant_of

#: The intention mode an acquisition in ``mode`` requires on every
#: ancestor granule (also: the partition intent a page-level mode needs).
_INTENT: Dict[LockMode, LockMode] = {
    LockMode.IS: LockMode.IS,
    LockMode.S: LockMode.IS,
    LockMode.IX: LockMode.IX,
    LockMode.SIX: LockMode.IX,
    LockMode.X: LockMode.IX,
}

#: Coarse mode held on a granule -> the descendant modes it satisfies
#: without a fine lock (SIX's IX half only licenses the holder's *own*
#: further fine X locks, so implicitly it is S below).
_COVERS_BELOW: Dict[LockMode, frozenset] = {
    LockMode.S: frozenset({LockMode.S, LockMode.IS}),
    LockMode.SIX: frozenset({LockMode.S, LockMode.IS}),
    LockMode.X: frozenset(LockMode),
}

#: Coarse mode -> the mode it implicitly holds on every descendant
#: (for conflict checks against other transactions' descendant locks).
_IMPLICIT_BELOW: Dict[LockMode, LockMode] = {
    LockMode.S: LockMode.S,
    LockMode.SIX: LockMode.S,
    LockMode.X: LockMode.X,
}


class HierarchicalLockManager(LockManager):
    """IS/IX/S/SIX/X over partition → page → object granules."""

    def __init__(self, sim, timeout_ms: float = 1000.0,
                 track_history: bool = True, detection: str = "timeout",
                 escalate_after: int = 0,
                 partition_escalate_after: int = 0,
                 deescalate_on_conflict: bool = True):
        super().__init__(sim, timeout_ms=timeout_ms,
                         track_history=track_history, detection=detection)
        self.escalate_after = escalate_after
        self.partition_escalate_after = partition_escalate_after
        self.deescalate_on_conflict = deescalate_on_conflict
        # Interned granule keys (one per page/partition ever touched).
        self._page_granules: Dict[Tuple[int, int], PageGranule] = {}
        self._part_granules: Dict[int, PartitionGranule] = {}
        #: tid -> page granule -> {oid: mode} of live fine object locks.
        self._fine: Dict[int, Dict[PageGranule, Dict[Oid, LockMode]]] = {}
        #: tid -> granule -> {oid: mode} remembered under an escalated
        #: coarse lock (re-granted verbatim on de-escalation).
        self._covered: Dict[int, Dict[object, Dict[Oid, LockMode]]] = {}
        #: tid -> granule -> fine-lock count at the last failed escalation
        #: attempt (retry only once the transaction grows past it).
        self._esc_failed: Dict[int, Dict[object, int]] = {}
        #: tid -> object keys held, mirroring exactly the per-tid set the
        #: flat manager would keep (same insert/discard sequence).  With
        #: escalation off, ``release_all`` walks this first so waiter
        #: wakeup order — hence the whole schedule — is byte-identical to
        #: the flat manager's; granule keys must not perturb it.
        self._objects_held: Dict[int, Set[Oid]] = {}

    def _grant(self, entry, tid: int, mode: LockMode, key) -> None:
        super()._grant(entry, tid, mode, key)
        if type(key) is Oid:
            objs = self._objects_held.get(tid)
            if objs is None:
                objs = self._objects_held[tid] = set()
            objs.add(key)

    # -- granule interning -------------------------------------------------------------

    def _page_g(self, partition: int, page: int) -> PageGranule:
        key = (partition, page)
        g = self._page_granules.get(key)
        if g is None:
            g = self._page_granules[key] = PageGranule(partition, page)
        return g

    def _part_g(self, partition: int) -> PartitionGranule:
        g = self._part_granules.get(partition)
        if g is None:
            g = self._part_granules[partition] = PartitionGranule(partition)
        return g

    def _ancestors(self, tid: int, oid: Oid,
                   intent: LockMode) -> Tuple[object, ...]:
        """The ancestor granules to lock (in ``intent``) before an object
        lock, root first.  Seam for the planted missing-ancestor-intent
        mutation; ``tid`` is unused here but lets a mutation scope its
        damage."""
        return (self._part_g(oid.partition),
                self._page_g(oid.partition, oid.page))

    # -- acquisition -------------------------------------------------------------------

    def try_acquire(self, tid: int, key, mode: LockMode) -> bool:
        if not isinstance(key, Oid):
            return super().try_acquire(tid, key, mode)
        page = self._page_g(key.partition, key.page)
        part = self._part_g(key.partition)
        covering = self._covering(tid, page, part, mode)
        if covering is not None:
            self.stats.requests += 1
            self._note_covered(tid, covering, key, mode)
            return True
        intent = _INTENT[mode]
        for granule in self._ancestors(tid, key, intent):
            if not self._acquire_granule(tid, granule, intent):
                return False
        if not super().try_acquire(tid, key, mode):
            return False
        self._note_fine(tid, page, key, mode)
        self._maybe_escalate(tid, page, part)
        return True

    def acquire_wait(self, tid: int, key, mode: LockMode,
                     timeout_ms: Optional[float] = None):
        if not isinstance(key, Oid):
            yield from super().acquire_wait(tid, key, mode, timeout_ms)
            return
        page = self._page_g(key.partition, key.page)
        part = self._part_g(key.partition)
        covering = self._covering(tid, page, part, mode)
        if covering is not None:
            self.stats.requests += 1
            self._note_covered(tid, covering, key, mode)
            return
        intent = _INTENT[mode]
        for granule in self._ancestors(tid, key, intent):
            if not self._acquire_granule(tid, granule, intent):
                yield from super().acquire_wait(tid, granule, intent,
                                                timeout_ms)
        if not super().try_acquire(tid, key, mode):
            yield from super().acquire_wait(tid, key, mode, timeout_ms)
        self._note_fine(tid, page, key, mode)
        self._maybe_escalate(tid, page, part)

    def _acquire_granule(self, tid: int, granule, mode: LockMode) -> bool:
        if super().try_acquire(tid, granule, mode):
            return True
        if self.deescalate_on_conflict and \
                self._deescalate_blockers(tid, granule, mode):
            return super().try_acquire(tid, granule, mode)
        return False

    # -- coverage ----------------------------------------------------------------------

    def _covering(self, tid: int, page: PageGranule,
                  part: PartitionGranule, mode: LockMode):
        """The coarse granule whose lock already satisfies ``mode`` on an
        object below it, or ``None``."""
        table = self._table
        for granule in (page, part):
            entry = table.get(granule)
            if entry is not None:
                held = entry.granted.get(tid)
                if held is not None and \
                        mode in _COVERS_BELOW.get(held, ()):
                    return granule
        return None

    def _note_covered(self, tid: int, granule, oid: Oid,
                      mode: LockMode) -> None:
        bucket = self._covered.setdefault(tid, {}).setdefault(granule, {})
        old = bucket.get(oid)
        bucket[oid] = mode if old is None else _SUP[old][mode]

    def _note_fine(self, tid: int, page: PageGranule, oid: Oid,
                   mode: LockMode) -> None:
        fine = self._fine.get(tid)
        if fine is None:
            fine = self._fine[tid] = {}
        page_map = fine.get(page)
        if page_map is None:
            page_map = fine[page] = {}
        old = page_map.get(oid)
        page_map[oid] = mode if old is None else _SUP[old][mode]

    # -- escalation --------------------------------------------------------------------

    def _maybe_escalate(self, tid: int, page: PageGranule,
                        part: PartitionGranule) -> None:
        if self.escalate_after > 0:
            fine = self._fine.get(tid)
            if fine:
                page_map = fine.get(page)
                if page_map is not None and \
                        len(page_map) >= self.escalate_after:
                    self._escalate(tid, page, page_map)
        if self.partition_escalate_after > 0:
            fine = self._fine.get(tid)
            if fine:
                total = sum(len(oids) for g, oids in fine.items()
                            if g.partition == part.partition)
                if total >= self.partition_escalate_after:
                    self._escalate_partition(tid, part)

    def _escalation_safe(self, tid: int, granule,
                         target: LockMode) -> bool:
        """May ``tid``'s locks under ``granule`` escalate to ``target``?

        Grantability against every *other* holder of the granule is the
        whole safety argument: a conflicting fine holder or waiter below
        necessarily planted a conflicting intent here first (root-first
        acquisition order), so passing this check proves the subtree
        clean.  Seam for the planted escalate-over-conflict mutation.
        """
        entry = self._table.get(granule)
        return entry is not None and \
            self._grantable(entry, target, ignore_tid=tid)

    def _escalate(self, tid: int, page: PageGranule,
                  page_map: Dict[Oid, LockMode]) -> None:
        failed = self._esc_failed.get(tid)
        if failed is not None and failed.get(page, -1) >= len(page_map):
            return  # already failed at this size; retry after growth
        held = self._table[page].granted.get(tid)
        if held is None:
            return  # no page lock to promote (planted-bug territory)
        raw = LockMode.X if any(m is LockMode.X for m in page_map.values()) \
            else LockMode.S
        target = _SUP[held][raw]
        if target is held:
            return  # already coarse enough
        if not self._escalation_safe(tid, page, target):
            self.stats.escalation_failures += 1
            self._esc_failed.setdefault(tid, {})[page] = len(page_map)
            return
        self._promote(tid, page, target)
        self.stats.escalations += 1
        bucket = self._covered.setdefault(tid, {}).setdefault(page, {})
        for oid, m in page_map.items():
            old = bucket.get(oid)
            bucket[oid] = m if old is None else _SUP[old][m]
        objs = self._objects_held.get(tid)
        for oid in list(page_map):
            super().release(tid, oid)
            if objs is not None:
                objs.discard(oid)
        self._fine[tid].pop(page, None)
        if failed is not None:
            failed.pop(page, None)

    def _escalate_partition(self, tid: int,
                            part: PartitionGranule) -> None:
        fine = self._fine.get(tid) or {}
        pages = [g for g in fine if g.partition == part.partition]
        merged: Dict[Oid, LockMode] = {}
        for g in pages:
            merged.update(fine[g])
        cov = self._covered.get(tid, {})
        cov_pages = [g for g in cov if type(g) is PageGranule
                     and g.partition == part.partition]
        for g in cov_pages:
            for oid, m in cov[g].items():
                old = merged.get(oid)
                merged[oid] = m if old is None else _SUP[old][m]
        if not merged:
            return
        failed = self._esc_failed.get(tid)
        if failed is not None and failed.get(part, -1) >= len(merged):
            return
        held = self._table[part].granted.get(tid)
        if held is None:
            return
        raw = LockMode.X if any(m is LockMode.X for m in merged.values()) \
            else LockMode.S
        target = _SUP[held][raw]
        if target is held:
            return
        if not self._escalation_safe(tid, part, target):
            self.stats.escalation_failures += 1
            self._esc_failed.setdefault(tid, {})[part] = len(merged)
            return
        self._promote(tid, part, target)
        self.stats.escalations += 1
        bucket = self._covered.setdefault(tid, {}).setdefault(part, {})
        for oid, m in merged.items():
            old = bucket.get(oid)
            bucket[oid] = m if old is None else _SUP[old][m]
        # Everything below the partition collapses into the coarse lock:
        # fine object locks, escalated page locks, and page intents.
        objs = self._objects_held.get(tid)
        for g in pages:
            for oid in list(fine[g]):
                super().release(tid, oid)
                if objs is not None:
                    objs.discard(oid)
            del fine[g]
        for g in cov_pages:
            del cov[g]
            super().release(tid, g)
        for key in [k for k in self._held_by.get(tid, ())
                    if type(k) is PageGranule
                    and k.partition == part.partition]:
            super().release(tid, key)
        if failed is not None:
            failed.pop(part, None)

    def _promote(self, tid: int, granule, target: LockMode) -> None:
        entry = self._table[granule]
        entry.granted[tid] = target
        if self.observer is not None:
            self.observer("grant", tid, granule, target)

    # -- de-escalation -----------------------------------------------------------------

    def _deescalate_blockers(self, requester: int, granule,
                             mode: LockMode) -> bool:
        """De-escalate every holder whose *escalated* coarse lock on
        ``granule`` conflicts with ``mode``.  Returns True when all
        conflicts were escalations (the requester should retry); False
        as soon as a genuine conflict remains."""
        entry = self._table.get(granule)
        if entry is None:
            return False
        compatible = _COMPATIBLE[mode]
        did = False
        for holder, held in list(entry.granted.items()):
            if holder == requester or held in compatible:
                continue
            cov = self._covered.get(holder)
            if cov is None or granule not in cov:
                return False  # a real coarse conflict, not an escalation
            self._deescalate(holder, granule)
            did = True
        return did

    def _deescalate(self, holder: int, granule) -> None:
        fines = self._covered[holder].pop(granule)
        is_page = type(granule) is PageGranule
        fine = self._fine.get(holder)
        if fine is None:
            fine = self._fine[holder] = {}
        for oid, m in fines.items():
            if not is_page:
                # Partition de-escalation: re-plant the page intent the
                # fine lock needs before the fine lock itself.
                self._regrant(holder,
                              self._page_g(oid.partition, oid.page),
                              _INTENT[m])
            self._regrant(holder, oid, m)
            page = granule if is_page else self._page_g(oid.partition,
                                                        oid.page)
            page_map = fine.get(page)
            if page_map is None:
                page_map = fine[page] = {}
            old = page_map.get(oid)
            page_map[oid] = m if old is None else _SUP[old][m]
        self.stats.deescalations += 1
        # Demote the coarse grant to whatever intent the holder's
        # remaining locks below still require (possibly nothing).
        entry = self._table[granule]
        demoted = self._required_intent(holder, granule)
        if self.observer is not None:
            self.observer("release", holder, granule, None)
        if demoted is None:
            del entry.granted[holder]
            held = self._held_by.get(holder)
            if held is not None:
                held.discard(granule)
        else:
            entry.granted[holder] = demoted
            if self.observer is not None:
                self.observer("grant", holder, granule, demoted)
        self._dispatch(entry, granule)
        failed = self._esc_failed.get(holder)
        if failed is not None:
            failed.pop(granule, None)

    def _regrant(self, holder: int, key, mode: LockMode) -> None:
        """Re-grant a lock covered until now by an escalated coarse lock.

        Always compatible: the coarse lock is still held while re-granting,
        so no other transaction can hold (or wait for — its intents would
        have defeated the escalation) a conflicting lock below it.
        """
        entry = self._table.get(key)
        if entry is None:
            entry = _LockEntry()
            self._table[key] = entry
            if len(self._table) > self.stats.table_peak:
                self.stats.table_peak = len(self._table)
        held = entry.granted.get(holder)
        if held is None:
            self._grant(entry, holder, mode, key)
        elif mode not in _COVERS[held]:
            target = _SUP[held][mode]
            entry.granted[holder] = target
            if self.observer is not None:
                self.observer("grant", holder, key, target)

    def _required_intent(self, holder: int, granule) -> Optional[LockMode]:
        """The intent the holder's surviving locks below ``granule`` need
        on it (None when nothing is left below)."""
        need: Optional[LockMode] = None
        table = self._table
        for key in self._held_by.get(holder, ()):
            if key == granule or not descendant_of(key, granule):
                continue
            m = _INTENT[table[key].granted[holder]]
            need = m if need is None else _SUP[need][m]
        # Remembered covers on a child granule (an escalated page under a
        # de-escalating partition keeps its coarse page lock).
        cov = self._covered.get(holder)
        if cov:
            for g in cov:
                if g != granule and descendant_of(g, granule):
                    m = _INTENT[table[g].granted[holder]]
                    need = m if need is None else _SUP[need][m]
        return need

    # -- release -----------------------------------------------------------------------

    def release(self, tid: int, key) -> None:
        if isinstance(key, Oid):
            fine = self._fine.get(tid)
            if fine:
                page = self._page_g(key.partition, key.page)
                page_map = fine.get(page)
                if page_map is not None and key in page_map:
                    del page_map[key]
                    if not page_map:
                        del fine[page]
                    super().release(tid, key)
                    objs = self._objects_held.get(tid)
                    if objs is not None:
                        objs.discard(key)
                    return
            cov = self._covered.get(tid)
            if cov:
                # Covered by an escalated coarse lock: forget the touch so
                # a de-escalation won't resurrect it; the coarse lock
                # itself stays (deliberately conservative).
                for oids in cov.values():
                    if key in oids:
                        del oids[key]
                        return
        super().release(tid, key)

    def release_all(self, tid: int) -> Set[object]:
        # Release object locks first, iterating the flat-mirror set: same
        # insert/discard history as the flat manager's per-tid set, so
        # (escalation off) the waiter wakeup sequence is byte-identical.
        # Granules go second — leaf-before-ancestor is also the only
        # hierarchically sound release order.
        released: Set[object] = set()
        objs = self._objects_held.pop(tid, None)
        keys = self._held_by.get(tid)
        if objs and keys:
            table = self._table
            observer = self.observer
            for key in objs:
                if key not in keys:
                    continue
                keys.discard(key)
                entry = table.get(key)
                if entry is not None and tid in entry.granted:
                    del entry.granted[tid]
                    released.add(key)
                    if observer is not None:
                        observer("release", tid, key, None)
                    if entry.queue:
                        self._dispatch(entry, key)
                    elif not entry.granted:
                        del table[key]
        released |= super().release_all(tid)
        self._fine.pop(tid, None)
        self._covered.pop(tid, None)
        self._esc_failed.pop(tid, None)
        return released

    # -- introspection -----------------------------------------------------------------

    def holds(self, tid: int, key, mode: Optional[LockMode] = None) -> bool:
        if super().holds(tid, key, mode):
            return True
        if not isinstance(key, Oid):
            return False
        page = self._page_g(key.partition, key.page)
        part = self._part_g(key.partition)
        if mode is not None:
            return self._covering(tid, page, part, mode) is not None
        cov = self._covered.get(tid)
        if cov:
            for granule in (page, part):
                oids = cov.get(granule)
                if oids and key in oids:
                    return True
        return False

    def object_lock_count(self, tid: int) -> int:
        return len(self._objects_held.get(tid, ()))

    def counters_summary(self, force: bool = False):
        out = self._counters("hier")
        out["escalation_failures"] = self.stats.escalation_failures
        return out

    # -- hierarchy-consistency checks (used by the explorer's oracles) ----------------

    def missing_ancestor_intents(self, tid: int) -> List[str]:
        """Every object-level lock ``tid`` holds whose ancestor intents
        are absent or too weak — always empty for a sound manager."""
        problems: List[str] = []
        held = self._held_by.get(tid)
        if held:
            for key in held:
                if isinstance(key, Oid):
                    problems.extend(self.grant_problems(
                        tid, key, self._table[key].granted[tid]))
        return problems

    def grant_problems(self, tid: int, key, mode: LockMode) -> List[str]:
        """Hierarchy invariants violated by ``tid`` holding ``mode`` on
        ``key`` right now (empty for a sound manager).

        Object keys must have covering ancestor intents; coarse (S/SIX/X)
        granule locks must not coexist with a conflicting lock held by
        another transaction on any descendant.
        """
        problems: List[str] = []
        if isinstance(key, Oid):
            required = _INTENT[mode]
            for anc in (self._page_g(key.partition, key.page),
                        self._part_g(key.partition)):
                entry = self._table.get(anc)
                held = entry.granted.get(tid) if entry is not None else None
                if held is None or required not in _COVERS[held]:
                    problems.append(
                        f"txn {tid} holds {mode.value} on {key} without "
                        f"{required.value} on {anc}")
        else:
            implicit = _IMPLICIT_BELOW.get(mode)
            if implicit is not None:
                # A coarse grant must be compatible with every co-holder
                # of the granule itself (this is what an escalation that
                # skips re-validation breaks) ...
                entry = self._table.get(key)
                if entry is not None:
                    allowed = _COMPATIBLE[mode]
                    for other_tid, m in entry.granted.items():
                        if other_tid != tid and m not in allowed:
                            problems.append(
                                f"txn {tid} holds {mode.value} on {key} "
                                f"alongside txn {other_tid}'s incompatible "
                                f"{m.value}")
                # ... and with every other transaction's lock below it.
                compatible = _COMPATIBLE[implicit]
                for other_key, entry in self._table.items():
                    if not descendant_of(other_key, key):
                        continue
                    for other_tid, m in entry.granted.items():
                        if other_tid != tid and m not in compatible:
                            problems.append(
                                f"txn {tid} holds {mode.value} on {key} "
                                f"over txn {other_tid}'s conflicting "
                                f"{m.value} on {other_key}")
        return problems
