"""Multi-granularity hierarchical locking (ROADMAP item 4).

``repro.hlock`` provides :class:`HierarchicalLockManager` — IS/IX/S/SIX/X
intention locking over the partition → page → object granule tree with
configurable auto-escalation — as a drop-in replacement for the flat
:class:`~repro.concurrency.locks.LockManager`, selected per engine via
``SystemConfig.lock_manager``.  See CONCURRENCY.md.
"""

from ..concurrency.locks import LockManager
from .granules import (PageGranule, PartitionGranule, descendant_of,
                       page_granule_of, partition_granule_of)
from .manager import HierarchicalLockManager

LOCK_MANAGERS = ("flat", "hier")


def build_lock_manager(sim, config) -> LockManager:
    """Construct the lock manager a :class:`SystemConfig` asks for.

    Used by both engine construction sites (fresh boot and recovery) so
    the choice survives crash/restart.
    """
    if config.lock_manager == "hier":
        return HierarchicalLockManager(
            sim,
            timeout_ms=config.lock_timeout_ms,
            track_history=config.track_lock_history,
            detection=config.deadlock_detection,
            escalate_after=config.lock_escalate_after,
            partition_escalate_after=config.lock_partition_escalate_after,
            deescalate_on_conflict=config.lock_deescalate_on_conflict)
    if config.lock_manager != "flat":
        raise ValueError(f"lock_manager={config.lock_manager!r}; "
                         f"choose one of {LOCK_MANAGERS}")
    return LockManager(
        sim,
        timeout_ms=config.lock_timeout_ms,
        track_history=config.track_lock_history,
        detection=config.deadlock_detection)


__all__ = [
    "HierarchicalLockManager",
    "LOCK_MANAGERS",
    "PageGranule",
    "PartitionGranule",
    "build_lock_manager",
    "descendant_of",
    "page_granule_of",
    "partition_granule_of",
]
