"""Granule keys for the partition → page → object lock hierarchy.

The lock table is keyed by arbitrary hashable keys; objects lock under
their physical :class:`~repro.storage.oid.Oid` exactly as before, and the
hierarchical manager adds two ancestor key types above them.  Because the
paper's OIDs *are* physical addresses, the granule path of an object is a
pure projection of its OID — ``Oid(p, g, s)`` lives under
``PageGranule(p, g)`` under ``PartitionGranule(p)`` — so granule paths
stay correct across reorganizer migrations for free: a migrated object
has a new OID and therefore, automatically, a new granule path.

Both granule types are ``NamedTuple``\\ s like ``Oid`` itself, so they are
hashable, ordered, cheap, and (having one and two fields against the
OID's three) can never collide with an object key in the shared table.
"""

from __future__ import annotations

from typing import NamedTuple

from ..storage.oid import Oid


class PartitionGranule(NamedTuple):
    """Coarsest granule: one per storage partition."""

    partition: int

    def __repr__(self) -> str:
        return f"part:{self.partition}"

    __str__ = __repr__


class PageGranule(NamedTuple):
    """Middle granule: one per page of a partition."""

    partition: int
    page: int

    def __repr__(self) -> str:
        return f"page:{self.partition}:{self.page}"

    __str__ = __repr__


def page_granule_of(oid: Oid) -> PageGranule:
    return PageGranule(oid.partition, oid.page)


def partition_granule_of(oid: Oid) -> PartitionGranule:
    return PartitionGranule(oid.partition)


def descendant_of(key, coarse) -> bool:
    """True iff lock-table key ``key`` lies strictly below ``coarse`` in
    the granule tree."""
    if type(coarse) is PageGranule:
        return (type(key) is Oid and key.partition == coarse.partition
                and key.page == coarse.page)
    if type(coarse) is PartitionGranule:
        return ((type(key) is Oid or type(key) is PageGranule)
                and key.partition == coarse.partition)
    return False
