"""The lock-manager benchmark: ``repro bench locks``.

Flat vs. hierarchical locking under load, one IRA reorganization racing
MPL user threads, swept over the scale's MPL points.  The workload mixes
the paper's §5.2 random walks with *cluster scans* — report-style
transactions that read one whole cluster through its tree edges — which
is the classic workload escalation exists for: a scan piles dozens of
fine S locks onto a handful of pages, and under strict 2PL holds them
all to commit.  Three arms:

* ``flat``         — the baseline flat manager: every scanned object is
  one lock-table entry until commit.
* ``hier``         — the hierarchical manager with auto-escalation
  (:data:`ESCALATE_AFTER` fine locks on one page promote to a page
  lock), strict 2PL: a scan's per-page lock piles collapse to one page
  lock each.
* ``hier-relaxed`` — the same manager under relaxed two-phase locking
  (§4.1/§6: read locks release at operation end), the paper's
  short-duration-lock operating point and the *other* classic answer to
  reader lock footprint.

Reported per arm: throughput, reorg-interference tail (p99/max response
during the reorganization window) and the lock-manager counters —
acquires, conflicts, escalations, de-escalations and the peak lock-table
size, which is the number hierarchical locking exists to shrink.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..bench.harness import SCALES, BenchPoint, base_workload
from ..concurrency import LockTimeoutError
from ..config import ExperimentConfig, SystemConfig, WorkloadConfig
from ..core import CompactionPlan
from ..database import Database
from ..storage import NoSuchObjectError
from ..workload import WorkloadDriver
from ..workload.transactions import WalkOutcome, random_walk_transaction

#: Fine locks on one page before the hierarchical arms escalate; the
#: partition threshold stays off so escalation pressure is page-local.
ESCALATE_AFTER = 3

#: Probability a logical transaction is a cluster scan (the rest are the
#: standard random walks).
SCAN_PROB = 0.25

LOCK_ARMS = ("flat", "hier", "hier-relaxed")


def cluster_scan_transaction(engine, layout, config, rng,
                             home_partition: int
                             ) -> Generator[Any, Any, WalkOutcome]:
    """Read every object of one randomly chosen cluster (tree edges
    only — glue edges leave the cluster), shared locks throughout."""
    txn = engine.txns.begin()
    ops = 0
    try:
        # Enter through a root stub like the walks do: the stub's ref is
        # patched transactionally by the reorganizer, so it is always
        # current (``layout.cluster_roots`` is only remapped at reorg
        # end and would hand out stale mid-migration addresses).
        stubs = layout.root_stubs[home_partition]
        stub = stubs[rng.randrange(len(stubs))]
        stack = [(yield from txn.read_refs(stub))[0]]
        while stack:
            image = yield from txn.read(stack.pop())
            ops += 1
            for slot, child in image.refs():
                if slot < config.branching:
                    stack.append(child)
        yield from txn.commit()
        return WalkOutcome(True, ops, 0, 0)
    except LockTimeoutError:
        yield from txn.abort(reason="deadlock")
        raise
    except NoSuchObjectError:
        yield from txn.abort(reason="stale-read")
        raise


def scan_mix_transaction(engine, layout, config, rng, home_partition: int
                         ) -> Generator[Any, Any, WalkOutcome]:
    """The bench's per-transaction body: scan with :data:`SCAN_PROB`,
    else the standard random walk.  The flavor comes off the same
    per-transaction rng, so a timeout retry re-runs the same flavor."""
    if rng.random() < SCAN_PROB:
        return (yield from cluster_scan_transaction(
            engine, layout, config, rng, home_partition))
    return (yield from random_walk_transaction(
        engine, layout, config, rng, home_partition))


class LockBenchDriver(WorkloadDriver):
    """The standard closed-loop driver over the scan-mix transactions.

    A scan keeps copied-out child references on its stack for a long
    window, so under relaxed 2PL (read locks released at operation end)
    it can hit the §4.2 stale-reference abort when a migration deletes
    an old copy mid-scan.  That is a normal retryable outcome here: the
    retry re-runs the same seeded transaction, and the stub re-read
    resolves to the object's new address.
    """

    walk_fn = staticmethod(scan_mix_transaction)
    retry_on = (LockTimeoutError, NoSuchObjectError)


def _arm_system(arm: str) -> Optional[SystemConfig]:
    """The engine config of one arm (``None`` keeps the flat arm on the
    default-construction path, byte-identical to ``run_point``)."""
    if arm == "flat":
        return None
    return SystemConfig(lock_manager="hier",
                        lock_escalate_after=ESCALATE_AFTER,
                        strict_transactions=(arm != "hier-relaxed"))


def run_locks_point(arm: str, workload: WorkloadConfig
                    ) -> Tuple[BenchPoint, Dict[str, object]]:
    """One arm at one MPL: the metrics point plus the lock counters
    (forced, so the flat manager reports them too)."""
    system = _arm_system(arm)
    db, layout = Database.with_workload(workload, system=system)
    driver = LockBenchDriver(
        db.engine, layout,
        ExperimentConfig(workload=workload, system=system or SystemConfig()))
    reorganizer = db.reorganizer(1, "ira", plan=CompactionPlan())
    metrics = driver.run(reorganizer=reorganizer)
    report = db.verify_integrity()
    if not report.ok:
        raise AssertionError(
            f"integrity violated after locks/{arm}: {report.problems()[:3]}")
    point = BenchPoint(algorithm=arm, metrics=metrics,
                       counters=db.engine.sim.counters())
    return point, db.engine.locks.counters_summary(force=True)


def run_locks_experiment(scale_name: str,
                         progress: Optional[Callable[[str], None]] = None
                         ) -> Dict[int, Dict[str, Tuple[BenchPoint, Dict]]]:
    scale = SCALES[scale_name]
    say = progress or (lambda line: None)
    rows: Dict[int, Dict[str, Tuple[BenchPoint, Dict]]] = {}
    for mpl in scale.mpl_points:
        workload = base_workload(scale, mpl=mpl)
        rows[mpl] = {}
        for arm in LOCK_ARMS:
            point, counters = rows[mpl][arm] = run_locks_point(arm, workload)
            say(f"mpl={mpl} {arm}: "
                f"{point.metrics.throughput_tps:.1f} tps, "
                f"table peak {counters['table_peak']}, "
                f"{counters['escalations']} escalations")
    return rows


def format_locks(rows: Dict[int, Dict[str, Tuple[BenchPoint, Dict]]]) -> str:
    lines = [
        "Lock managers under on-line reorganization (IRA arm)",
        "----------------------------------------------------",
        f"{'mpl':>4} {'arm':<13} {'tput(tps)':>10} {'p99 RT(ms)':>11} "
        f"{'max RT(ms)':>11} {'acquires':>9} {'conflicts':>10} "
        f"{'esc':>5} {'deesc':>6} {'peak':>6}",
    ]
    for mpl in sorted(rows):
        for arm in LOCK_ARMS:
            point, counters = rows[mpl][arm]
            m = point.metrics
            lines.append(
                f"{mpl:>4} {arm:<13} {m.throughput_tps:10.1f} "
                f"{m.p99_response_ms:11.0f} {m.max_response_ms:11.0f} "
                f"{counters['acquires']:9d} {counters['conflicts']:10d} "
                f"{counters['escalations']:5d} "
                f"{counters['deescalations']:6d} "
                f"{counters['table_peak']:6d}")
    lines.append("")
    lines.append("peak = most lock-table entries live at once; the "
                 "hierarchical arms trade a few intent entries for "
                 "escalated fine locks.")
    return "\n".join(lines)


def locks_payload(rows: Dict[int, Dict[str, Tuple[BenchPoint, Dict]]]
                  ) -> Dict[str, object]:
    """The BENCH_*.json figure payload.  Lock counters appear twice: the
    hierarchical arms carry theirs inside ``metrics`` (pinned exactly by
    ``--compare``), and every arm's forced counters — the flat manager
    included — live under ``locks`` for the flat-vs-hier table."""
    return {
        "wall_clock_s": 0.0,
        "metrics": {str(mpl): {arm: rows[mpl][arm][0].metrics.summary()
                               for arm in LOCK_ARMS}
                    for mpl in sorted(rows)},
        "counters": {str(mpl): {arm: rows[mpl][arm][0].counters
                                for arm in LOCK_ARMS}
                     for mpl in sorted(rows)},
        "locks": {str(mpl): {arm: rows[mpl][arm][1]
                             for arm in LOCK_ARMS}
                  for mpl in sorted(rows)},
    }
