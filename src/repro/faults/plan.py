"""Deterministic fault plans.

A :class:`FaultPlan` declares, up front, every fault a run will suffer:
whole-system crashes (at a simulated time, at an LSN, or at the n-th
physical page write), targeted process kills (the reorganizer mid-batch),
transient page-I/O errors, and forced lock-timeout storms.  Everything is
seed-driven — two runs with the same plan, workload and seeds inject the
same faults at the same simulated instants, which is what makes the chaos
sweeps (:mod:`repro.faults.chaos`) reproducible and bisectable.

The plan is pure data; :class:`repro.faults.FaultInjector` threads it
through the engine's hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

#: Active-window sentinel meaning "for the whole run".
ALWAYS: Tuple[float, float] = (0.0, float("inf"))


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into one run.

    Crash triggers (the first one to fire wins; the rest are disarmed):

    * ``crash_at_ms`` — crash when the simulated clock reaches this time.
    * ``crash_at_lsn`` — crash as soon as a log record with this LSN (or
      beyond) is appended.
    * ``crash_at_page_write`` — crash on the n-th *physical* page write,
      counted as physical-kind log-record appends (OBJ_CREATE/OBJ_DELETE/
      PAYLOAD_UPDATE/REF_UPDATE), which is the meaningful unit in the
      paper's memory-resident setting.

    Targeted kill (process-level, not system-level):

    * ``kill_process_at_ms`` / ``kill_process_match`` — at the given
      time, kill every live process whose name contains the substring
      (default ``"reorg"``: the reorganization utility mid-batch).  The
      rest of the system keeps running.

    Transient page-I/O errors (buffer pool reads/writes and log flushes):

    * ``io_error_rate`` — per-transfer failure probability, drawn from a
      seeded RNG; failed transfers are retried with capped exponential
      backoff by the buffer pool / log manager.
    * ``io_error_window_ms`` — ``(start, end)`` of simulated time during
      which the rate applies (default: the whole run).

    Forced lock-timeout storms:

    * ``lock_storm_rate`` — probability that a lock request which would
      have to wait is instead failed immediately with a
      :class:`~repro.concurrency.LockTimeoutError` (a deadlock-victim
      storm).
    * ``lock_storm_window_ms`` — active window, as above.

    Corruption (the silent kind — nothing raises at injection time;
    checksums and the scrubber must *catch* it):

    * ``torn_page_write`` — tear one page of the n-th checkpoint's
      snapshot write: the stored image keeps a prefix of the new bytes
      and the tail of the previous checkpoint's image (or zeros), under
      the checksum recorded for the complete new image.
    * ``bit_flip_at_ms`` / ``bit_flip_target`` — at the given time flip
      one seeded-random bit in one page image: in the latest durable
      snapshot (``"durable"``) or in a live in-memory page (``"live"``).
    * ``torn_log_tail`` — when a crash trigger fires, append the log
      write that was in flight as a torn fragment (cut or bit-flipped)
      to the surviving log stream.

    Distributed faults (meaningful only when the plan is armed on a
    :class:`repro.dist.DistCluster` via
    :func:`repro.dist.chaos.arm_fault_plan`; ignored by the single-node
    injector):

    * ``kill_node`` — ``(node_id, at_ms, down_ms)``: fail-stop one
      cluster node at the given simulated time and restart it from its
      crash image ``down_ms`` later.
    * ``partition_link`` — ``(a, b, cut_ms, heal_ms)``: sever the
      bidirectional link between nodes ``a`` and ``b`` for the window.
    * ``message_drop_rate`` / ``message_drop_window_ms`` — interconnect
      message loss: per-message drop probability from the link's seeded
      RNG, active during the window.

    ``seed`` feeds every probabilistic draw; crash/kill triggers are not
    probabilistic at all.
    """

    seed: int = 0
    crash_at_ms: Optional[float] = None
    crash_at_lsn: Optional[int] = None
    crash_at_page_write: Optional[int] = None
    kill_process_at_ms: Optional[float] = None
    kill_process_match: str = "reorg"
    io_error_rate: float = 0.0
    io_error_window_ms: Tuple[float, float] = ALWAYS
    lock_storm_rate: float = 0.0
    lock_storm_window_ms: Tuple[float, float] = ALWAYS
    torn_page_write: Optional[int] = None
    bit_flip_at_ms: Optional[float] = None
    bit_flip_target: str = "durable"
    torn_log_tail: bool = False
    kill_node: Optional[Tuple[int, float, float]] = None
    partition_link: Optional[Tuple[int, int, float, float]] = None
    message_drop_rate: float = 0.0
    message_drop_window_ms: Tuple[float, float] = ALWAYS

    def __post_init__(self) -> None:
        if not 0.0 <= self.io_error_rate <= 1.0:
            raise ValueError(f"io_error_rate={self.io_error_rate} not in [0, 1]")
        if not 0.0 <= self.lock_storm_rate <= 1.0:
            raise ValueError(
                f"lock_storm_rate={self.lock_storm_rate} not in [0, 1]")
        for name in ("crash_at_ms", "kill_process_at_ms", "bit_flip_at_ms"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name}={value} is negative")
        for name in ("crash_at_lsn", "crash_at_page_write",
                     "torn_page_write"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name}={value} must be >= 1")
        if self.bit_flip_target not in ("durable", "live"):
            raise ValueError(
                f"bit_flip_target={self.bit_flip_target!r} must be "
                f"'durable' or 'live'")
        if not 0.0 <= self.message_drop_rate <= 1.0:
            raise ValueError(
                f"message_drop_rate={self.message_drop_rate} not in [0, 1]")
        if self.kill_node is not None:
            node_id, at_ms, down_ms = self.kill_node
            if node_id < 0 or at_ms < 0 or down_ms <= 0:
                raise ValueError(f"kill_node={self.kill_node} malformed")
        if self.partition_link is not None:
            a, b, cut_ms, heal_ms = self.partition_link
            if a == b:
                raise ValueError("partition_link endpoints must differ")
            if cut_ms < 0 or heal_ms <= cut_ms:
                raise ValueError(
                    f"partition_link window ({cut_ms}, {heal_ms}) malformed")

    @property
    def wants_crash(self) -> bool:
        return (self.crash_at_ms is not None
                or self.crash_at_lsn is not None
                or self.crash_at_page_write is not None)

    @property
    def wants_dist(self) -> bool:
        return (self.kill_node is not None
                or self.partition_link is not None
                or self.message_drop_rate > 0.0)

    @property
    def wants_corruption(self) -> bool:
        return (self.torn_page_write is not None
                or self.bit_flip_at_ms is not None
                or self.torn_log_tail)

    def copy(self, **overrides) -> "FaultPlan":
        return replace(self, **overrides)

    # -- convenience constructors (the common chaos shapes) ------------------

    @classmethod
    def crash_at(cls, ms: float, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, crash_at_ms=ms)

    @classmethod
    def crash_at_write(cls, n: int, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, crash_at_page_write=n)

    @classmethod
    def kill_reorg_at(cls, ms: float, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, kill_process_at_ms=ms)

    @classmethod
    def crash_with_torn_tail(cls, ms: float, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, crash_at_ms=ms, torn_log_tail=True)

    @classmethod
    def bit_flip_then_crash(cls, flip_ms: float, crash_ms: float,
                            target: str = "durable",
                            seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, bit_flip_at_ms=flip_ms, crash_at_ms=crash_ms,
                   bit_flip_target=target)

    @classmethod
    def tear_checkpoint(cls, nth: int, crash_ms: float,
                        seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, torn_page_write=nth, crash_at_ms=crash_ms)

    @classmethod
    def kill_node_at(cls, node_id: int, ms: float, down_ms: float = 140.0,
                     seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, kill_node=(node_id, ms, down_ms))

    @classmethod
    def cut_link(cls, a: int, b: int, ms: float, heal_ms: float,
                 seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, partition_link=(a, b, ms, heal_ms))
