"""Deterministic fault injection and chaos testing.

* :class:`FaultPlan` — declarative, seed-driven description of the
  faults one run will suffer (crashes, targeted kills, transient I/O
  errors, lock-timeout storms).
* :class:`FaultInjector` — threads a plan through a storage engine's
  fault hooks.
* :mod:`repro.faults.chaos` — the crash-point sweep harness asserting
  integrity, graph isomorphism and no-re-migration after every
  crash/recover/resume cycle, plus the silent-corruption dimension
  (:func:`~repro.faults.chaos.corruption_sweep`): torn checkpoint page
  writes, durable bit flips and torn log tails, with zero-silent-
  corruption accounting.
"""

from .chaos import (
    CORRUPTION_KINDS,
    ChaosPointResult,
    ChaosReport,
    chaos_sweep,
    corruption_sweep,
    count_remigrations,
    graph_signature,
    probe_run_window,
    run_chaos_point,
)
from .injector import FaultInjector, InjectorStats
from .plan import ALWAYS, FaultPlan

__all__ = [
    "ALWAYS",
    "CORRUPTION_KINDS",
    "ChaosPointResult",
    "ChaosReport",
    "FaultInjector",
    "FaultPlan",
    "InjectorStats",
    "chaos_sweep",
    "corruption_sweep",
    "count_remigrations",
    "graph_signature",
    "probe_run_window",
    "run_chaos_point",
]
