"""Chaos harness: sweep crash points across a reorganization run.

Every point of a sweep is one full fault/recovery cycle:

1. build a fresh workload database (deterministic for the sweep's seed),
   start an on-line reorganization with WAL-carried progress checkpoints
   (:class:`~repro.core.WalReorgStateStore`) plus MPL workload threads;
2. crash at the point's simulated time via a :class:`FaultPlan`;
3. restart-recover, assert ``verify_integrity().ok``;
4. resume the reorganization from its WAL progress records and finish it;
5. assert integrity again, that the object graph after the resumed run is
   isomorphic to the graph right after recovery (reorganization moves
   objects, it never changes what references what), that no object was
   lost or duplicated, and — by inspecting the WAL — that the resumed run
   did not re-migrate objects the pre-crash run had already moved.

The isomorphism check compares *recovered-before-resume* against
*after-resume*: the pre-crash graph is not a valid reference because
concurrent user transactions commit payload pokes and glue-edge re-points
right up to the crash, and in-flight ones are undone by recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..config import ExperimentConfig, ReorgConfig, WorkloadConfig
from ..core import CompactionPlan, WalReorgStateStore, resume_reorganization
from ..core.ira_twolock import reconciled_copy_image
from ..database import Database
from ..storage.oid import Oid
from ..wal.records import BeginRecord, CommitRecord, ObjDeleteRecord
from ..workload import WorkloadDriver
from ..workload.metrics import ExperimentMetrics
from .injector import FaultInjector
from .plan import FaultPlan

#: Default sweep scale: small enough that a 50-point sweep stays cheap,
#: big enough that crashes land in every reorg phase.
DEFAULT_WORKLOAD = WorkloadConfig(num_partitions=2,
                                  objects_per_partition=340,
                                  mpl=4, seed=13)
DEFAULT_REORG = ReorgConfig(checkpoint_every=20)
REORG_PARTITION = 1


def graph_signature(engine,
                    collapse: Optional[Tuple[Oid, Oid]] = None) -> Tuple:
    """Address-free canonical form of the object graph.

    Each object contributes ``(payload, sorted child payloads)``; the
    multiset of contributions is invariant under relocation (the load
    generator gives every object a distinct payload, so this determines
    the graph up to isomorphism).

    ``collapse`` names the ``(old, new)`` pair of a two-lock migration
    interrupted between the copy's commit and the old location's delete:
    the object is durably in both places (§4.2's mixed state) and the
    resume collapses the pair back to one.  The signature then counts
    the object once — with the merged image the resumed run will install
    (:func:`~repro.core.ira_twolock.reconciled_copy_image`, the old
    location's committed state plus any updates that reached the copy
    directly) — and resolves references to either address to it.
    """
    store = engine.store
    payload = {oid: store.read_object(oid).payload
               for oid in store.all_live_oids()}
    skip = survivor = merged_children = None
    if collapse is not None:
        old, new = collapse
        merged = reconciled_copy_image(engine, old.partition, old, new)
        skip, survivor = new, old
        payload[old] = payload[new] = merged.payload
        merged_children = merged.children()
    entries = []
    for oid, body in payload.items():
        if oid == skip:
            continue
        kids = merged_children if oid == survivor else store.children_of(oid)
        children = sorted(payload.get(c, b"<dangling>") for c in kids)
        entries.append((body, tuple(children)))
    return tuple(sorted(entries))


def count_remigrations(engine, partition_id: int, from_lsn: int,
                       already_migrated_new: Set[Oid]) -> int:
    """How many already-migrated objects the post-``from_lsn`` log shows
    being migrated *again*.

    A re-migration deletes the object's post-migration address inside a
    committed reorganizer-owned transaction, so it is visible as an
    OBJ_DELETE on an address in ``already_migrated_new`` (the new
    addresses the pre-crash run had produced).  A correct resume leaves
    those addresses alone and only migrates the still-pending objects.
    """
    owned: Set[int] = set()
    committed: Set[int] = set()
    for record in engine.log.records():
        if isinstance(record, BeginRecord) and record.is_system and \
                record.owner_partition == partition_id:
            owned.add(record.tid)
        elif record.lsn > from_lsn and isinstance(record, CommitRecord):
            committed.add(record.tid)
    count = 0
    for record in engine.log.records(from_lsn=from_lsn + 1):
        if isinstance(record, ObjDeleteRecord) and \
                record.tid in owned and record.tid in committed and \
                record.oid in already_migrated_new:
            count += 1
    return count


@dataclass
class ChaosPointResult:
    """Outcome of one crash/recover/resume cycle."""

    crash_at_ms: float
    crashed: bool = False
    recovered: bool = False
    integrity_after_recovery: bool = False
    integrity_after_resume: bool = False
    isomorphic: bool = False
    objects_conserved: bool = False
    #: A WAL progress record was found and the run continued from it.
    resumed: bool = False
    #: The reorganization had already finished when the crash hit
    #: (tombstone found) — nothing to resume.
    completed_before_crash: bool = False
    migrated_before_crash: int = 0
    migrated_by_resume: int = 0
    remigrations: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL " + "; ".join(self.problems)
        mode = ("resumed" if self.resumed
                else "done-pre-crash" if self.completed_before_crash
                else "fresh-restart")
        return (f"crash@{self.crash_at_ms:9.1f}ms {mode:>14} "
                f"pre={self.migrated_before_crash:3d} "
                f"post={self.migrated_by_resume:3d} "
                f"remigr={self.remigrations} {status}")


@dataclass
class ChaosReport:
    """A full sweep's outcome."""

    algorithm: str
    seed: int
    points: List[ChaosPointResult] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return all(point.ok for point in self.points)

    @property
    def failures(self) -> List[ChaosPointResult]:
        return [point for point in self.points if not point.ok]

    @property
    def resume_demonstrated(self) -> bool:
        """At least one point continued real pre-crash progress without
        re-migrating anything (the §4.4 payoff)."""
        return any(p.resumed and p.migrated_before_crash > 0
                   and p.remigrations == 0 and p.ok for p in self.points)

    def summary(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "points": len(self.points),
            "failures": len(self.failures),
            "resumed_points": sum(1 for p in self.points if p.resumed),
            "resume_demonstrated": self.resume_demonstrated,
            "all_ok": self.all_ok,
        }


def _launch(algorithm: str, workload: WorkloadConfig,
            reorg_config: ReorgConfig,
            fault_plan: Optional[FaultPlan]):
    """Fresh database + reorganizer + MPL threads (+ optional injector)."""
    db, layout = Database.with_workload(workload)
    engine = db.engine
    store = WalReorgStateStore(engine, REORG_PARTITION)
    reorg = db.reorganizer(REORG_PARTITION, algorithm,
                           plan=CompactionPlan(),
                           reorg_config=reorg_config, state_store=store)
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan, engine).attach()
    driver = WorkloadDriver(engine, layout, ExperimentConfig(workload=workload))
    metrics = ExperimentMetrics(algorithm, workload.mpl)
    reorg_proc = db.sim.spawn(reorg.run(), name="reorganizer")
    for i in range(workload.mpl):
        db.sim.spawn(driver._thread_process(i, metrics), name=f"thread-{i}")
    return db, reorg, reorg_proc, injector


def probe_run_window(algorithm: str = "ira",
                     workload: Optional[WorkloadConfig] = None,
                     reorg_config: Optional[ReorgConfig] = None
                     ) -> Tuple[float, float]:
    """Fault-free probe: the (start, end) simulated time of the reorg run.

    Determinism makes this exact: a sweep's fault-free prefix replays the
    probe's timeline, so any crash point strictly inside the window lands
    mid-reorganization."""
    workload = workload or DEFAULT_WORKLOAD
    reorg_config = reorg_config or DEFAULT_REORG
    db, reorg, reorg_proc, _ = _launch(algorithm, workload, reorg_config,
                                       fault_plan=None)
    db.sim.run(until=reorg.stats.started_ms + 10 * 60 * 1000.0)
    if not reorg_proc.done.fired:
        raise RuntimeError("probe run did not finish within 10 simulated "
                           "minutes; shrink the workload")
    stats = reorg_proc.result
    db.sim.kill_all()
    return stats.started_ms, stats.finished_ms


def run_chaos_point(crash_at_ms: float, algorithm: str = "ira",
                    workload: Optional[WorkloadConfig] = None,
                    reorg_config: Optional[ReorgConfig] = None,
                    seed: int = 0) -> ChaosPointResult:
    """One crash/recover/resume cycle; see the module docstring."""
    workload = workload or DEFAULT_WORKLOAD
    reorg_config = reorg_config or DEFAULT_REORG
    result = ChaosPointResult(crash_at_ms=crash_at_ms)

    plan = FaultPlan.crash_at(crash_at_ms, seed=seed)
    db, reorg, reorg_proc, injector = _launch(
        algorithm, workload, reorg_config, plan)
    db.sim.run(until=crash_at_ms + 1.0)
    if not injector.crashed:
        result.problems.append("crash trigger never fired")
        return result
    result.crashed = True
    result.migrated_before_crash = reorg.stats.objects_migrated

    recovered = Database.recover(injector.crash_image)
    engine = recovered.engine
    result.recovered = True
    report = engine.verify_integrity()
    result.integrity_after_recovery = report.ok
    if not report.ok:
        result.problems.append(
            f"integrity after recovery: {report.problems()[:3]}")
        return result

    store = WalReorgStateStore(engine, REORG_PARTITION)
    result.completed_before_crash = store.completed()
    # A two-lock migration caught between copy-commit and old-delete has
    # the object durably in both places; the resume will collapse the
    # pair, so the reference state must count that object once.
    mixed_pair: Optional[Tuple[Oid, Oid]] = None
    state = store.load()
    if state is not None and state.in_progress is not None:
        old, new = state.in_progress
        if engine.store.exists(old) and engine.store.exists(new):
            mixed_pair = (old, new)
    reference_signature = graph_signature(engine, collapse=mixed_pair)
    reference_counts = {pid: engine.store.stats(pid).live_objects
                        for pid in engine.store.partition_ids()}
    if mixed_pair is not None:
        reference_counts[mixed_pair[1].partition] -= 1
    resume_lsn = engine.log.last_lsn
    resumed = resume_reorganization(engine, store, plan=CompactionPlan(),
                                    reorg_config=reorg_config)
    premigrated_new: Set[Oid] = set()
    if resumed is not None:
        result.resumed = True
        # The roll-forward has already folded post-checkpoint committed
        # migrations in, so this is the true pre-crash progress.
        result.migrated_before_crash = len(resumed._migrated)
        premigrated_new = {resumed._mapping[old]
                           for old in resumed._migrated
                           if old in resumed._mapping}
        stats = recovered.run(resumed.run(), name="resumed-reorg")
        result.migrated_by_resume = stats.objects_migrated
    elif not result.completed_before_crash:
        # Crash before the first checkpoint became durable: §4.4 says
        # start afresh.
        stats = recovered.reorganize(REORG_PARTITION, algorithm=algorithm,
                                     plan=CompactionPlan(),
                                     reorg_config=reorg_config)
        result.migrated_before_crash = 0
        result.migrated_by_resume = stats.objects_migrated

    report = engine.verify_integrity()
    result.integrity_after_resume = report.ok
    if not report.ok:
        result.problems.append(
            f"integrity after resume: {report.problems()[:3]}")
    result.isomorphic = graph_signature(engine) == reference_signature
    if not result.isomorphic:
        result.problems.append("graph changed across resume")
    counts = {pid: engine.store.stats(pid).live_objects
              for pid in engine.store.partition_ids()}
    result.objects_conserved = counts == reference_counts
    if not result.objects_conserved:
        result.problems.append(
            f"object counts changed: {reference_counts} -> {counts}")
    if result.resumed:
        result.remigrations = count_remigrations(
            engine, REORG_PARTITION, resume_lsn, premigrated_new)
        if result.remigrations:
            result.problems.append(
                f"{result.remigrations} objects re-migrated after resume")
    return result


def chaos_sweep(points: int = 50, algorithm: str = "ira",
                workload: Optional[WorkloadConfig] = None,
                reorg_config: Optional[ReorgConfig] = None,
                seed: int = 0,
                progress=None) -> ChaosReport:
    """Crash at ``points`` distinct times spread across the reorg window.

    ``progress`` (optional callable, e.g. ``print``) receives each
    point's one-line description as it completes.
    """
    if points < 1:
        raise ValueError("need at least one crash point")
    workload = workload or DEFAULT_WORKLOAD
    reorg_config = reorg_config or DEFAULT_REORG
    start, end = probe_run_window(algorithm, workload, reorg_config)
    report = ChaosReport(algorithm=algorithm, seed=seed)
    span = end - start
    for index in range(points):
        crash_at = start + span * (index + 1) / (points + 1)
        result = run_chaos_point(crash_at, algorithm=algorithm,
                                 workload=workload,
                                 reorg_config=reorg_config, seed=seed)
        report.points.append(result)
        if progress is not None:
            progress(result.describe())
    return report
