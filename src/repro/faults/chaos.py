"""Chaos harness: sweep crash points across a reorganization run.

Every point of a sweep is one full fault/recovery cycle:

1. build a fresh workload database (deterministic for the sweep's seed),
   start an on-line reorganization with WAL-carried progress checkpoints
   (:class:`~repro.core.WalReorgStateStore`) plus MPL workload threads;
2. crash at the point's simulated time via a :class:`FaultPlan`;
3. restart-recover, assert ``verify_integrity().ok``;
4. resume the reorganization from its WAL progress records and finish it;
5. assert integrity again, that the object graph after the resumed run is
   isomorphic to the graph right after recovery (reorganization moves
   objects, it never changes what references what), that no object was
   lost or duplicated, and — by inspecting the WAL — that the resumed run
   did not re-migrate objects the pre-crash run had already moved.

The isomorphism check compares *recovered-before-resume* against
*after-resume*: the pre-crash graph is not a valid reference because
concurrent user transactions commit payload pokes and glue-edge re-points
right up to the crash, and in-flight ones are undone by recovery.

The sweep also has a **silent-corruption dimension**
(:func:`corruption_sweep`): each point additionally injects one silent
corruption — a torn checkpoint page write, a flipped bit in the latest
durable snapshot, or a torn log tail — under a mid-run checkpointer, and
the accounting demands that *every* injected corruption is either
detected-and-repaired (then the healed state must equal a
corruption-free twin run's recovery, byte-for-graph) or refused loudly
with a typed :class:`~repro.storage.errors.CorruptionError`.  Nothing in
between: a point where injected corruption goes unnoticed is a
``silent_corruption`` failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..config import ExperimentConfig, ReorgConfig, WorkloadConfig
from ..core import CompactionPlan, WalReorgStateStore, resume_reorganization
from ..core.ira_twolock import reconciled_copy_image
from ..database import Database
from ..sim import Delay
from ..storage.errors import CorruptionError
from ..storage.oid import Oid
from ..verify import corrupt_snapshot_pages, deep_verify
from ..wal.records import BeginRecord, CommitRecord, ObjDeleteRecord
from ..workload import WorkloadDriver
from ..workload.metrics import ExperimentMetrics
from .injector import FaultInjector
from .plan import FaultPlan

#: Default sweep scale: small enough that a 50-point sweep stays cheap,
#: big enough that crashes land in every reorg phase.
DEFAULT_WORKLOAD = WorkloadConfig(num_partitions=2,
                                  objects_per_partition=340,
                                  mpl=4, seed=13)
DEFAULT_REORG = ReorgConfig(checkpoint_every=20)
REORG_PARTITION = 1

#: Corruption kinds :func:`corruption_sweep` cycles across its points.
#: (Live-memory bit flips are exercised by dedicated scrubber tests, not
#: the sweep: flipping a live object's bytes perturbs the concurrent
#: workload itself, which would invalidate the twin-run comparison.)
CORRUPTION_KINDS = ("torn_page", "bit_flip", "torn_log_tail")

#: Mid-run checkpoint cadence as a fraction of launch-to-crash time:
#: 0.26 puts exactly three checkpoints before the crash (at 26%, 52% and
#: 78% of the gap), so tearing the third corrupts the checkpoint
#: recovery restores from, with the second as the repair base.
_CKPT_FRACTION = 0.26


def _corruption_plan(kind: str, crash_at_ms: float, gap_ms: float,
                     seed: int) -> FaultPlan:
    """The fault plan for one corruption-sweep point.

    ``gap_ms`` is launch-to-crash simulated time; the bit flip lands at
    98% of it — after the last mid-run checkpoint, so it hits the very
    snapshot recovery will restore from.
    """
    if kind == "torn_page":
        return FaultPlan.tear_checkpoint(3, crash_at_ms, seed=seed)
    if kind == "bit_flip":
        return FaultPlan.bit_flip_then_crash(
            crash_at_ms - 0.02 * gap_ms, crash_at_ms, seed=seed)
    if kind == "torn_log_tail":
        return FaultPlan.crash_with_torn_tail(crash_at_ms, seed=seed)
    raise ValueError(
        f"unknown corruption kind {kind!r}; choose from {CORRUPTION_KINDS}")


def _corruption_checkpoint_interval(kind: str,
                                    gap_ms: float) -> Optional[float]:
    """Mid-run checkpointer cadence a corruption kind needs (page-image
    corruption needs checkpoints to corrupt and older ones to repair
    from; a torn log tail needs none)."""
    if kind in ("torn_page", "bit_flip"):
        return gap_ms * _CKPT_FRACTION
    return None


def graph_signature(engine,
                    collapse: Optional[Tuple[Oid, Oid]] = None) -> Tuple:
    """Address-free canonical form of the object graph.

    Each object contributes ``(payload, sorted child payloads)``; the
    multiset of contributions is invariant under relocation (the load
    generator gives every object a distinct payload, so this determines
    the graph up to isomorphism).

    ``collapse`` names the ``(old, new)`` pair of a two-lock migration
    interrupted between the copy's commit and the old location's delete:
    the object is durably in both places (§4.2's mixed state) and the
    resume collapses the pair back to one.  The signature then counts
    the object once — with the merged image the resumed run will install
    (:func:`~repro.core.ira_twolock.reconciled_copy_image`, the old
    location's committed state plus any updates that reached the copy
    directly) — and resolves references to either address to it.
    """
    store = engine.store
    payload = {oid: store.read_object(oid).payload
               for oid in store.all_live_oids()}
    skip = survivor = merged_children = None
    if collapse is not None:
        old, new = collapse
        merged = reconciled_copy_image(engine, old.partition, old, new)
        skip, survivor = new, old
        payload[old] = payload[new] = merged.payload
        merged_children = merged.children()
    entries = []
    for oid, body in payload.items():
        if oid == skip:
            continue
        kids = merged_children if oid == survivor else store.children_of(oid)
        children = sorted(payload.get(c, b"<dangling>") for c in kids)
        entries.append((body, tuple(children)))
    return tuple(sorted(entries))


def count_remigrations(engine, partition_id: int, from_lsn: int,
                       already_migrated_new: Set[Oid]) -> int:
    """How many already-migrated objects the post-``from_lsn`` log shows
    being migrated *again*.

    A re-migration deletes the object's post-migration address inside a
    committed reorganizer-owned transaction, so it is visible as an
    OBJ_DELETE on an address in ``already_migrated_new`` (the new
    addresses the pre-crash run had produced).  A correct resume leaves
    those addresses alone and only migrates the still-pending objects.
    """
    owned: Set[int] = set()
    committed: Set[int] = set()
    for record in engine.log.records():
        if isinstance(record, BeginRecord) and record.is_system and \
                record.owner_partition == partition_id:
            owned.add(record.tid)
        elif record.lsn > from_lsn and isinstance(record, CommitRecord):
            committed.add(record.tid)
    count = 0
    for record in engine.log.records(from_lsn=from_lsn + 1):
        if isinstance(record, ObjDeleteRecord) and \
                record.tid in owned and record.tid in committed and \
                record.oid in already_migrated_new:
            count += 1
    return count


@dataclass
class ChaosPointResult:
    """Outcome of one crash/recover/resume cycle."""

    crash_at_ms: float
    crashed: bool = False
    recovered: bool = False
    integrity_after_recovery: bool = False
    integrity_after_resume: bool = False
    isomorphic: bool = False
    objects_conserved: bool = False
    #: A WAL progress record was found and the run continued from it.
    resumed: bool = False
    #: The reorganization had already finished when the crash hit
    #: (tombstone found) — nothing to resume.
    completed_before_crash: bool = False
    migrated_before_crash: int = 0
    migrated_by_resume: int = 0
    remigrations: int = 0
    #: Corruption dimension (set only by corruption points).
    corruption: Optional[str] = None
    corruptions_injected: int = 0
    #: Detection or repair accounted for every injected corruption.
    corruption_detected: bool = False
    pages_repaired: int = 0
    pages_rebuilt: int = 0
    log_tail_truncated: bool = False
    #: Recovery refused loudly with a typed :class:`CorruptionError`
    #: instead of healing — acceptable, never silent.
    loud_failure: Optional[str] = None
    #: The healed recovery state matched the corruption-free twin run's.
    healed_matches_clean: bool = False
    #: Recovered-state graph signature (twin comparison handle).
    recovered_signature: Optional[Tuple] = field(default=None, repr=False)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def silent_corruption(self) -> bool:
        """Injected corruption that neither detection/repair nor a loud
        typed failure accounted for — the outcome the checksums exist to
        rule out."""
        return (self.corruptions_injected > 0 and self.loud_failure is None
                and not self.corruption_detected)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL " + "; ".join(self.problems)
        mode = ("resumed" if self.resumed
                else "done-pre-crash" if self.completed_before_crash
                else "fresh-restart")
        corrupt = ""
        if self.corruption is not None:
            outcome = ("LOUD" if self.loud_failure
                       else "healed" if self.corruption_detected
                       else "SILENT" if self.silent_corruption
                       else "none")
            corrupt = f" {self.corruption}:{outcome}"
        return (f"crash@{self.crash_at_ms:9.1f}ms {mode:>14} "
                f"pre={self.migrated_before_crash:3d} "
                f"post={self.migrated_by_resume:3d} "
                f"remigr={self.remigrations}{corrupt} {status}")


@dataclass
class ChaosReport:
    """A full sweep's outcome."""

    algorithm: str
    seed: int
    points: List[ChaosPointResult] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return all(point.ok for point in self.points)

    @property
    def failures(self) -> List[ChaosPointResult]:
        return [point for point in self.points if not point.ok]

    @property
    def resume_demonstrated(self) -> bool:
        """At least one point continued real pre-crash progress without
        re-migrating anything (the §4.4 payoff)."""
        return any(p.resumed and p.migrated_before_crash > 0
                   and p.remigrations == 0 and p.ok for p in self.points)

    @property
    def corruption_points(self) -> List[ChaosPointResult]:
        return [p for p in self.points if p.corruption is not None]

    @property
    def silent_corruptions(self) -> List[ChaosPointResult]:
        return [p for p in self.corruption_points if p.silent_corruption]

    @property
    def no_silent_corruption(self) -> bool:
        """Every injected corruption was repaired-and-verified or failed
        loudly with a typed error — the sweep's hard gate."""
        points = self.corruption_points
        return bool(points) and all(
            p.ok and not p.silent_corruption for p in points)

    def summary(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "points": len(self.points),
            "failures": len(self.failures),
            "resumed_points": sum(1 for p in self.points if p.resumed),
            "resume_demonstrated": self.resume_demonstrated,
            "all_ok": self.all_ok,
        }
        corruption = self.corruption_points
        if corruption:
            data.update({
                "corruption_points": len(corruption),
                "corruptions_injected": sum(p.corruptions_injected
                                            for p in corruption),
                "pages_repaired": sum(p.pages_repaired for p in corruption),
                "pages_rebuilt": sum(p.pages_rebuilt for p in corruption),
                "log_tails_truncated": sum(1 for p in corruption
                                           if p.log_tail_truncated),
                "loud_failures": sum(1 for p in corruption
                                     if p.loud_failure),
                "silent_corruptions": len(self.silent_corruptions),
                "no_silent_corruption": self.no_silent_corruption,
            })
        return data


def _launch(algorithm: str, workload: WorkloadConfig,
            reorg_config: ReorgConfig,
            fault_plan: Optional[FaultPlan],
            corruption: Optional[str] = None,
            corruption_timing: Optional[str] = None,
            crash_at_ms: Optional[float] = None,
            seed: int = 0):
    """Fresh database + reorganizer + MPL threads (+ optional injector).

    ``corruption`` finalizes a gap-relative corruption plan (the sim
    clock is already past the bulk load here, so "98% of the way to the
    crash" can only be computed now).  ``corruption_timing`` spawns the
    mid-run checkpointer a corruption kind's timeline needs *without*
    injecting anything — the corruption-free twin run passes the kind
    here so both runs replay the identical timeline.
    """
    db, layout = Database.with_workload(workload)
    engine = db.engine
    plan = fault_plan
    if corruption is not None:
        plan = _corruption_plan(corruption, crash_at_ms,
                                crash_at_ms - db.sim.now, seed)
    timing = corruption_timing or corruption
    if timing is not None:
        interval = _corruption_checkpoint_interval(
            timing, crash_at_ms - db.sim.now)
        if interval:
            def checkpointer():
                while True:
                    yield Delay(interval)
                    engine.take_checkpoint()
            db.sim.spawn(checkpointer(), name="checkpointer")
    store = WalReorgStateStore(engine, REORG_PARTITION)
    reorg = db.reorganizer(REORG_PARTITION, algorithm,
                           plan=CompactionPlan(),
                           reorg_config=reorg_config, state_store=store)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, engine).attach()
    driver = WorkloadDriver(engine, layout, ExperimentConfig(workload=workload))
    metrics = ExperimentMetrics(algorithm, workload.mpl)
    reorg_proc = db.sim.spawn(reorg.run(), name="reorganizer")
    for i in range(workload.mpl):
        db.sim.spawn(driver._thread_process(i, metrics), name=f"thread-{i}")
    return db, reorg, reorg_proc, injector


def probe_run_window(algorithm: str = "ira",
                     workload: Optional[WorkloadConfig] = None,
                     reorg_config: Optional[ReorgConfig] = None
                     ) -> Tuple[float, float]:
    """Fault-free probe: the (start, end) simulated time of the reorg run.

    Determinism makes this exact: a sweep's fault-free prefix replays the
    probe's timeline, so any crash point strictly inside the window lands
    mid-reorganization."""
    workload = workload or DEFAULT_WORKLOAD
    reorg_config = reorg_config or DEFAULT_REORG
    db, reorg, reorg_proc, _ = _launch(algorithm, workload, reorg_config,
                                       fault_plan=None)
    db.sim.run(until=reorg.stats.started_ms + 10 * 60 * 1000.0)
    if not reorg_proc.done.fired:
        raise RuntimeError("probe run did not finish within 10 simulated "
                           "minutes; shrink the workload")
    stats = reorg_proc.result
    db.sim.kill_all()
    return stats.started_ms, stats.finished_ms


def run_chaos_point(crash_at_ms: float, algorithm: str = "ira",
                    workload: Optional[WorkloadConfig] = None,
                    reorg_config: Optional[ReorgConfig] = None,
                    seed: int = 0,
                    corruption: Optional[str] = None,
                    _twin_timing: Optional[str] = None,
                    _recovery_only: bool = False) -> ChaosPointResult:
    """One crash/recover/resume cycle; see the module docstring.

    With ``corruption`` set, the point additionally injects that silent
    corruption kind, accounts for its detection and repair, and checks
    the healed recovery against a corruption-free twin of the same
    timeline.  (``_twin_timing``/``_recovery_only`` are the twin-run
    plumbing: replay a kind's checkpointer cadence without injecting,
    and stop once the recovered state's signature is known.)
    """
    workload = workload or DEFAULT_WORKLOAD
    reorg_config = reorg_config or DEFAULT_REORG
    result = ChaosPointResult(crash_at_ms=crash_at_ms, corruption=corruption)

    plan = (None if corruption is not None
            else FaultPlan.crash_at(crash_at_ms, seed=seed))
    db, reorg, reorg_proc, injector = _launch(
        algorithm, workload, reorg_config, plan,
        corruption=corruption, corruption_timing=_twin_timing,
        crash_at_ms=crash_at_ms, seed=seed)
    db.sim.run(until=crash_at_ms + 1.0)
    if not injector.crashed:
        result.problems.append("crash trigger never fired")
        return result
    result.crashed = True
    result.migrated_before_crash = reorg.stats.objects_migrated
    result.corruptions_injected = injector.stats.corruptions_injected
    injected_pages = {(pid, page_no)
                      for _kind, pid, page_no in injector.stats.corruptions
                      if page_no >= 0}
    injected_tail = any(kind == "torn_log_tail"
                        for kind, _, _ in injector.stats.corruptions)
    if corruption is not None and result.corruptions_injected == 0:
        result.problems.append(
            f"corruption point injected nothing ({corruption})")

    try:
        recovered = Database.recover(injector.crash_image)
    except CorruptionError as exc:
        result.loud_failure = f"{type(exc).__name__}: {exc}"
        if result.corruptions_injected == 0:
            # A loud refusal is only acceptable as the answer to an
            # injected corruption; on a clean image it is a plain bug.
            result.problems.append(
                f"recovery failed loudly without injected corruption: "
                f"{result.loud_failure}")
        return result
    engine = recovered.engine
    result.recovered = True

    stats = engine.recovery_stats
    result.pages_repaired = stats.pages_repaired
    result.pages_rebuilt = stats.pages_rebuilt_from_empty
    result.log_tail_truncated = stats.log_tail_truncated
    repaired = set(stats.repaired_pages)
    leftover = {(pid, page_no)
                for _sid, pid, page_no in corrupt_snapshot_pages(engine)}
    if corruption is None:
        # A corruption-free run must neither detect nor repair anything:
        # any hit here is corruption leaking in from a bug, not a fault.
        if stats.pages_corrupt or stats.log_tail_truncated or leftover:
            result.problems.append(
                f"corruption detected in a corruption-free run: "
                f"repaired={sorted(repaired)} leftover={sorted(leftover)} "
                f"tail_truncated={stats.log_tail_truncated}")
    else:
        # Every injected corruption must be accounted for: repaired
        # during recovery, or still sitting detectably in a superseded
        # snapshot — and nothing beyond the injected set may be corrupt.
        unexpected = (leftover | repaired) - injected_pages
        if unexpected:
            result.problems.append(
                f"corrupt/repaired pages beyond the injected set: "
                f"{sorted(unexpected)}")
        undetected = injected_pages - (repaired | leftover)
        if undetected:
            result.problems.append(
                f"injected page corruption went undetected: "
                f"{sorted(undetected)}")
        if injected_tail and not stats.log_tail_truncated:
            result.problems.append("injected torn log tail not truncated")
        result.corruption_detected = (
            bool(injected_pages & (repaired | leftover))
            or (injected_tail and stats.log_tail_truncated))

    report = engine.verify_integrity()
    result.integrity_after_recovery = report.ok
    if not report.ok:
        result.problems.append(
            f"integrity after recovery: {report.problems()[:3]}")
        return result

    store = WalReorgStateStore(engine, REORG_PARTITION)
    result.completed_before_crash = store.completed()
    # A two-lock migration caught between copy-commit and old-delete has
    # the object durably in both places; the resume will collapse the
    # pair, so the reference state must count that object once.
    mixed_pair: Optional[Tuple[Oid, Oid]] = None
    state = store.load()
    if state is not None and state.in_progress is not None:
        old, new = state.in_progress
        if engine.store.exists(old) and engine.store.exists(new):
            mixed_pair = (old, new)
    reference_signature = graph_signature(engine, collapse=mixed_pair)
    result.recovered_signature = reference_signature
    if _recovery_only:
        return result
    if corruption is not None:
        # The healed state must be indistinguishable from a recovery
        # that never saw the corruption.  The twin replays the same
        # deterministic timeline (same crash, same checkpointer
        # cadence) with nothing injected.
        twin = run_chaos_point(crash_at_ms, algorithm=algorithm,
                               workload=workload,
                               reorg_config=reorg_config, seed=seed,
                               _twin_timing=corruption,
                               _recovery_only=True)
        result.healed_matches_clean = (
            twin.recovered_signature is not None
            and twin.recovered_signature == reference_signature)
        if not result.healed_matches_clean:
            result.problems.append(
                "healed state diverges from corruption-free twin recovery"
                + (f" (twin: {twin.problems})" if twin.problems else ""))
    reference_counts = {pid: engine.store.stats(pid).live_objects
                        for pid in engine.store.partition_ids()}
    if mixed_pair is not None:
        reference_counts[mixed_pair[1].partition] -= 1
    resume_lsn = engine.log.last_lsn
    resumed = resume_reorganization(engine, store, plan=CompactionPlan(),
                                    reorg_config=reorg_config)
    premigrated_new: Set[Oid] = set()
    if resumed is not None:
        result.resumed = True
        # The roll-forward has already folded post-checkpoint committed
        # migrations in, so this is the true pre-crash progress.
        result.migrated_before_crash = len(resumed._migrated)
        premigrated_new = {resumed._mapping[old]
                           for old in resumed._migrated
                           if old in resumed._mapping}
        stats = recovered.run(resumed.run(), name="resumed-reorg")
        result.migrated_by_resume = stats.objects_migrated
    elif not result.completed_before_crash:
        # Crash before the first checkpoint became durable: §4.4 says
        # start afresh.
        stats = recovered.reorganize(REORG_PARTITION, algorithm=algorithm,
                                     plan=CompactionPlan(),
                                     reorg_config=reorg_config)
        result.migrated_before_crash = 0
        result.migrated_by_resume = stats.objects_migrated

    report = engine.verify_integrity()
    result.integrity_after_resume = report.ok
    if not report.ok:
        result.problems.append(
            f"integrity after resume: {report.problems()[:3]}")
    result.isomorphic = graph_signature(engine) == reference_signature
    if not result.isomorphic:
        result.problems.append("graph changed across resume")
    counts = {pid: engine.store.stats(pid).live_objects
              for pid in engine.store.partition_ids()}
    result.objects_conserved = counts == reference_counts
    if not result.objects_conserved:
        result.problems.append(
            f"object counts changed: {reference_counts} -> {counts}")
    if result.resumed:
        result.remigrations = count_remigrations(
            engine, REORG_PARTITION, resume_lsn, premigrated_new)
        if result.remigrations:
            result.problems.append(
                f"{result.remigrations} objects re-migrated after resume")
    if corruption is not None:
        # Belt and braces: after the resumed reorganization finishes,
        # every surface must still verify (superseded snapshots may
        # retain the injected damage — that is detection evidence, and
        # already reconciled against the injected set above).
        vreport = deep_verify(engine)
        residual = (vreport.live_page_problems + vreport.log_problems
                    + vreport.logical_problems)
        if residual:
            result.problems.append(
                f"deep verify after resume: {residual[:3]}")
    return result


def chaos_sweep(points: int = 50, algorithm: str = "ira",
                workload: Optional[WorkloadConfig] = None,
                reorg_config: Optional[ReorgConfig] = None,
                seed: int = 0,
                progress=None) -> ChaosReport:
    """Crash at ``points`` distinct times spread across the reorg window.

    ``progress`` (optional callable, e.g. ``print``) receives each
    point's one-line description as it completes.
    """
    if points < 1:
        raise ValueError("need at least one crash point")
    workload = workload or DEFAULT_WORKLOAD
    reorg_config = reorg_config or DEFAULT_REORG
    start, end = probe_run_window(algorithm, workload, reorg_config)
    report = ChaosReport(algorithm=algorithm, seed=seed)
    span = end - start
    for index in range(points):
        crash_at = start + span * (index + 1) / (points + 1)
        result = run_chaos_point(crash_at, algorithm=algorithm,
                                 workload=workload,
                                 reorg_config=reorg_config, seed=seed)
        report.points.append(result)
        if progress is not None:
            progress(result.describe())
    return report


def corruption_sweep(points: int = 51, algorithm: str = "ira",
                     workload: Optional[WorkloadConfig] = None,
                     reorg_config: Optional[ReorgConfig] = None,
                     seed: int = 0,
                     kinds: Tuple[str, ...] = CORRUPTION_KINDS,
                     progress=None) -> ChaosReport:
    """The chaos sweep's corruption dimension.

    Every point runs the full crash/recover/resume cycle of
    :func:`run_chaos_point` with one silent corruption injected (kinds
    cycle across points), under a mid-run checkpointer where the kind
    needs one.  The per-point seed varies so the corrupted page/bit/cut
    differs from point to point.  ``report.no_silent_corruption`` is the
    gate: every injection detected-and-healed (healed state equal to a
    corruption-free twin's recovery) or refused with a typed error.
    """
    if points < 1:
        raise ValueError("need at least one crash point")
    if not kinds:
        raise ValueError("need at least one corruption kind")
    workload = workload or DEFAULT_WORKLOAD
    reorg_config = reorg_config or DEFAULT_REORG
    start, end = probe_run_window(algorithm, workload, reorg_config)
    report = ChaosReport(algorithm=algorithm, seed=seed)
    span = end - start
    for index in range(points):
        crash_at = start + span * (index + 1) / (points + 1)
        result = run_chaos_point(crash_at, algorithm=algorithm,
                                 workload=workload,
                                 reorg_config=reorg_config,
                                 seed=seed + index,
                                 corruption=kinds[index % len(kinds)])
        report.points.append(result)
        if progress is not None:
            progress(result.describe())
    return report
