"""The fault injector: threads a :class:`FaultPlan` through the engine.

One injector serves one :class:`~repro.engine.StorageEngine`.  ``attach``
wires the plan into the engine's fault hooks (buffer pool, log manager,
lock manager) and arms the crash/kill triggers; ``detach`` unwires
everything.  ``StorageEngine.crash`` detaches the attached injector
automatically, so a recovered engine always starts fault-free — chaos
harnesses re-attach explicitly if they want faults after recovery.

Crash triggers never fire synchronously: appending a log record happens
inside whatever process is executing, and throwing into the running
generator from its own frame is illegal.  Triggers therefore schedule the
actual crash via ``sim.call_soon``; the crash happens a scheduler step
later, at the same simulated instant.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Tuple

from ..storage.errors import TransientIOError
from ..wal.records import PHYSICAL_KINDS, LogRecord
from .plan import FaultPlan


class InjectorStats:
    """What the injector actually did to the run."""

    __slots__ = ("crashes_fired", "kills_fired", "processes_killed",
                 "io_faults_injected", "forced_lock_timeouts",
                 "page_writes_seen", "torn_page_writes", "bit_flips",
                 "torn_log_tails", "corruptions")

    def __init__(self) -> None:
        self.crashes_fired = 0
        self.kills_fired = 0
        self.processes_killed = 0
        self.io_faults_injected = 0
        self.forced_lock_timeouts = 0
        self.page_writes_seen = 0
        self.torn_page_writes = 0
        self.bit_flips = 0
        self.torn_log_tails = 0
        #: ``(kind, partition_id, page_no)`` per silent corruption
        #: actually injected (``page_no`` is -1 for log-tail tears) — the
        #: chaos accounting checks each one off against what detection
        #: and repair reported.
        self.corruptions = []

    @property
    def corruptions_injected(self) -> int:
        return len(self.corruptions)

    def __repr__(self) -> str:
        return (f"<InjectorStats crashes={self.crashes_fired} "
                f"kills={self.kills_fired} io={self.io_faults_injected} "
                f"lock_timeouts={self.forced_lock_timeouts} "
                f"corruptions={len(self.corruptions)}>")


class FaultInjector:
    """Injects the faults a :class:`FaultPlan` declares into one engine.

    After a crash trigger fires, :attr:`crashed` is True and
    :attr:`crash_image` holds the :class:`~repro.engine.CrashImage` to
    recover from (unless ``on_crash`` overrides the default behaviour).
    """

    def __init__(self, plan: FaultPlan, engine,
                 on_crash: Optional[Callable[[], None]] = None):
        self.plan = plan
        self.engine = engine
        #: Called instead of ``engine.crash()`` when a crash trigger
        #: fires; for harnesses that need to snapshot extra state first.
        self.on_crash = on_crash
        self.stats = InjectorStats()
        self.crashed = False
        self.crash_image = None
        self._attached = False
        self._crash_pending = False
        self._kill_fired = False
        # String seeds: deterministic regardless of PYTHONHASHSEED.
        self._rng_io = random.Random(f"faults/io/{plan.seed}")
        self._rng_locks = random.Random(f"faults/locks/{plan.seed}")
        self._rng_corrupt = random.Random(f"faults/corrupt/{plan.seed}")
        self._checkpoints_seen = 0
        self._prev_store_snapshot = None

    # -- wiring ---------------------------------------------------------------

    def attach(self) -> "FaultInjector":
        """Install the plan's hooks and arm its triggers."""
        if self._attached:
            return self
        engine, plan = self.engine, self.plan
        self._attached = True
        engine.injector = self
        if plan.crash_at_lsn is not None or \
                plan.crash_at_page_write is not None:
            engine.log.subscribe(self._on_log_record)
            self._subscribed = True
        else:
            self._subscribed = False
        if plan.io_error_rate > 0.0:
            engine.log.fault_hook = self._log_flush_fault
            if engine.buffer is not None:
                engine.buffer.fault_hook = self._page_io_fault
        if plan.lock_storm_rate > 0.0:
            engine.locks.fault_hook = self._lock_fault
        if plan.torn_page_write is not None:
            engine.checkpoint_hook = self._on_checkpoint
            latest = engine.snapshots.latest()
            if latest is not None:
                self._prev_store_snapshot = \
                    engine.snapshots.load(latest)["store"]
        if plan.bit_flip_at_ms is not None:
            engine.sim.call_later(
                max(0.0, plan.bit_flip_at_ms - engine.sim.now),
                self._fire_bit_flip)
        if plan.crash_at_ms is not None:
            engine.sim.call_later(
                max(0.0, plan.crash_at_ms - engine.sim.now),
                self._trigger_crash)
        if plan.kill_process_at_ms is not None:
            engine.sim.call_later(
                max(0.0, plan.kill_process_at_ms - engine.sim.now),
                self._fire_kill)
        return self

    def detach(self) -> None:
        """Unwire every hook (idempotent; called by ``engine.crash``)."""
        if not self._attached:
            return
        self._attached = False
        engine = self.engine
        if self._subscribed:
            engine.log.unsubscribe(self._on_log_record)
            self._subscribed = False
        # Bound-method comparison needs ==, not `is`: every attribute
        # access creates a fresh bound-method object.
        if engine.log.fault_hook == self._log_flush_fault:
            engine.log.fault_hook = None
        if engine.buffer is not None and \
                engine.buffer.fault_hook == self._page_io_fault:
            engine.buffer.fault_hook = None
        if engine.locks.fault_hook == self._lock_fault:
            engine.locks.fault_hook = None
        if engine.checkpoint_hook == self._on_checkpoint:
            engine.checkpoint_hook = None
        if engine.injector is self:
            engine.injector = None

    # -- crash / kill triggers ------------------------------------------------

    def _on_log_record(self, record: LogRecord) -> None:
        if self._crash_pending or self.crashed:
            return
        plan = self.plan
        if record.kind in PHYSICAL_KINDS:
            self.stats.page_writes_seen += 1
            if plan.crash_at_page_write is not None and \
                    self.stats.page_writes_seen >= plan.crash_at_page_write:
                self._trigger_crash()
                return
        if plan.crash_at_lsn is not None and record.lsn >= plan.crash_at_lsn:
            self._trigger_crash()

    def _trigger_crash(self) -> None:
        if self._crash_pending or self.crashed:
            return
        self._crash_pending = True
        # Deferred: the trigger may be running inside the very process a
        # crash would kill (a log append from a transaction's generator).
        self.engine.sim.call_soon(self._do_crash)

    def _do_crash(self) -> None:
        if self.crashed:
            return
        self.crashed = True
        self.stats.crashes_fired += 1
        if self.on_crash is not None:
            self.on_crash()
        else:
            torn_tail = (self.engine.log.torn_tail_fragment(self._rng_corrupt)
                         if self.plan.torn_log_tail else b"")
            self.crash_image = self.engine.crash()
            if torn_tail:
                # The log write in flight at the crash instant reached the
                # disk only partially (or scrambled): recovery must detect
                # and truncate it, never decode garbage.
                self.crash_image.durable_log += torn_tail
                self.stats.torn_log_tails += 1
                self.stats.corruptions.append(("torn_log_tail", -1, -1))

    # -- silent corruption ------------------------------------------------------

    def _snapshot_pages(self, store_state):
        return [(pid, page_no, page_state)
                for pid, part_state in sorted(store_state["partitions"].items())
                for page_no, page_state in sorted(part_state["pages"].items())]

    def _on_checkpoint(self, payload, snapshot_id: int, lsn: int) -> None:
        """Tear one page of the n-th checkpoint's snapshot write.

        The stored image keeps a prefix of the new bytes and the tail of
        the previous checkpoint's image of the same page (zeros when the
        page is new), while the recorded checksum describes the complete
        new image — exactly what an interrupted sector-by-sector page
        write leaves behind.
        """
        self._checkpoints_seen += 1
        prev_store = self._prev_store_snapshot
        self._prev_store_snapshot = payload["store"]
        if self._checkpoints_seen != self.plan.torn_page_write:
            return
        pages = self._snapshot_pages(payload["store"])
        if not pages:
            return
        rng = self._rng_corrupt
        for _ in range(8):  # retry if the tear happens to change nothing
            pid, page_no, state = pages[rng.randrange(len(pages))]
            buf = state["buf"]
            old_buf = bytes(len(buf))
            if prev_store is not None:
                old_part = prev_store["partitions"].get(pid)
                old_state = None if old_part is None else \
                    old_part["pages"].get(page_no)
                if old_state is not None and \
                        len(old_state["buf"]) == len(buf):
                    old_buf = old_state["buf"]
            cut = rng.randrange(1, len(buf))
            torn = buf[:cut] + old_buf[cut:]
            if torn != buf:
                state["buf"] = torn
                self.stats.torn_page_writes += 1
                self.stats.corruptions.append(("torn_page", pid, page_no))
                return

    def _fire_bit_flip(self) -> None:
        """Flip one seeded-random bit in one page image (durable or live)."""
        if self.crashed or not self._attached:
            return
        rng = self._rng_corrupt
        if self.plan.bit_flip_target == "durable":
            latest = self.engine.snapshots.latest()
            if latest is None:
                return
            pages = self._snapshot_pages(
                self.engine.snapshots.load(latest)["store"])
            if not pages:
                return
            pid, page_no, state = pages[rng.randrange(len(pages))]
            buf = bytearray(state["buf"])
            bit = rng.randrange(len(buf) * 8)
            buf[bit // 8] ^= 1 << (bit % 8)
            state["buf"] = bytes(buf)
            self.stats.bit_flips += 1
            self.stats.corruptions.append(("bit_flip_durable", pid, page_no))
        else:
            store = self.engine.store
            keys = [(pid, page_no)
                    for pid in store.partition_ids()
                    for page_no in store.partition(pid).page_numbers()]
            if not keys:
                return
            pid, page_no = keys[rng.randrange(len(keys))]
            page = store.partition(pid).page(page_no)
            bit = rng.randrange(len(page._buf) * 8)
            page._buf[bit // 8] ^= 1 << (bit % 8)  # behind the page API:
            # the maintained checksum is now stale, which is the point.
            self.stats.bit_flips += 1
            self.stats.corruptions.append(("bit_flip_live", pid, page_no))

    def _fire_kill(self) -> None:
        if self._kill_fired or self.crashed:
            return
        self._kill_fired = True
        self.stats.kills_fired += 1
        self.stats.processes_killed += self.engine.sim.kill_matching(
            self.plan.kill_process_match)

    # -- probabilistic hooks ----------------------------------------------------

    def _in_window(self, window: Tuple[float, float]) -> bool:
        start, end = window
        return start <= self.engine.sim.now <= end

    def _page_io_fault(self, op: str, key) -> None:
        if self._in_window(self.plan.io_error_window_ms) and \
                self._rng_io.random() < self.plan.io_error_rate:
            self.stats.io_faults_injected += 1
            raise TransientIOError(f"injected {op} fault on page {key}")

    def _log_flush_fault(self, target_lsn: int) -> None:
        if self._in_window(self.plan.io_error_window_ms) and \
                self._rng_io.random() < self.plan.io_error_rate:
            self.stats.io_faults_injected += 1
            raise TransientIOError(
                f"injected log-flush fault at lsn {target_lsn}")

    def _lock_fault(self, tid: int, key, mode) -> bool:
        if self._in_window(self.plan.lock_storm_window_ms) and \
                self._rng_locks.random() < self.plan.lock_storm_rate:
            self.stats.forced_lock_timeouts += 1
            return True
        return False

    def __repr__(self) -> str:
        state = ("crashed" if self.crashed
                 else "attached" if self._attached else "detached")
        return f"<FaultInjector {state} {self.stats!r}>"
