"""The fault injector: threads a :class:`FaultPlan` through the engine.

One injector serves one :class:`~repro.engine.StorageEngine`.  ``attach``
wires the plan into the engine's fault hooks (buffer pool, log manager,
lock manager) and arms the crash/kill triggers; ``detach`` unwires
everything.  ``StorageEngine.crash`` detaches the attached injector
automatically, so a recovered engine always starts fault-free — chaos
harnesses re-attach explicitly if they want faults after recovery.

Crash triggers never fire synchronously: appending a log record happens
inside whatever process is executing, and throwing into the running
generator from its own frame is illegal.  Triggers therefore schedule the
actual crash via ``sim.call_soon``; the crash happens a scheduler step
later, at the same simulated instant.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Tuple

from ..storage.errors import TransientIOError
from ..wal.records import PHYSICAL_KINDS, LogRecord
from .plan import FaultPlan


class InjectorStats:
    """What the injector actually did to the run."""

    __slots__ = ("crashes_fired", "kills_fired", "processes_killed",
                 "io_faults_injected", "forced_lock_timeouts",
                 "page_writes_seen")

    def __init__(self) -> None:
        self.crashes_fired = 0
        self.kills_fired = 0
        self.processes_killed = 0
        self.io_faults_injected = 0
        self.forced_lock_timeouts = 0
        self.page_writes_seen = 0

    def __repr__(self) -> str:
        return (f"<InjectorStats crashes={self.crashes_fired} "
                f"kills={self.kills_fired} io={self.io_faults_injected} "
                f"lock_timeouts={self.forced_lock_timeouts}>")


class FaultInjector:
    """Injects the faults a :class:`FaultPlan` declares into one engine.

    After a crash trigger fires, :attr:`crashed` is True and
    :attr:`crash_image` holds the :class:`~repro.engine.CrashImage` to
    recover from (unless ``on_crash`` overrides the default behaviour).
    """

    def __init__(self, plan: FaultPlan, engine,
                 on_crash: Optional[Callable[[], None]] = None):
        self.plan = plan
        self.engine = engine
        #: Called instead of ``engine.crash()`` when a crash trigger
        #: fires; for harnesses that need to snapshot extra state first.
        self.on_crash = on_crash
        self.stats = InjectorStats()
        self.crashed = False
        self.crash_image = None
        self._attached = False
        self._crash_pending = False
        self._kill_fired = False
        # String seeds: deterministic regardless of PYTHONHASHSEED.
        self._rng_io = random.Random(f"faults/io/{plan.seed}")
        self._rng_locks = random.Random(f"faults/locks/{plan.seed}")

    # -- wiring ---------------------------------------------------------------

    def attach(self) -> "FaultInjector":
        """Install the plan's hooks and arm its triggers."""
        if self._attached:
            return self
        engine, plan = self.engine, self.plan
        self._attached = True
        engine.injector = self
        if plan.crash_at_lsn is not None or \
                plan.crash_at_page_write is not None:
            engine.log.subscribe(self._on_log_record)
            self._subscribed = True
        else:
            self._subscribed = False
        if plan.io_error_rate > 0.0:
            engine.log.fault_hook = self._log_flush_fault
            if engine.buffer is not None:
                engine.buffer.fault_hook = self._page_io_fault
        if plan.lock_storm_rate > 0.0:
            engine.locks.fault_hook = self._lock_fault
        if plan.crash_at_ms is not None:
            engine.sim.call_later(
                max(0.0, plan.crash_at_ms - engine.sim.now),
                self._trigger_crash)
        if plan.kill_process_at_ms is not None:
            engine.sim.call_later(
                max(0.0, plan.kill_process_at_ms - engine.sim.now),
                self._fire_kill)
        return self

    def detach(self) -> None:
        """Unwire every hook (idempotent; called by ``engine.crash``)."""
        if not self._attached:
            return
        self._attached = False
        engine = self.engine
        if self._subscribed:
            engine.log.unsubscribe(self._on_log_record)
            self._subscribed = False
        # Bound-method comparison needs ==, not `is`: every attribute
        # access creates a fresh bound-method object.
        if engine.log.fault_hook == self._log_flush_fault:
            engine.log.fault_hook = None
        if engine.buffer is not None and \
                engine.buffer.fault_hook == self._page_io_fault:
            engine.buffer.fault_hook = None
        if engine.locks.fault_hook == self._lock_fault:
            engine.locks.fault_hook = None
        if engine.injector is self:
            engine.injector = None

    # -- crash / kill triggers ------------------------------------------------

    def _on_log_record(self, record: LogRecord) -> None:
        if self._crash_pending or self.crashed:
            return
        plan = self.plan
        if record.kind in PHYSICAL_KINDS:
            self.stats.page_writes_seen += 1
            if plan.crash_at_page_write is not None and \
                    self.stats.page_writes_seen >= plan.crash_at_page_write:
                self._trigger_crash()
                return
        if plan.crash_at_lsn is not None and record.lsn >= plan.crash_at_lsn:
            self._trigger_crash()

    def _trigger_crash(self) -> None:
        if self._crash_pending or self.crashed:
            return
        self._crash_pending = True
        # Deferred: the trigger may be running inside the very process a
        # crash would kill (a log append from a transaction's generator).
        self.engine.sim.call_soon(self._do_crash)

    def _do_crash(self) -> None:
        if self.crashed:
            return
        self.crashed = True
        self.stats.crashes_fired += 1
        if self.on_crash is not None:
            self.on_crash()
        else:
            self.crash_image = self.engine.crash()

    def _fire_kill(self) -> None:
        if self._kill_fired or self.crashed:
            return
        self._kill_fired = True
        self.stats.kills_fired += 1
        self.stats.processes_killed += self.engine.sim.kill_matching(
            self.plan.kill_process_match)

    # -- probabilistic hooks ----------------------------------------------------

    def _in_window(self, window: Tuple[float, float]) -> bool:
        start, end = window
        return start <= self.engine.sim.now <= end

    def _page_io_fault(self, op: str, key) -> None:
        if self._in_window(self.plan.io_error_window_ms) and \
                self._rng_io.random() < self.plan.io_error_rate:
            self.stats.io_faults_injected += 1
            raise TransientIOError(f"injected {op} fault on page {key}")

    def _log_flush_fault(self, target_lsn: int) -> None:
        if self._in_window(self.plan.io_error_window_ms) and \
                self._rng_io.random() < self.plan.io_error_rate:
            self.stats.io_faults_injected += 1
            raise TransientIOError(
                f"injected log-flush fault at lsn {target_lsn}")

    def _lock_fault(self, tid: int, key, mode) -> bool:
        if self._in_window(self.plan.lock_storm_window_ms) and \
                self._rng_locks.random() < self.plan.lock_storm_rate:
            self.stats.forced_lock_timeouts += 1
            return True
        return False

    def __repr__(self) -> str:
        state = ("crashed" if self.crashed
                 else "attached" if self._attached else "detached")
        return f"<FaultInjector {state} {self.stats!r}>"
