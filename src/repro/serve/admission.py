"""Bounded admission queue with load shedding and staleness drops.

The queue is the overload valve between the open-loop arrival process
and the fixed server pool:

* an arrival finding ``queue_depth`` requests already waiting is shed
  on the spot (``shed_queue_full``) — bounded queues are what keep an
  overloaded system's latency bounded;
* a server popping a request whose ``queue_deadline_ms`` has already
  passed drops it unexecuted (``shed_stale``) — running it would burn
  capacity producing an answer nobody is waiting for.

Producer/consumer hand-off uses a broadcast gate: ``put`` fires the
current gate event, every blocked server wakes, the winners pop and the
rest re-arm on a fresh gate.  With one-shot events this is race-free —
a waiter registering after the gate fired resumes immediately — at the
cost of a thundering herd that is harmless at these pool sizes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Generator, Optional

from ..sim import Event, Simulator, Wait


@dataclass
class Request:
    """One logical request flowing through the serving layer."""

    request_id: int
    partition_id: int
    arrived_ms: float
    #: Last instant a server may *start* this request.
    queue_deadline_ms: float
    #: Last instant the response is still useful (end-to-end SLO).
    response_deadline_ms: float
    #: Deterministic walk seed — a retry re-runs the same work.
    txn_seed: int
    started_ms: Optional[float] = None
    retries: int = 0
    outcome: str = field(default="pending")


class AdmissionQueue:
    """FIFO queue bounded at ``depth``; shedding, never blocking, on put."""

    def __init__(self, sim: Simulator, depth: int):
        self.sim = sim
        self.depth = depth
        self._queue: Deque[Request] = deque()
        self._gate = Event(sim, name="admission-gate")
        self._closed = False

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, request: Request) -> bool:
        """Enqueue, or refuse (returns False) when the queue is full."""
        if len(self._queue) >= self.depth:
            request.outcome = "shed-queue-full"
            return False
        self._queue.append(request)
        self._wake()
        return True

    def close(self) -> None:
        """No more arrivals; blocked servers drain the queue and exit."""
        self._closed = True
        self._wake()

    def _wake(self) -> None:
        gate, self._gate = self._gate, Event(self.sim,
                                             name="admission-gate")
        gate.succeed()

    def get(self) -> Generator[object, object, Optional[Request]]:
        """Pop the next request; ``None`` once closed and drained."""
        while True:
            if self._queue:
                return self._queue.popleft()
            if self._closed:
                return None
            yield Wait(self._gate)
