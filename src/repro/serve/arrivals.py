"""Open-loop arrival processes and partition skew for the serving layer.

The paper's driver is closed-loop: MPL threads submit back-to-back, so
offered load can never exceed capacity and overload is unobservable.
The serving layer decouples arrivals from service — requests arrive on
their own clock whether or not a server is free — which is what makes
admission control, shedding and deadline misses meaningful:

* ``poisson``     — stationary Poisson arrivals at the base rate;
* ``flash-crowd`` — Poisson whose rate is multiplied by
  ``flash_multiplier`` inside ``[flash_start_ms, flash_start_ms +
  flash_duration_ms)`` — the overload burst the reorg governor exists
  to survive;
* ``diurnal``     — Poisson with a sinusoidal rate swing of amplitude
  ``diurnal_amplitude`` around the base (a compressed day/night cycle).

Non-stationary rates are sampled by drawing each gap at the rate in
force at the draw instant — exact for piecewise-constant flash crowds
up to one straddling gap, and a standard approximation for the smooth
diurnal swing.  Everything is driven by one seeded RNG, so a given
``ServeConfig`` yields one arrival sequence, always.

Partition skew is Zipf: the k-th partition (by id) receives weight
``1 / k**zipf_s``.  ``zipf_s = 0`` is uniform; larger exponents focus
the crowd onto partition 1 — the partition the reorganizer is most
likely working on.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List

from ..config import ServeConfig

ARRIVAL_KINDS = ("poisson", "flash-crowd", "diurnal")


def rate_at(cfg: ServeConfig, at_ms: float) -> float:
    """Instantaneous arrival rate (requests per simulated second)."""
    base = cfg.arrival_rate_tps
    if cfg.arrival == "poisson":
        return base
    if cfg.arrival == "flash-crowd":
        in_flash = (cfg.flash_start_ms <= at_ms
                    < cfg.flash_start_ms + cfg.flash_duration_ms)
        return base * cfg.flash_multiplier if in_flash else base
    if cfg.arrival == "diurnal":
        phase = 2.0 * math.pi * at_ms / cfg.diurnal_period_ms
        return base * (1.0 + cfg.diurnal_amplitude * math.sin(phase))
    raise ValueError(f"unknown arrival process {cfg.arrival!r}; "
                     f"choose from {ARRIVAL_KINDS}")


def interarrival_ms(cfg: ServeConfig, rng: random.Random,
                    at_ms: float) -> float:
    """One exponential gap at the rate in force at ``at_ms``."""
    rate = max(rate_at(cfg, at_ms), 1e-9)
    return rng.expovariate(rate) * 1000.0


class ZipfPartitions:
    """Zipf-skewed choice over the data partitions ``1..n``."""

    def __init__(self, num_partitions: int, s: float):
        self.num_partitions = num_partitions
        self.s = s
        weights = [1.0 / (k ** s) if s > 0 else 1.0
                   for k in range(1, num_partitions + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float shortfall
        self._cumulative = cumulative

    def choose(self, rng: random.Random) -> int:
        """A partition id in ``1..num_partitions`` (1 is the hottest)."""
        return 1 + bisect.bisect_left(self._cumulative, rng.random())

    def share(self, partition_id: int) -> float:
        """The long-run fraction of arrivals hitting ``partition_id``."""
        lo = self._cumulative[partition_id - 2] if partition_id > 1 else 0.0
        return self._cumulative[partition_id - 1] - lo
