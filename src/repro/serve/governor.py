"""The reorg governor: SLO-driven pacing of the reorganizer fleet.

On-line reorganization is supposed to be invisible; under overload it
is not — reorganizer lock footprints and CPU steal time turn a flash
crowd's p99 spike into sheds and deadline misses.  The governor closes
the loop: a tick process samples the serving layer's shed and
deadline-miss rates over a sliding window, and when either breaches its
SLO the fleet is *paced* (a fixed delay injected between migrations via
the reorganizers' pacer hook); after ``pause_after_breaches``
consecutive breaching windows it is *paused* outright until the rates
recover.  Reorganization work is the one load on the system that can be
deferred without breaking anything — §4's algorithms tolerate arbitrary
gaps between migrations — so it is the right pressure-relief valve.

The governor never cancels work: a paused reorganizer holds no object
locks between migrations (IRA's unit of interference is a single short
system transaction), so pausing sheds interference immediately while
the WAL-carried progress state keeps completed work durable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional, Tuple

from ..config import GovernorConfig
from ..sim import Delay, Simulator
from .metrics import ServeMetrics


class ReorgGovernor:
    """Paces/pauses reorganizers when serving SLOs are breached."""

    def __init__(self, sim: Simulator, config: GovernorConfig,
                 metrics: Optional[ServeMetrics] = None):
        self.sim = sim
        #: Bound by :meth:`ServingLayer.run` when not supplied up front.
        self.metrics = metrics
        self.config = config
        self.state = "run"  # "run" | "pace" | "pause"
        self._stopped = False
        self._breach_streak = 0
        # (time, arrivals, shed, admitted, deadline_misses) samples.
        self._samples: Deque[Tuple[float, int, int, int, int]] = deque()
        #: Migration gaps in which a pace delay was injected.
        self.paced = 0
        #: Total simulated ms reorganizers sat in pause loops.
        self.paused_ms = 0.0
        #: Breaching windows observed.
        self.breaches = 0
        self.state_changes = 0

    # -- sampling ----------------------------------------------------------------

    def _sample(self) -> None:
        m = self.metrics
        now = self.sim.now
        self._samples.append((now, m.arrivals, m.shed, m.admitted,
                              m.deadline_misses))
        horizon = now - self.config.window_ms
        while len(self._samples) > 2 and self._samples[1][0] <= horizon:
            self._samples.popleft()

    def _window_rates(self) -> Tuple[float, float]:
        """``(shed_rate, deadline_miss_rate)`` over the sliding window."""
        if len(self._samples) < 2:
            return 0.0, 0.0
        _, a0, s0, ad0, d0 = self._samples[0]
        _, a1, s1, ad1, d1 = self._samples[-1]
        arrivals = a1 - a0
        admitted = ad1 - ad0
        shed_rate = (s1 - s0) / arrivals if arrivals else 0.0
        miss_rate = (d1 - d0) / admitted if admitted else 0.0
        return shed_rate, miss_rate

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.state_changes += 1

    # -- processes ---------------------------------------------------------------

    def tick_process(self) -> Generator[Any, Any, None]:
        """Spawned by the serving layer; stopped when the window closes."""
        cfg = self.config
        while not self._stopped:
            yield Delay(cfg.tick_ms)
            if self._stopped:
                break
            self._sample()
            shed_rate, miss_rate = self._window_rates()
            breach = (shed_rate > cfg.shed_slo
                      or miss_rate > cfg.deadline_miss_slo)
            if breach:
                self.breaches += 1
                self._breach_streak += 1
                self._transition("pause" if self._breach_streak
                                 >= cfg.pause_after_breaches else "pace")
            else:
                self._breach_streak = 0
                self._transition("run")

    def stop(self) -> None:
        """Release any paused reorganizers and end the tick process."""
        self._stopped = True
        self._transition("run")

    def gate(self) -> Generator[Any, Any, None]:
        """The pacer hook: reorganizers drive this between migrations."""
        while self.state == "pause" and not self._stopped:
            self.paused_ms += self.config.tick_ms
            yield Delay(self.config.tick_ms)
        if self.state == "pace":
            self.paced += 1
            yield Delay(self.config.pace_delay_ms)
