"""Sim-time partition leases for the reorganizer fleet.

A worker claims a partition by acquiring a lease; the lease is valid
while ``now < expires_ms`` and is renewed by the worker's heartbeat
process every ``heartbeat_ms``.  A crashed worker stops heartbeating
(the chaos kill takes worker and heartbeat together — they share a
name prefix), the lease runs out, and a surviving worker may take the
partition over — resuming from the WAL-carried ``REORG_PROGRESS``
state rather than restarting.

Mutual exclusion is what the lease protocol guarantees: ``acquire``
refuses while an unexpired lease is held by another worker, so no
partition is ever reorganized by two workers concurrently.  Each
successful acquire bumps the partition's generation counter; a
takeover is an acquire over an expired lease of an older generation.

Everything is sim-time; there are no wall clocks and no background
threads — expiry is evaluated lazily at acquire/renew time, which is
sufficient because only acquire attempts care whether a lease is dead.

Boundary rule: a lease is live strictly *before* its expiry instant
(``now < expires_ms``).  A heartbeat arriving at exactly ``expires_ms``
is **expired** — the renewal fails and a same-timestamp acquire by
another worker succeeds, in either dispatch order.  Defining the tie
this way (rather than leaving it to event ordering) means the mutual-
exclusion window never depends on how the kernel breaks a timestamp
tie between a heartbeat and a takeover attempt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import Simulator


@dataclass
class Lease:
    """One partition's current (or last) lease."""

    partition_id: int
    owner: str
    expires_ms: float
    generation: int

    def live(self, now: float) -> bool:
        """Strict inequality: at exactly ``expires_ms`` the lease is
        dead, so a boundary-instant heartbeat loses to (and is
        order-independent with) a boundary-instant takeover."""
        return now < self.expires_ms


class LeaseTable:
    """Partition-id → lease map with expiry-based takeover."""

    def __init__(self, sim: Simulator, lease_ms: float):
        if lease_ms <= 0:
            raise ValueError(f"lease_ms must be positive: {lease_ms!r}")
        self.sim = sim
        self.lease_ms = lease_ms
        self._leases: Dict[int, Lease] = {}
        #: Successful acquires over an expired lease of another owner.
        self.takeovers: int = 0
        #: Acquire attempts refused because a live lease was held.
        self.refusals: int = 0

    def holder(self, partition_id: int) -> Optional[str]:
        """The current owner, or ``None`` if unleased/expired."""
        lease = self._leases.get(partition_id)
        if lease is not None and lease.live(self.sim.now):
            return lease.owner
        return None

    def acquire(self, partition_id: int, owner: str) -> Optional[Lease]:
        """Claim the partition; ``None`` when a live lease blocks us.

        Re-acquiring one's own live lease renews it (idempotent claim).
        """
        now = self.sim.now
        prior = self._leases.get(partition_id)
        if prior is not None and prior.live(now) and prior.owner != owner:
            self.refusals += 1
            return None
        if prior is not None and prior.owner != owner:
            self.takeovers += 1
        lease = Lease(partition_id=partition_id, owner=owner,
                      expires_ms=now + self.lease_ms,
                      generation=(prior.generation + 1
                                  if prior is not None and
                                  prior.owner != owner
                                  else (prior.generation if prior
                                        else 1)))
        self._leases[partition_id] = lease
        return lease

    def renew(self, partition_id: int, owner: str) -> bool:
        """Heartbeat: extend the lease iff still ours and still live.

        A worker whose lease lapsed (e.g. paused past expiry) must not
        silently resurrect it — another worker may hold the partition.
        """
        lease = self._leases.get(partition_id)
        now = self.sim.now
        if lease is None or lease.owner != owner or not lease.live(now):
            return False
        lease.expires_ms = now + self.lease_ms
        return True

    def release(self, partition_id: int, owner: str) -> bool:
        """Drop the lease on normal completion (never from kill paths)."""
        lease = self._leases.get(partition_id)
        if lease is None or lease.owner != owner:
            return False
        del self._leases[partition_id]
        return True
