"""The overload-robust serving layer and crash-tolerant reorg fleet.

Open-loop sessions (arrivals, admission control, deadlines, retry
budgets) over the storage engine, plus N concurrent reorganizer workers
under sim-time leases with WAL-carried takeover, governed by a serving
SLO.  See SERVING.md for the protocol.
"""

from .admission import AdmissionQueue, Request
from .arrivals import ZipfPartitions, interarrival_ms, rate_at
from .fleet import ReorgFleet
from .frontend import ServingLayer
from .governor import ReorgGovernor
from .leases import Lease, LeaseTable
from .metrics import ServeMetrics

__all__ = [
    "AdmissionQueue",
    "Lease",
    "LeaseTable",
    "ReorgFleet",
    "ReorgGovernor",
    "Request",
    "ServeMetrics",
    "ServingLayer",
    "ZipfPartitions",
    "interarrival_ms",
    "rate_at",
]
