"""The serving layer: open-loop sessions over the storage engine.

``ServingLayer`` replaces the closed-loop MPL driver for overload
experiments: an arrival process generates requests on its own clock
(:mod:`repro.serve.arrivals`), a bounded admission queue sheds what the
``servers``-wide execution pool cannot absorb
(:mod:`repro.serve.admission`), and each admitted request runs the same
§5.2 random-walk transaction the paper's driver uses — retried on
deadlock aborts under a per-request retry budget, with the driver's
deterministic backoff jitter.

The response time of a request runs from *arrival* to final commit —
queue wait included — which is what a client would measure, and what
makes p99/p999 degrade visibly when a reorganizer fleet competes for
locks during a flash crowd.

Composition with reorganization: pass a :class:`ReorgFleet` (and
optionally a :class:`ReorgGovernor`) and ``run`` starts them on the
same simulator; the run ends when arrivals stop, the queue drains *and*
the fleet finishes its claims.  The measurement window closes at server
drain (governor included), so fleet work past the window never skews
the serving metrics.
"""

from __future__ import annotations

import random
from typing import Any, Generator, Optional

from ..concurrency import LockTimeoutError
from ..errors import NodeUnreachableError, WriteConflictError
from ..config import ServeConfig, WorkloadConfig
from ..mvcc import mvcc_random_walk
from ..sim import Delay
from ..workload.metrics import TransactionRecord
from ..workload.transactions import random_walk_transaction
from .admission import AdmissionQueue, Request
from .arrivals import ZipfPartitions, interarrival_ms
from .fleet import ReorgFleet
from .governor import ReorgGovernor
from .metrics import ServeMetrics


class ServingLayer:
    """Runs one open-loop serving experiment (optionally with a fleet)."""

    def __init__(self, engine, layout, serve: ServeConfig,
                 workload: Optional[WorkloadConfig] = None):
        self.engine = engine
        self.layout = layout
        self.serve = serve
        self.workload = workload or WorkloadConfig()
        self._start_ms = 0.0
        self._live_servers = 0

    def run(self, fleet: Optional[ReorgFleet] = None,
            governor: Optional[ReorgGovernor] = None) -> ServeMetrics:
        sim = self.engine.sim
        cfg = self.serve
        algorithm = fleet.config.algorithm if fleet is not None else "nr"
        metrics = ServeMetrics(algorithm=algorithm, mpl=cfg.servers)
        if governor is not None:
            governor.metrics = metrics
        self._start_ms = sim.now
        buffer = self.engine.buffer
        buffer_base = buffer.stats.snapshot() if buffer is not None else None

        queue = AdmissionQueue(sim, cfg.queue_depth)
        sim.spawn(self._arrival_process(queue, metrics), name="arrivals")
        self._live_servers = cfg.servers
        for server_id in range(cfg.servers):
            sim.spawn(self._server_process(server_id, queue, metrics,
                                           governor),
                      name=f"server-{server_id}")
        if fleet is not None:
            fleet.spawn()
        if governor is not None:
            sim.spawn(governor.tick_process(), name="reorg-governor")

        sim.run()

        if fleet is not None and fleet.stats:
            by_pid = sorted(fleet.stats.items())
            metrics.reorg_stats = by_pid[0][1]
            metrics.reorg_duration_ms = max(
                stats.duration_ms for _, stats in by_pid)
        metrics.lock_waits = self.engine.locks.stats.waits
        metrics.lock_timeouts = self.engine.locks.stats.timeouts
        metrics.forced_lock_timeouts = self.engine.locks.stats.forced_timeouts
        metrics.deadlock_victims = self.engine.locks.stats.deadlock_victims
        metrics.deadlock_aborts = self.engine.txns.abort_reasons.get(
            "deadlock", 0)
        metrics.io_faults = self.engine.log.io_faults
        metrics.io_retries = self.engine.log.io_retries
        if buffer is not None:
            metrics.io_faults += buffer.stats.io_faults
            metrics.io_retries += buffer.stats.io_retries
            metrics.buffer = buffer.stats.since(buffer_base)
        metrics.cpu_utilization = self.engine.cpu.utilization(
            horizon=metrics.window_ms or None)
        return metrics

    # -- processes ---------------------------------------------------------------

    def _arrival_process(self, queue: AdmissionQueue,
                         metrics: ServeMetrics
                         ) -> Generator[Any, Any, None]:
        cfg = self.serve
        sim = self.engine.sim
        rng = random.Random(f"{cfg.seed}/arrivals")
        zipf = ZipfPartitions(self.workload.num_partitions, cfg.zipf_s)
        request_id = 0
        while True:
            elapsed = sim.now - self._start_ms
            yield Delay(interarrival_ms(cfg, rng, elapsed))
            if sim.now - self._start_ms >= cfg.duration_ms:
                break
            now = sim.now
            request_id += 1
            metrics.arrivals += 1
            request = Request(
                request_id=request_id,
                partition_id=zipf.choose(rng),
                arrived_ms=now,
                queue_deadline_ms=now + cfg.queue_deadline_ms,
                response_deadline_ms=now + cfg.response_deadline_ms,
                txn_seed=rng.getrandbits(64))
            if not queue.put(request):
                metrics.shed += 1
                metrics.shed_queue_full += 1
        queue.close()

    def _server_process(self, server_id: int, queue: AdmissionQueue,
                        metrics: ServeMetrics,
                        governor: Optional[ReorgGovernor]
                        ) -> Generator[Any, Any, None]:
        sim = self.engine.sim
        try:
            while True:
                request = yield from queue.get()
                if request is None:
                    return
                now = sim.now
                if now > request.queue_deadline_ms:
                    # Stale: nobody is waiting for this answer any more;
                    # executing it would only deepen the overload.
                    request.outcome = "shed-stale"
                    metrics.shed += 1
                    metrics.shed_stale += 1
                    continue
                metrics.admitted += 1
                metrics.queue_wait_ms_total += now - request.arrived_ms
                request.started_ms = now
                yield from self._execute(server_id, request, metrics)
        finally:
            self._live_servers -= 1
            if self._live_servers == 0:
                # Last server out closes the measurement window and
                # releases the governor (the fleet may keep running).
                metrics.window_ms = sim.now - self._start_ms
                if governor is not None:
                    governor.stop()

    def _execute(self, server_id: int, request: Request,
                 metrics: ServeMetrics) -> Generator[Any, Any, None]:
        sim = self.engine.sim
        cfg = self.serve
        policy = cfg.retry_policy()
        backoff_rng = policy.rng(f"{cfg.seed}/request-{request.request_id}")
        # With an MVCC tier attached, requests run as snapshot
        # transactions: reads route to versioned images and never wait on
        # a reorganizer — the serving-side half of ROADMAP item 2.
        walk = (mvcc_random_walk
                if getattr(self.engine, "mvcc", None) is not None
                else random_walk_transaction)
        while True:
            try:
                yield from walk(
                    self.engine, self.layout, self.workload,
                    random.Random(request.txn_seed), request.partition_id)
                break
            except (LockTimeoutError, NodeUnreachableError,
                    WriteConflictError):
                # Same retry path for all three abort shapes: a lock
                # timeout, an unreachable remote owner (a distributed
                # read racing a peer's crash window) and a
                # first-committer-wins conflict are transient; back off
                # and re-run the transaction.
                metrics.aborts += 1
                request.retries += 1
                if policy.exhausted(request.retries):
                    request.outcome = "retry-budget-exhausted"
                    metrics.retry_budget_exhausted += 1
                    return
                # The driver's jitter: identical retries would otherwise
                # re-collide in deterministic lockstep.
                yield Delay(policy.delay_ms(request.retries, backoff_rng))
        finished = sim.now
        request.outcome = "completed"
        if finished > request.response_deadline_ms:
            metrics.deadline_misses += 1
        metrics.records.append(TransactionRecord(
            thread_id=server_id,
            started_ms=request.arrived_ms - self._start_ms,
            finished_ms=finished - self._start_ms,
            retries=request.retries))
