"""The reorganizer fleet: N crash-tolerant workers over leased claims.

Workers pull partition claims (typically ranked by the
:class:`~repro.cluster.advisor.ClusteringAdvisor`) from a shared queue.
A claim is guarded by a sim-time lease (:mod:`repro.serve.leases`): the
worker heartbeats while reorganizing, and a chaos kill — which takes
worker and heartbeat together, they share the worker-name prefix —
leaves the lease to expire so a survivor can take the partition over.

Takeover resumes, never restarts: the dead worker's progress rides the
WAL as ``REORG_PROGRESS`` records (§4.4), so the survivor reaps the
orphaned system transactions (committing the one whose commit record
made the log, aborting the rest), rolls the checkpointed state forward
over committed migrations, rebuilds the TRT from the log suffix and
continues migrating from where its predecessor died.

Deliberately NOT structured as ``try/finally`` around the lease: a
killed process *does* run its ``finally`` blocks, and releasing the
lease from one would hand the partition over instantly — bypassing the
expiry wait that makes the mutual-exclusion window sound.  The lease is
released only on the normal completion path.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Set

from ..config import FleetConfig, ReorgConfig
from ..core import CompactionPlan
from ..core.checkpointing import WalReorgStateStore, resume_reorganization
from ..sim import Delay
from ..txn.transaction import TxnStatus
from ..wal.records import CommitRecord
from .governor import ReorgGovernor
from .leases import LeaseTable


class ReorgFleet:
    """Spawns and tracks N reorganizer workers over a claim queue."""

    def __init__(self, engine, claims: List[int], config: FleetConfig,
                 reorg_config: Optional[ReorgConfig] = None,
                 governor: Optional[ReorgGovernor] = None,
                 layout=None, plan_factory=CompactionPlan):
        self.engine = engine
        self.config = config
        self.governor = governor
        self.layout = layout
        # In-place compaction per claim: concurrent workers on disjoint
        # partitions must not relocate into each other's target space.
        self.plan_factory = plan_factory
        reorg_config = reorg_config or ReorgConfig()
        if reorg_config.checkpoint_every <= 0:
            # Resumability needs durable progress; default to a modest
            # checkpoint cadence rather than silently running blind.
            reorg_config = reorg_config.copy(checkpoint_every=8)
        self.reorg_config = reorg_config
        self.leases = LeaseTable(engine.sim, config.lease_ms)
        self._claims: Deque[int] = deque(claims)
        self.completed: Set[int] = set()
        self.stats: Dict[int, object] = {}
        #: Partitions continued from a predecessor's WAL checkpoint.
        self.resumes = 0
        #: Orphaned system transactions reaped at takeover.
        self.orphans_committed = 0
        self.orphans_aborted = 0
        self.workers: List[object] = []
        #: Live reorganizer per partition (latest incarnation — takeover
        #: replaces the corpse's entry).  The oracle suite reads these:
        #: ``merged_mapping`` unions their migration mappings.
        self.reorganizers: Dict[int, object] = {}
        #: Called with each reorganizer as it is constructed (fresh or
        #: resumed), before it runs — the hook point for installing
        #: per-partition lock-footprint monitors.
        self.on_reorganizer = None
        self._in_flight: Set[int] = set()
        # Tids already being settled — the reaper and a takeover worker
        # must not both walk the same undo chain.
        self._reaping: Set[int] = set()

    @property
    def done(self) -> bool:
        return not self._claims and not self._in_flight

    def spawn(self) -> List[object]:
        """Start the worker processes; returns their Process handles."""
        sim = self.engine.sim
        self.workers = [
            sim.spawn(self._worker(f"reorg-worker-{index}"),
                      name=f"reorg-worker-{index}")
            for index in range(self.config.workers)
        ]
        # The reaper's name must not contain "reorg-worker": a chaos
        # kill targeting a worker must leave failure detection running.
        sim.spawn(self._reaper(), name="fleet-lease-reaper")
        return self.workers

    def install_monitors(self, limit: int = 2) -> List[object]:
        """Per-incarnation §4.2 lock-footprint monitors, takeover-aware.

        Each reorganizer (fresh or resumed) gets its own monitor.  At a
        takeover the predecessor's monitor is demoted to peak-only: its
        old/new address collapse map froze at the kill, so it cannot
        judge the successor's migrations — only the incarnation that
        owns the in-flight pair can enforce the two-lock claim.
        Returns the (growing) monitor list for the oracle suite.
        """
        from ..explore.oracles import LockFootprintMonitor
        monitors: List[object] = []
        active: Dict[int, object] = {}
        chained = self.on_reorganizer

        def hook(reorganizer) -> None:
            if chained is not None:
                chained(reorganizer)
            pid = reorganizer.partition_id
            prior = active.get(pid)
            if prior is not None:
                prior.limit = None
            monitor = LockFootprintMonitor(self.engine, reorganizer,
                                           limit=limit).install()
            active[pid] = monitor
            monitors.append(monitor)

        self.on_reorganizer = hook
        return monitors

    # -- worker ------------------------------------------------------------------

    def _worker(self, name: str) -> Generator[Any, Any, None]:
        engine = self.engine
        sim = engine.sim
        while True:
            pid = self._next_claim()
            if pid is None:
                # Queue drained; look for orphans — in-flight partitions
                # whose lease ran out because their worker died.  Idle
                # until everything in flight is done or abandoned.
                pid = self._orphan_claim()
                if pid is None:
                    if not self._in_flight - self.completed:
                        return
                    yield Delay(self.config.heartbeat_ms)
                    continue
            lease = self.leases.acquire(pid, name)
            if lease is None:
                # A live lease blocks us: either its owner is healthy
                # (and will complete the partition) or it just died and
                # the lease must be allowed to run out.  Requeue and
                # retry after roughly one lease term.
                self._claims.append(pid)
                yield Delay(self.config.lease_ms)
                continue
            self._in_flight.add(pid)
            heartbeat = sim.spawn(self._heartbeat(pid, name),
                                  name=f"{name}-heartbeat-p{pid}")
            store = WalReorgStateStore(engine, pid)
            if store.completed():
                # A predecessor finished this partition before dying.
                self.completed.add(pid)
                self._finish_claim(pid, name, heartbeat)
                continue
            # Reap unconditionally: a worker killed before its first
            # checkpoint still leaves orphaned system transactions (the
            # scan is a no-op on a cleanly-claimed partition).
            yield from self._reap_orphans(pid)
            reorganizer = None
            if store.load() is not None:
                reorganizer = resume_reorganization(
                    engine, store, plan=self.plan_factory(),
                    reorg_config=self.reorg_config)
                if reorganizer is not None:
                    self.resumes += 1
            if reorganizer is None:
                from ..database import REORGANIZERS
                factory = REORGANIZERS[self.config.algorithm]
                reorganizer = factory(engine, pid,
                                      plan=self.plan_factory(),
                                      reorg_config=self.reorg_config,
                                      state_store=store)
            if self.governor is not None:
                reorganizer.pacer = self.governor.gate
            self.reorganizers[pid] = reorganizer
            if self.on_reorganizer is not None:
                self.on_reorganizer(reorganizer)
            stats = yield from reorganizer.run()
            # Normal completion only from here down — a kill unwinds
            # past this point leaving the lease to expire (see module
            # docstring).
            self.stats[pid] = stats
            self.completed.add(pid)
            self._remap(stats.mapping)
            self._finish_claim(pid, name, heartbeat)

    def _heartbeat(self, pid: int, owner: str
                   ) -> Generator[Any, Any, None]:
        while True:
            yield Delay(self.config.heartbeat_ms)
            if not self.leases.renew(pid, owner):
                return

    def _next_claim(self) -> Optional[int]:
        while self._claims:
            pid = self._claims.popleft()
            if pid not in self.completed:
                return pid
        return None

    def _orphan_claim(self) -> Optional[int]:
        """An in-flight partition whose lease has expired, if any."""
        for pid in sorted(self._in_flight - self.completed):
            if self.leases.holder(pid) is None:
                return pid
        return None

    def _finish_claim(self, pid: int, name: str, heartbeat) -> None:
        self._in_flight.discard(pid)
        self.leases.release(pid, name)
        heartbeat.kill()

    def _remap(self, mapping) -> None:
        if self.layout is not None:
            self.layout.remap(mapping)
        tracer = getattr(self.engine, "tracer", None)
        if tracer is not None:
            tracer.graph.remap(mapping)

    # -- takeover ----------------------------------------------------------------

    def _reaper(self) -> Generator[Any, Any, None]:
        """Failure detector: reap a dead worker's transactions promptly.

        A killed worker's in-flight system transactions keep their locks
        until someone settles them; waiting for a takeover is not enough
        — the surviving workers may themselves be blocked on those very
        locks (a cross-partition parent patch), which would deadlock the
        whole fleet.  The reaper watches for in-flight partitions whose
        lease has expired (missed heartbeats ⇒ the owner is dead) and
        reaps immediately; the eventual takeover's own reap then finds
        nothing left to do.
        """
        while True:
            pending = (self._in_flight - self.completed) or self._claims
            workers_live = any(worker.alive for worker in self.workers)
            if not pending:
                return
            for pid in sorted(self._in_flight - self.completed):
                if self.leases.holder(pid) is None:
                    yield from self._reap_orphans(pid)
            if not workers_live:
                # Everyone died; locks are released, nothing more to do.
                return
            yield Delay(self.config.heartbeat_ms)

    def _reap_orphans(self, pid: int) -> Generator[Any, Any, None]:
        """Settle the dead worker's in-flight system transactions.

        A transaction whose COMMIT record made the log is committed —
        the worker died between logging the commit and bookkeeping — so
        it is finished in place; anything else is rolled back (its undo
        chain releases the locks the corpse still holds).
        """
        engine = self.engine
        committed_tids = {record.tid for record in engine.log.records()
                          if isinstance(record, CommitRecord)}
        for tid in sorted(engine.txns.active_tids()):
            txn = engine.txns.transaction(tid)
            if not txn.system or txn.reorg_partition != pid:
                continue
            if tid in self._reaping:
                continue
            self._reaping.add(tid)
            if tid in committed_tids:
                txn.status = TxnStatus.COMMITTED
                engine.txns.finish(txn)
                self.orphans_committed += 1
            else:
                yield from txn.abort(reason="takeover")
                self.orphans_aborted += 1
