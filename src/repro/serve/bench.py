"""``repro bench scale``: the open-loop overload sweep.

Sweeps the server-pool width (the open-loop analogue of the paper's MPL
sweep) under a flash-crowd arrival mix and measures, per point, three
arms on identical workloads at one pinned seed:

* ``nr``        — serving only: the overload baseline;
* ``fleet``     — serving plus an ungoverned 2-worker reorganizer
  fleet: what on-line reorganization costs when it ignores the SLOs;
* ``fleet-gov`` — the same fleet under the reorg governor, which paces
  or pauses migrations when shed/deadline-miss rates breach the SLOs.

The reported curves are throughput, p99 response time, shed rate and
*reorganizer interference* — each fleet arm's p99 degradation over the
``nr`` arm at the same point.  The governed arm earning strictly lower
p99 degradation than the ungoverned arm under the flash crowd is this
figure's acceptance gate; all summaries land in ``BENCH_6.json`` under
the ``repro-bench/1`` schema and drift fails ``--compare``.

The waits-for deadlock detector is on in every arm (it is the serving
layer's native configuration); the committed paper figures keep the
paper's timeout scheme.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..bench.harness import BenchPoint, format_series
from ..cluster.advisor import ClusteringAdvisor
from ..cluster.tracing import AffinityGraph
from ..config import (FleetConfig, GovernorConfig, ServeConfig,
                      SystemConfig, WorkloadConfig)
from ..database import Database
from .fleet import ReorgFleet
from .frontend import ServingLayer
from .governor import ReorgGovernor

#: The experiment's arms, in reporting order.
SCALE_ARMS = ("nr", "fleet", "fleet-gov")


class ServeScale:
    """Per-scale sweep parameters (keyed by the bench scale names)."""

    __slots__ = ("server_points", "num_partitions",
                 "objects_per_partition", "arrival_rate_tps",
                 "flash_multiplier", "flash_start_ms", "flash_duration_ms",
                 "duration_ms", "fleet_workers", "fleet_partitions")

    def __init__(self, server_points: Sequence[int], num_partitions: int,
                 objects_per_partition: int, arrival_rate_tps: float,
                 flash_multiplier: float, flash_start_ms: float,
                 flash_duration_ms: float, duration_ms: float,
                 fleet_workers: int, fleet_partitions: int):
        self.server_points = server_points
        self.num_partitions = num_partitions
        self.objects_per_partition = objects_per_partition
        self.arrival_rate_tps = arrival_rate_tps
        self.flash_multiplier = flash_multiplier
        self.flash_start_ms = flash_start_ms
        self.flash_duration_ms = flash_duration_ms
        self.duration_ms = duration_ms
        self.fleet_workers = fleet_workers
        self.fleet_partitions = fleet_partitions


#: The arrival rate is fixed per scale; sweeping the pool width then
#: shows the two overload regimes — queueing (pool too small for even
#: the base rate) and contention (pool wide enough that the flash crowd
#: all lands on the lock tables at once).  The single simulated CPU
#: saturates around 40 tps, so a flash multiplier of 6 is genuine
#: overload at every scale.
SERVE_SCALES: Dict[str, ServeScale] = {
    "quick": ServeScale(server_points=(10, 30), num_partitions=2,
                        objects_per_partition=340,
                        arrival_rate_tps=30.0, flash_multiplier=6.0,
                        flash_start_ms=4_000.0, flash_duration_ms=5_000.0,
                        duration_ms=12_000.0,
                        fleet_workers=2, fleet_partitions=2),
    "standard": ServeScale(server_points=(10, 50, 200), num_partitions=3,
                           objects_per_partition=1020,
                           arrival_rate_tps=35.0, flash_multiplier=6.0,
                           flash_start_ms=8_000.0,
                           flash_duration_ms=8_000.0,
                           duration_ms=24_000.0,
                           fleet_workers=2, fleet_partitions=2),
    "paper": ServeScale(server_points=(10, 30, 100, 300, 1000),
                        num_partitions=4, objects_per_partition=2040,
                        arrival_rate_tps=40.0, flash_multiplier=6.0,
                        flash_start_ms=10_000.0,
                        flash_duration_ms=10_000.0,
                        duration_ms=30_000.0,
                        fleet_workers=2, fleet_partitions=3),
}


def scale_serve_config(scale: ServeScale, servers: int,
                       seed: int = 42) -> ServeConfig:
    return ServeConfig(arrival="flash-crowd",
                       arrival_rate_tps=scale.arrival_rate_tps,
                       flash_multiplier=scale.flash_multiplier,
                       flash_start_ms=scale.flash_start_ms,
                       flash_duration_ms=scale.flash_duration_ms,
                       duration_ms=scale.duration_ms,
                       servers=servers, seed=seed)


def run_scale_point(arm: str, scale: ServeScale, servers: int,
                    seed: int = 42) -> BenchPoint:
    """One arm at one pool width, on a freshly built database."""
    if arm not in SCALE_ARMS:
        raise ValueError(f"unknown arm {arm!r}; choose from {SCALE_ARMS}")
    workload = WorkloadConfig(num_partitions=scale.num_partitions,
                              objects_per_partition=
                              scale.objects_per_partition,
                              mpl=servers, seed=seed)
    system = SystemConfig(deadlock_detection="waits-for")
    db, layout = Database.with_workload(workload, system=system)
    engine = db.engine
    layer = ServingLayer(engine, layout,
                         scale_serve_config(scale, servers, seed=seed),
                         workload)
    fleet = governor = None
    if arm != "nr":
        # A cold advisor still yields deterministic claims (rank order
        # degenerates to fragmentation + partition id).
        advisor = ClusteringAdvisor(AffinityGraph())
        claims = advisor.claims(
            engine, scale.fleet_partitions,
            candidates=[pid for pid in engine.store.partition_ids()
                        if pid != 0])
        if arm == "fleet-gov":
            governor = ReorgGovernor(engine.sim, GovernorConfig())
        fleet = ReorgFleet(engine, claims,
                           FleetConfig(workers=scale.fleet_workers),
                           governor=governor, layout=layout)
    metrics = layer.run(fleet=fleet, governor=governor)
    metrics.algorithm = arm
    report = db.verify_integrity()
    if not report.ok:
        raise AssertionError(
            f"integrity violated after scale arm {arm!r}: "
            f"{report.problems()[:3]}")
    overrides: Dict[str, object] = {"servers": servers}
    if fleet is not None:
        overrides["partitions_reorganized"] = len(fleet.completed)
        overrides["lease_takeovers"] = fleet.leases.takeovers
    if governor is not None:
        overrides["governor_paced"] = governor.paced
        overrides["governor_paused_ms"] = round(governor.paused_ms, 1)
        overrides["governor_breaches"] = governor.breaches
    return BenchPoint(algorithm=arm, metrics=metrics, overrides=overrides,
                      counters=engine.sim.counters())


def run_scale_experiment(scale_name: str, seed: int = 42, progress=None,
                         scale: ServeScale = None
                         ) -> Dict[int, Dict[str, BenchPoint]]:
    """The full sweep: every arm at every pool width."""
    scale = scale or SERVE_SCALES[scale_name]
    rows: Dict[int, Dict[str, BenchPoint]] = {}
    for servers in scale.server_points:
        rows[servers] = {}
        for arm in SCALE_ARMS:
            point = run_scale_point(arm, scale, servers, seed=seed)
            rows[servers][arm] = point
            if progress is not None:
                m = point.metrics
                progress(f"servers={servers} {arm}: "
                         f"{m.throughput_tps:.1f} tps, "
                         f"p99 {m.p99_response_ms:.0f} ms, "
                         f"shed {m.shed_rate:.1%}")
    return rows


def interference_pct(rows: Dict[int, Dict[str, BenchPoint]], servers: int,
                     arm: str) -> float:
    """The arm's p99 degradation over ``nr`` at one point, percent."""
    base = rows[servers]["nr"].metrics.p99_response_ms
    p99 = rows[servers][arm].metrics.p99_response_ms
    if base <= 0:
        return 0.0
    return (p99 - base) / base * 100.0


def format_scale(rows: Dict[int, Dict[str, BenchPoint]]) -> str:
    """The figure's data tables plus the interference verdict."""
    xs = sorted(rows)
    parts = [format_series(
        "scale sweep - Throughput (tps)", "servers", xs,
        {arm.upper(): [rows[x][arm].metrics.throughput_tps for x in xs]
         for arm in SCALE_ARMS})]
    parts.append(format_series(
        "scale sweep - p99 Response Time (ms)", "servers", xs,
        {arm.upper(): [rows[x][arm].metrics.p99_response_ms for x in xs]
         for arm in SCALE_ARMS},
        y_format="{:9.0f}"))
    parts.append(format_series(
        "scale sweep - Shed Rate", "servers", xs,
        {arm.upper(): [rows[x][arm].metrics.shed_rate for x in xs]
         for arm in SCALE_ARMS},
        y_format="{:9.4f}"))
    parts.append(format_series(
        "scale sweep - Reorganizer Interference (p99 degradation vs NR, %)",
        "servers", xs,
        {arm.upper(): [interference_pct(rows, x, arm) for x in xs]
         for arm in ("fleet", "fleet-gov")},
        y_format="{:9.1f}"))
    governed = sum(interference_pct(rows, x, "fleet-gov") for x in xs)
    ungoverned = sum(interference_pct(rows, x, "fleet") for x in xs)
    verdict = ("governor wins" if governed < ungoverned
               else "GOVERNOR DOES NOT WIN")
    parts.append(f"{verdict}: governed p99 interference "
                 f"{governed / len(xs):.1f}% vs ungoverned "
                 f"{ungoverned / len(xs):.1f}% (mean over sweep)")
    return "\n\n".join(parts)
