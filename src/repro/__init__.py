"""repro — On-line Reorganization in Object Databases (SIGMOD 2000).

A from-scratch reproduction of Lakhamraju, Rastogi, Seshadri and
Sudarshan's Incremental Reorganization Algorithm (IRA) and its
performance study: an object storage manager with *physical* references
(slotted pages, WAL/ARIES recovery, strict-2PL lock manager, extendible
hashing, ERT/TRT maintained by a log analyzer), the IRA and its two-lock
extension, the PQR and off-line baselines, on-line garbage collection,
the paper's workload, and a benchmark harness for every table and figure.

Quick start::

    from repro import Database, WorkloadConfig

    db, layout = Database.with_workload(WorkloadConfig(
        num_partitions=2, objects_per_partition=340, mpl=4))
    stats = db.compact(partition_id=1)
    assert db.verify_integrity().ok
"""

from .config import (
    ExperimentConfig,
    FleetConfig,
    GovernorConfig,
    ReorgConfig,
    ServeConfig,
    SystemConfig,
    WorkloadConfig,
)
from .core import (
    ClusteringPlan,
    CompactionPlan,
    CopyingGarbageCollector,
    EvacuationPlan,
    GcStats,
    IncrementalReorganizer,
    MarkAndSweepCollector,
    OfflineReorganizer,
    ParentLocalityPlan,
    PartitionQuiesceReorganizer,
    RelocationPlan,
    ReorgStats,
    TwoLockReorganizer,
)
from .core import WalReorgStateStore, resume_from_wal
from .cluster import (
    AffinityClusteringPlan,
    AffinityGraph,
    ClusteringAdvisor,
    ClusterTracer,
    RandomPlacementPlan,
)
from .database import Database
from .engine import CrashImage, IntegrityReport, StorageEngine
from .faults import FaultInjector, FaultPlan, chaos_sweep, corruption_sweep
from .errors import (
    EngineError,
    ReferenceProtocolError,
    ReorganizationError,
    TransactionStateError,
)
from .concurrency import DeadlockError, LockMode, LockTimeoutError
from .serve import ReorgFleet, ReorgGovernor, ServeMetrics, ServingLayer
from .storage import CorruptionError, ObjectImage, Oid
from .storage.scrub import Scrubber, ScrubStats
from .verify import VerifyReport, deep_verify
from .workload import (
    ExperimentMetrics,
    GraphLayout,
    WorkloadDriver,
    build_database,
)

__version__ = "1.0.0"

__all__ = [
    "AffinityClusteringPlan",
    "AffinityGraph",
    "ClusterTracer",
    "ClusteringAdvisor",
    "ClusteringPlan",
    "DeadlockError",
    "FleetConfig",
    "GovernorConfig",
    "RandomPlacementPlan",
    "CompactionPlan",
    "CopyingGarbageCollector",
    "CorruptionError",
    "CrashImage",
    "Database",
    "EngineError",
    "EvacuationPlan",
    "ExperimentConfig",
    "ExperimentMetrics",
    "FaultInjector",
    "FaultPlan",
    "GcStats",
    "GraphLayout",
    "IncrementalReorganizer",
    "IntegrityReport",
    "LockMode",
    "LockTimeoutError",
    "MarkAndSweepCollector",
    "ObjectImage",
    "OfflineReorganizer",
    "Oid",
    "ParentLocalityPlan",
    "PartitionQuiesceReorganizer",
    "ReferenceProtocolError",
    "RelocationPlan",
    "ReorgConfig",
    "ReorgFleet",
    "ReorgGovernor",
    "ReorgStats",
    "ReorganizationError",
    "ScrubStats",
    "Scrubber",
    "ServeConfig",
    "ServeMetrics",
    "ServingLayer",
    "StorageEngine",
    "SystemConfig",
    "TransactionStateError",
    "TwoLockReorganizer",
    "VerifyReport",
    "WalReorgStateStore",
    "WorkloadConfig",
    "WorkloadDriver",
    "build_database",
    "chaos_sweep",
    "corruption_sweep",
    "deep_verify",
    "resume_from_wal",
    "__version__",
]
