"""Write-ahead logging, checkpoints and ARIES-style restart recovery."""

from .apply import apply_record, invert_record, record_page_key
from .checkpoint import SnapshotStore
from .log import LogManager, frame_record, scan_frames
from .records import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    ClrRecord,
    CommitRecord,
    EndRecord,
    FLAG_SYSTEM_TXN,
    LogRecord,
    ObjCreateRecord,
    ObjDeleteRecord,
    PayloadUpdateRecord,
    RefUpdateRecord,
    ReorgProgressRecord,
    TpcDecisionRecord,
    TpcEndRecord,
    TpcPrepareRecord,
    decode_record,
)
from .recovery import RecoveryManager, RecoveryStats

__all__ = [
    "AbortRecord",
    "BeginRecord",
    "CheckpointRecord",
    "ClrRecord",
    "CommitRecord",
    "EndRecord",
    "FLAG_SYSTEM_TXN",
    "LogManager",
    "LogRecord",
    "ObjCreateRecord",
    "ObjDeleteRecord",
    "PayloadUpdateRecord",
    "RecoveryManager",
    "RecoveryStats",
    "RefUpdateRecord",
    "ReorgProgressRecord",
    "SnapshotStore",
    "TpcDecisionRecord",
    "TpcEndRecord",
    "TpcPrepareRecord",
    "apply_record",
    "decode_record",
    "frame_record",
    "invert_record",
    "record_page_key",
    "scan_frames",
]
