"""Checkpoints: durable snapshots paired with CHECKPOINT log records.

The experiments keep the database memory-resident (paper §5.3), so the
"disk image" a crash leaves behind is the flushed log plus whatever
checkpoints were taken.  A checkpoint here is *sharp*: a consistent copy
of all pages, the ERTs, and the transaction counter, taken atomically in
simulated time and named by a snapshot id recorded in the log.

The paper discusses the spectrum for the ERT (§4.4): log it, reconstruct
it at restart with a full scan, or checkpoint it and roll forward —
we implement the checkpoint-and-roll-forward option (the intermediate
solution), with full reconstruction also available as a fallback.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class SnapshotStore:
    """Named durable snapshots (stands in for checkpoint files on disk).

    Snapshots survive crashes; recovery loads the one referenced by the
    last CHECKPOINT record found in the durable log.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[int, Dict[str, Any]] = {}
        self._next_id = 1

    def save(self, payload: Dict[str, Any]) -> int:
        snapshot_id = self._next_id
        self._next_id += 1
        self._snapshots[snapshot_id] = payload
        return snapshot_id

    def load(self, snapshot_id: int) -> Dict[str, Any]:
        try:
            return self._snapshots[snapshot_id]
        except KeyError:
            raise KeyError(f"no snapshot {snapshot_id}") from None

    def has(self, snapshot_id: int) -> bool:
        return snapshot_id in self._snapshots

    def ids(self):
        """Snapshot ids, oldest first."""
        return sorted(self._snapshots)

    def items(self):
        """``(snapshot_id, payload)`` pairs, oldest first."""
        return [(sid, self._snapshots[sid]) for sid in sorted(self._snapshots)]

    def latest(self) -> Optional[int]:
        """The newest snapshot id, or ``None`` when empty."""
        return max(self._snapshots) if self._snapshots else None

    def prune(self, keep_id: Optional[int]) -> int:
        """Drop all snapshots except ``keep_id``; returns how many dropped."""
        doomed = [sid for sid in self._snapshots if sid != keep_id]
        for sid in doomed:
            del self._snapshots[sid]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._snapshots)
