"""Log record types and their binary serialization.

Transactions follow WAL (paper §2): the undo information is logged before
an update is applied, and the redo information before the lock on the
object is released.  Records are encoded to real bytes — recovery decodes
the durable byte stream, so nothing can leak through in-memory object
sharing.

Reference inserts and deletes are both expressed as ``RefUpdateRecord``
(old child ``None`` → insert, new child ``None`` → delete), which is also
the record the log analyzer mines to maintain the ERT and TRT (§3.3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..storage.errors import LogCorruptionError
from ..storage.oid import NULL_REF, Oid

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
# Combined packers for the hot paths: every appended record pays the
# header, and PAYLOAD_UPDATE/REF_UPDATE dominate workload logging.  The
# combined formats are concatenations of the original little-endian
# fields ("<" disables padding), so the encoded bytes are identical.
_HDR = struct.Struct("<BQQ")            # kind, tid, prev_lsn
_REF_BODY = struct.Struct("<QHQQ")      # parent, slot, old_child, new_child
_PAYLOAD_HEAD = struct.Struct("<QII")   # oid, offset, len(before)
# Whole-record packers (header + body in one C call) for the record
# kinds the workload appends constantly; same field-by-field layout.
_BEGIN_FULL = struct.Struct("<BQQBH")   # hdr + flags, reorg_partition
_REF_FULL = struct.Struct("<BQQQHQQ")   # hdr + parent, slot, old, new
_PAYLOAD_FULL = struct.Struct("<BQQQII")  # hdr + oid, offset, len(before)

KIND_BEGIN = 1
KIND_COMMIT = 2
KIND_ABORT = 3
KIND_END = 4
KIND_OBJ_CREATE = 5
KIND_OBJ_DELETE = 6
KIND_PAYLOAD_UPDATE = 7
KIND_REF_UPDATE = 8
KIND_CLR = 9
KIND_CHECKPOINT = 10
KIND_REORG_PROGRESS = 11
KIND_TPC_PREPARE = 12
KIND_TPC_DECISION = 13
KIND_TPC_END = 14
KIND_TAIL_DELTA = 15
KIND_MERGE_INSTALL = 16

#: BEGIN flag: the transaction is a system transaction (reorganizer /
#: utility).  The log analyzer maintains the ERT for system transactions
#: like any other; a reorganizer's own transactions additionally carry
#: the partition they reorganize (``reorg_partition``) so that *that*
#: partition's TRT skips them — the reorganizer knows about its own
#: updates (§4.2 discussion) — while every other TRT still sees them
#: (two concurrent reorganizations of mutually-referencing partitions
#: must observe each other's reference patches).
FLAG_SYSTEM_TXN = 0x01

#: ``reorg_partition`` value meaning "not a reorganizer's transaction".
NO_REORG_PARTITION = 0xFFFF


def _pack_oid(oid: Optional[Oid]) -> bytes:
    return _U64.pack(NULL_REF if oid is None else oid.pack())


def _unpack_oid(data: bytes, offset: int) -> Tuple[Optional[Oid], int]:
    (packed,) = _U64.unpack_from(data, offset)
    oid = None if packed == NULL_REF else Oid.unpack(packed)
    return oid, offset + _U64.size


def _pack_bytes(payload: bytes) -> bytes:
    return _U32.pack(len(payload)) + payload


def _unpack_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    (length,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    if offset + length > len(data):
        raise LogCorruptionError(
            f"embedded blob of {length}B overruns the {len(data)}B record")
    return data[offset:offset + length], offset + length


@dataclass(unsafe_hash=True)
class LogRecord:
    """Base class; ``lsn`` is stamped by the log manager at append time.

    Records are immutable by convention (only :meth:`with_lsn` writes to
    one, exactly once).  They are deliberately *not* ``frozen=True``
    dataclasses: the frozen ``__init__`` pays an ``object.__setattr__``
    per field, and record construction brackets every logged update on
    the benchmark's hottest path.  ``unsafe_hash=True`` keeps them
    hashable exactly as the frozen variant was.
    """

    tid: int
    prev_lsn: int
    lsn: int = field(default=0, compare=False)

    kind: int = 0  # overridden per subclass

    def encode(self) -> bytes:
        return _HDR.pack(self.kind, self.tid, self.prev_lsn) + \
            self._encode_body()

    def _encode_body(self) -> bytes:
        return b""

    def with_lsn(self, lsn: int) -> "LogRecord":
        self.lsn = lsn
        return self


@dataclass(unsafe_hash=True)
class BeginRecord(LogRecord):
    flags: int = 0
    reorg_partition: int = NO_REORG_PARTITION
    kind: int = KIND_BEGIN

    @property
    def is_system(self) -> bool:
        return bool(self.flags & FLAG_SYSTEM_TXN)

    @property
    def owner_partition(self) -> Optional[int]:
        """Partition this reorganizer transaction works on, if any."""
        if self.reorg_partition == NO_REORG_PARTITION:
            return None
        return self.reorg_partition

    def encode(self) -> bytes:
        return _BEGIN_FULL.pack(KIND_BEGIN, self.tid, self.prev_lsn,
                                self.flags, self.reorg_partition)

    def _encode_body(self) -> bytes:
        return _U8.pack(self.flags) + _U16.pack(self.reorg_partition)


@dataclass(unsafe_hash=True)
class CommitRecord(LogRecord):
    kind: int = KIND_COMMIT

    def encode(self) -> bytes:
        return _HDR.pack(KIND_COMMIT, self.tid, self.prev_lsn)


@dataclass(unsafe_hash=True)
class AbortRecord(LogRecord):
    kind: int = KIND_ABORT

    def encode(self) -> bytes:
        return _HDR.pack(KIND_ABORT, self.tid, self.prev_lsn)


@dataclass(unsafe_hash=True)
class EndRecord(LogRecord):
    kind: int = KIND_END

    def encode(self) -> bytes:
        return _HDR.pack(KIND_END, self.tid, self.prev_lsn)


@dataclass(unsafe_hash=True)
class ObjCreateRecord(LogRecord):
    """A new object materialized at ``oid`` with the given full image."""

    oid: Oid = None  # type: ignore[assignment]
    image: bytes = b""
    kind: int = KIND_OBJ_CREATE

    def _encode_body(self) -> bytes:
        return _pack_oid(self.oid) + _pack_bytes(self.image)


@dataclass(unsafe_hash=True)
class ObjDeleteRecord(LogRecord):
    """An object freed; ``before_image`` allows undo to recreate it."""

    oid: Oid = None  # type: ignore[assignment]
    before_image: bytes = b""
    kind: int = KIND_OBJ_DELETE

    def _encode_body(self) -> bytes:
        return _pack_oid(self.oid) + _pack_bytes(self.before_image)


@dataclass(unsafe_hash=True)
class PayloadUpdateRecord(LogRecord):
    """In-place payload bytes overwrite: before/after images at an offset."""

    oid: Oid = None  # type: ignore[assignment]
    offset: int = 0
    before: bytes = b""
    after: bytes = b""
    kind: int = KIND_PAYLOAD_UPDATE

    def encode(self) -> bytes:
        before = self.before
        after = self.after
        return (_PAYLOAD_FULL.pack(
                    KIND_PAYLOAD_UPDATE, self.tid, self.prev_lsn,
                    NULL_REF if self.oid is None else self.oid.pack(),
                    self.offset, len(before))
                + before + _U32.pack(len(after)) + after)

    def _encode_body(self) -> bytes:
        return (_PAYLOAD_HEAD.pack(
                    NULL_REF if self.oid is None else self.oid.pack(),
                    self.offset, len(self.before))
                + self.before + _U32.pack(len(self.after)) + self.after)


@dataclass(unsafe_hash=True)
class RefUpdateRecord(LogRecord):
    """Reference slot ``slot`` of ``parent`` changed old_child → new_child.

    ``old_child is None``  → a pointer *insert*;
    ``new_child is None``  → a pointer *delete*;
    both non-None          → an atomic re-point (delete + insert).
    """

    parent: Oid = None  # type: ignore[assignment]
    slot: int = 0
    old_child: Optional[Oid] = None
    new_child: Optional[Oid] = None
    kind: int = KIND_REF_UPDATE

    def encode(self) -> bytes:
        return _REF_FULL.pack(
            KIND_REF_UPDATE, self.tid, self.prev_lsn,
            NULL_REF if self.parent is None else self.parent.pack(),
            self.slot,
            NULL_REF if self.old_child is None else self.old_child.pack(),
            NULL_REF if self.new_child is None else self.new_child.pack())

    def _encode_body(self) -> bytes:
        return _REF_BODY.pack(
            NULL_REF if self.parent is None else self.parent.pack(),
            self.slot,
            NULL_REF if self.old_child is None else self.old_child.pack(),
            NULL_REF if self.new_child is None else self.new_child.pack())


@dataclass(unsafe_hash=True)
class ClrRecord(LogRecord):
    """Compensation record: the redo-only action performed by an undo step.

    ``undone_lsn`` is the LSN of the record this CLR compensates;
    ``undo_next_lsn`` points at the next record of the transaction still to
    be undone, so a crash during rollback never undoes twice.  ``action``
    is the encoded physical record (OBJ_CREATE/OBJ_DELETE/PAYLOAD_UPDATE/
    REF_UPDATE) describing what the undo did.
    """

    undo_next_lsn: int = 0
    undone_lsn: int = 0
    action: bytes = b""
    kind: int = KIND_CLR

    def _encode_body(self) -> bytes:
        return (_U64.pack(self.undo_next_lsn) + _U64.pack(self.undone_lsn)
                + _pack_bytes(self.action))

    def decode_action(self) -> LogRecord:
        return decode_record(self.action)


@dataclass(unsafe_hash=True)
class CheckpointRecord(LogRecord):
    """Sharp checkpoint marker.

    ``snapshot_id`` names an entry in the snapshot store holding the full
    database image at this LSN; ``active_txns`` maps each in-flight
    transaction to its last LSN so analysis can seed the transaction table.
    """

    snapshot_id: int = 0
    active_txns: Tuple[Tuple[int, int], ...] = ()
    kind: int = KIND_CHECKPOINT

    def _encode_body(self) -> bytes:
        parts = [_U64.pack(self.snapshot_id), _U32.pack(len(self.active_txns))]
        for txn_tid, last_lsn in self.active_txns:
            parts.append(_U64.pack(txn_tid))
            parts.append(_U64.pack(last_lsn))
        return b"".join(parts)

    def active_txn_table(self) -> Dict[int, int]:
        return dict(self.active_txns)


@dataclass(unsafe_hash=True)
class ReorgProgressRecord(LogRecord):
    """Reorganizer progress checkpoint carried in the WAL (§4.4).

    ``state`` is an encoded :class:`~repro.core.checkpointing.ReorgState`
    (plan cursor, migrated-object map, TRT contents); an empty ``state``
    is a tombstone marking the reorganization complete.  Logged with
    ``tid == 0`` like CHECKPOINT records, so analysis never treats the
    writer as a loser transaction and redo never replays it — only the
    resume path reads these records back.
    """

    partition_id: int = 0
    algorithm: str = ""
    state: bytes = b""
    kind: int = KIND_REORG_PROGRESS

    @property
    def is_tombstone(self) -> bool:
        return not self.state

    def _encode_body(self) -> bytes:
        return (_U16.pack(self.partition_id)
                + _pack_bytes(self.algorithm.encode("utf-8"))
                + _pack_bytes(self.state))


@dataclass(unsafe_hash=True)
class TpcPrepareRecord(LogRecord):
    """Participant branch of global transaction ``gid`` voted YES.

    Force-logged (presumed-abort 2PC) after the participant applied and
    WAL-logged its share of the reference patch, *before* the vote goes
    on the wire.  A crash leaves the branch **in-doubt**: analysis must
    neither commit nor undo it — the patched pages stay locked until the
    coordinator (``coordinator`` node id) resolves ``gid``.
    """

    gid: str = ""
    coordinator: int = 0
    kind: int = KIND_TPC_PREPARE

    def _encode_body(self) -> bytes:
        return (_pack_bytes(self.gid.encode("utf-8"))
                + _U16.pack(self.coordinator))


@dataclass(unsafe_hash=True)
class TpcDecisionRecord(LogRecord):
    """Coordinator's durable decision for global transaction ``gid``.

    ``commit=True`` is the global commit point; it is force-logged
    before any COMMIT goes to a participant.  Under presumed abort an
    abort decision need not be durable — a coordinator with no decision
    record for ``gid`` answers "abort" — but one is still logged on the
    explicit-abort path so the failure matrix is auditable.  Analysis
    treats a durable commit decision as committing the coordinator's
    local branch even if the crash beat the branch's own COMMIT record
    into the log (the decision *is* the commit point).
    """

    gid: str = ""
    commit: bool = False
    kind: int = KIND_TPC_DECISION

    def _encode_body(self) -> bytes:
        return (_pack_bytes(self.gid.encode("utf-8"))
                + _U8.pack(1 if self.commit else 0))


@dataclass(unsafe_hash=True)
class TpcEndRecord(LogRecord):
    """All participants acked the decision for ``gid``; the coordinator
    forgets the global transaction.  Lazy (never force-logged): losing
    it only costs a recovered coordinator a redundant resolution answer.
    """

    gid: str = ""
    kind: int = KIND_TPC_END

    def _encode_body(self) -> bytes:
        return _pack_bytes(self.gid.encode("utf-8"))


@dataclass(unsafe_hash=True)
class TailDeltaRecord(LogRecord):
    """One MVCC commit's tail versions (:mod:`repro.mvcc`).

    A snapshot transaction's whole write set is carried in a single
    record — the atomic durability point of the commit: either the
    record is durable and the commit happened, or a torn tail truncates
    it and the commit never existed.  ``writes`` pairs each *logical*
    OID with the full after-image it committed at ``commit_ts``.

    Logged with ``tid == 0`` like CHECKPOINT/REORG_PROGRESS records:
    analysis never sees a loser, redo never replays it against pages
    (tail versions live above the physical store); only the MVCC tier
    rebuild reads these back, in LSN order, to reconstruct the version
    chains.
    """

    commit_ts: int = 0
    writes: Tuple[Tuple[Oid, bytes], ...] = ()
    kind: int = KIND_TAIL_DELTA

    def _encode_body(self) -> bytes:
        parts = [_U64.pack(self.commit_ts), _U32.pack(len(self.writes))]
        for oid, image in self.writes:
            parts.append(_pack_oid(oid))
            parts.append(_pack_bytes(image))
        return b"".join(parts)


@dataclass(unsafe_hash=True)
class MergeInstallRecord(LogRecord):
    """The merge reorganizer's atomic epoch flip (:mod:`repro.mvcc`).

    ``flips`` maps each merged logical OID to the freshly-placed base
    object now carrying its consolidated image; ``frees`` lists the old
    base addresses to reclaim once the GC watermark passes
    ``merge_ts``.  Logged with ``tid == 0`` *inside* the merge's system
    transaction (``owner_tid``), before that transaction commits: the
    tier rebuild honors the flip only when ``owner_tid`` committed, so
    a crash before the commit point undoes the new bases physically and
    leaves the lineage untouched — the flip is atomic with the commit.
    """

    owner_tid: int = 0
    partition_id: int = 0
    merge_ts: int = 0
    flips: Tuple[Tuple[Oid, Oid], ...] = ()
    frees: Tuple[Oid, ...] = ()
    kind: int = KIND_MERGE_INSTALL

    def _encode_body(self) -> bytes:
        parts = [_U64.pack(self.owner_tid), _U16.pack(self.partition_id),
                 _U64.pack(self.merge_ts), _U32.pack(len(self.flips))]
        for logical, physical in self.flips:
            parts.append(_pack_oid(logical))
            parts.append(_pack_oid(physical))
        parts.append(_U32.pack(len(self.frees)))
        for oid in self.frees:
            parts.append(_pack_oid(oid))
        return b"".join(parts)


def decode_record(data: bytes, lsn: int = 0) -> LogRecord:
    """Decode one encoded record (inverse of ``LogRecord.encode``).

    Malformed bytes — truncated fields, blobs overrunning the record,
    unknown kinds — raise :class:`LogCorruptionError` rather than letting
    ``struct.error``/``IndexError`` escape, so callers can tell
    corruption apart from implementation bugs.
    """
    try:
        return _decode_record(data, lsn)
    except LogCorruptionError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise LogCorruptionError(
            f"malformed log record bytes ({len(data)}B): {exc}") from exc


def _decode_record(data: bytes, lsn: int) -> LogRecord:
    kind, tid, prev_lsn = _HDR.unpack_from(data, 0)
    offset = _HDR.size
    record: LogRecord
    if kind == KIND_BEGIN:
        (flags,) = _U8.unpack_from(data, offset)
        (reorg_partition,) = _U16.unpack_from(data, offset + 1)
        record = BeginRecord(tid, prev_lsn, flags=flags,
                             reorg_partition=reorg_partition)
    elif kind == KIND_COMMIT:
        record = CommitRecord(tid, prev_lsn)
    elif kind == KIND_ABORT:
        record = AbortRecord(tid, prev_lsn)
    elif kind == KIND_END:
        record = EndRecord(tid, prev_lsn)
    elif kind == KIND_OBJ_CREATE:
        oid, offset = _unpack_oid(data, offset)
        image, offset = _unpack_bytes(data, offset)
        record = ObjCreateRecord(tid, prev_lsn, oid=oid, image=image)
    elif kind == KIND_OBJ_DELETE:
        oid, offset = _unpack_oid(data, offset)
        image, offset = _unpack_bytes(data, offset)
        record = ObjDeleteRecord(tid, prev_lsn, oid=oid, before_image=image)
    elif kind == KIND_PAYLOAD_UPDATE:
        oid, offset = _unpack_oid(data, offset)
        (byte_offset,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        before, offset = _unpack_bytes(data, offset)
        after, offset = _unpack_bytes(data, offset)
        record = PayloadUpdateRecord(tid, prev_lsn, oid=oid,
                                     offset=byte_offset,
                                     before=before, after=after)
    elif kind == KIND_REF_UPDATE:
        parent, offset = _unpack_oid(data, offset)
        (slot,) = _U16.unpack_from(data, offset)
        offset += _U16.size
        old_child, offset = _unpack_oid(data, offset)
        new_child, offset = _unpack_oid(data, offset)
        record = RefUpdateRecord(tid, prev_lsn, parent=parent, slot=slot,
                                 old_child=old_child, new_child=new_child)
    elif kind == KIND_CLR:
        (undo_next,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (undone,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        action, offset = _unpack_bytes(data, offset)
        record = ClrRecord(tid, prev_lsn, undo_next_lsn=undo_next,
                           undone_lsn=undone, action=action)
    elif kind == KIND_CHECKPOINT:
        (snapshot_id,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        actives = []
        for _ in range(count):
            (txn_tid,) = _U64.unpack_from(data, offset)
            offset += _U64.size
            (last_lsn,) = _U64.unpack_from(data, offset)
            offset += _U64.size
            actives.append((txn_tid, last_lsn))
        record = CheckpointRecord(tid, prev_lsn, snapshot_id=snapshot_id,
                                  active_txns=tuple(actives))
    elif kind == KIND_REORG_PROGRESS:
        (partition_id,) = _U16.unpack_from(data, offset)
        offset += _U16.size
        algorithm, offset = _unpack_bytes(data, offset)
        state, offset = _unpack_bytes(data, offset)
        record = ReorgProgressRecord(tid, prev_lsn,
                                     partition_id=partition_id,
                                     algorithm=algorithm.decode("utf-8"),
                                     state=state)
    elif kind == KIND_TPC_PREPARE:
        gid, offset = _unpack_bytes(data, offset)
        (coordinator,) = _U16.unpack_from(data, offset)
        record = TpcPrepareRecord(tid, prev_lsn, gid=gid.decode("utf-8"),
                                  coordinator=coordinator)
    elif kind == KIND_TPC_DECISION:
        gid, offset = _unpack_bytes(data, offset)
        (flag,) = _U8.unpack_from(data, offset)
        record = TpcDecisionRecord(tid, prev_lsn, gid=gid.decode("utf-8"),
                                   commit=bool(flag))
    elif kind == KIND_TPC_END:
        gid, offset = _unpack_bytes(data, offset)
        record = TpcEndRecord(tid, prev_lsn, gid=gid.decode("utf-8"))
    elif kind == KIND_TAIL_DELTA:
        (commit_ts,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        writes = []
        for _ in range(count):
            oid, offset = _unpack_oid(data, offset)
            image, offset = _unpack_bytes(data, offset)
            writes.append((oid, image))
        record = TailDeltaRecord(tid, prev_lsn, commit_ts=commit_ts,
                                 writes=tuple(writes))
    elif kind == KIND_MERGE_INSTALL:
        (owner_tid,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (partition_id,) = _U16.unpack_from(data, offset)
        offset += _U16.size
        (merge_ts,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        (count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        flips = []
        for _ in range(count):
            logical, offset = _unpack_oid(data, offset)
            physical, offset = _unpack_oid(data, offset)
            flips.append((logical, physical))
        (count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        frees = []
        for _ in range(count):
            oid, offset = _unpack_oid(data, offset)
            frees.append(oid)
        record = MergeInstallRecord(tid, prev_lsn, owner_tid=owner_tid,
                                    partition_id=partition_id,
                                    merge_ts=merge_ts, flips=tuple(flips),
                                    frees=tuple(frees))
    else:
        raise LogCorruptionError(f"unknown log record kind {kind}")
    return record.with_lsn(lsn)


#: Record kinds that describe physical page changes (redo/undo-able).
PHYSICAL_KINDS = frozenset({
    KIND_OBJ_CREATE, KIND_OBJ_DELETE, KIND_PAYLOAD_UPDATE, KIND_REF_UPDATE,
})
