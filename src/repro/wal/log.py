"""The log manager.

Appends buffer records in memory; ``flush`` makes a prefix durable by
doing (simulated) I/O on the log-disk resource.  Committing transactions
that arrive while another flush is in flight piggyback on it — classic
group commit, which is why the paper's throughput does not peak at MPL 1
("there is some CPU I/O parallelism to be exploited", §5.3.1).

Subscribers (the log analyzer, §3.3) are notified synchronously at append
time: "a separate process called log analyzer [processes the logs] as soon
as they are handed over to the logging subsystem".  Synchronous dispatch
preserves the paper's ordering requirement that a pointer delete is noted
in the TRT before the pointer is physically deleted (the undo record is
appended before the update is applied, per WAL).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterator, List, Optional

from ..sim import Delay, Resource, Simulator
from ..storage.errors import TransientIOError
from .records import LogRecord, decode_record

Subscriber = Callable[[LogRecord], None]

#: Fault-injection hook: called with the flush-target LSN before the
#: flush takes effect; raising :class:`TransientIOError` fails that disk
#: write (the manager retries with capped exponential backoff while still
#: holding the log disk).
FlushFaultHook = Callable[[int], None]


class LogManager:
    """Append-only log with group-commit flushing.

    LSNs are 1-based and dense: record ``i`` (0-based) has LSN ``i + 1``.
    """

    def __init__(self, sim: Simulator, log_disk: Resource,
                 flush_time_ms: float,
                 io_retry_limit: int = 4, io_retry_backoff_ms: float = 5.0):
        self.sim = sim
        self.log_disk = log_disk
        self.flush_time_ms = flush_time_ms
        self.io_retry_limit = io_retry_limit
        self.io_retry_backoff_ms = io_retry_backoff_ms
        self.fault_hook: Optional[FlushFaultHook] = None
        self._encoded: List[bytes] = []   # the byte stream, by LSN - 1
        self._flushed_lsn = 0
        self._subscribers: List[Subscriber] = []
        self.flush_count = 0
        self.io_faults = 0
        self.io_retries = 0

    # -- append / read -------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return len(self._encoded)

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def append(self, record: LogRecord) -> int:
        """Buffer a record; returns its LSN.  Does not flush."""
        self._encoded.append(record.encode())
        lsn = len(self._encoded)
        record.with_lsn(lsn)
        for subscriber in self._subscribers:
            subscriber(record)
        return lsn

    def read(self, lsn: int) -> LogRecord:
        if not 1 <= lsn <= len(self._encoded):
            raise IndexError(f"no log record with lsn {lsn}")
        return decode_record(self._encoded[lsn - 1], lsn=lsn)

    def records(self, from_lsn: int = 1,
                upto_lsn: Optional[int] = None) -> Iterator[LogRecord]:
        """Decode records with ``from_lsn <= lsn <= upto_lsn``."""
        upto = upto_lsn if upto_lsn is not None else len(self._encoded)
        for index in range(from_lsn - 1, upto):
            yield decode_record(self._encoded[index], lsn=index + 1)

    # -- durability -----------------------------------------------------------

    def flush(self, upto_lsn: Optional[int] = None) -> Generator[Any, Any, None]:
        """Make the log durable up to ``upto_lsn`` (default: everything).

        Generator — costs one log-disk I/O unless a concurrent flush
        already covered the requested LSN (group commit).
        """
        target = upto_lsn if upto_lsn is not None else len(self._encoded)
        if self._flushed_lsn >= target:
            return
        yield from self.log_disk.acquire()
        try:
            if self._flushed_lsn >= target:
                return  # piggybacked on the flush we just waited behind
            for attempt in range(self.io_retry_limit + 1):
                yield Delay(self.flush_time_ms)
                if self.fault_hook is None:
                    break
                try:
                    self.fault_hook(target)
                    break
                except TransientIOError:
                    self.io_faults += 1
                    if attempt >= self.io_retry_limit:
                        raise
                    self.io_retries += 1
                    yield Delay(self.io_retry_backoff_ms * (2 ** attempt))
            # Everything appended while we were queued rides along.
            self._flushed_lsn = len(self._encoded)
            self.flush_count += 1
        finally:
            self.log_disk.release()

    def flush_now(self) -> None:
        """Zero-time flush for bulk-loading and test setup paths."""
        self._flushed_lsn = len(self._encoded)

    # -- crash surface ----------------------------------------------------------

    def durable_bytes(self) -> List[bytes]:
        """The byte stream that survives a crash (flushed prefix only)."""
        return list(self._encoded[:self._flushed_lsn])

    @classmethod
    def from_durable(cls, sim: Simulator, log_disk: Resource,
                     flush_time_ms: float,
                     durable: List[bytes]) -> "LogManager":
        """Rebuild a log manager from a crash-surviving byte stream."""
        log = cls(sim, log_disk, flush_time_ms)
        log._encoded = list(durable)
        log._flushed_lsn = len(durable)
        return log

    # -- subscribers -------------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.remove(subscriber)

    def __repr__(self) -> str:
        return (f"<LogManager lsn={self.last_lsn} "
                f"flushed={self._flushed_lsn}>")
