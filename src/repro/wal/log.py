"""The log manager.

Appends buffer records in memory; ``flush`` makes a prefix durable by
doing (simulated) I/O on the log-disk resource.  Committing transactions
that arrive while another flush is in flight piggyback on it — classic
group commit, which is why the paper's throughput does not peak at MPL 1
("there is some CPU I/O parallelism to be exploited", §5.3.1).  The
durability point a flush establishes is captured when the disk I/O
*begins*: records appended while the write is in flight are physically
not in it, so they wait for the next flush.

On stable storage each record is framed as ``[length u32][crc32 u32]
[payload]``.  :meth:`from_durable` rebuilds a manager from a crash-
surviving byte stream by scanning frames and validating each CRC — a
torn tail (a log write interrupted by the crash) is detected and
truncated at the first bad frame, exactly like a production WAL.

Subscribers (the log analyzer, §3.3) are notified synchronously at append
time: "a separate process called log analyzer [processes the logs] as soon
as they are handed over to the logging subsystem".  Synchronous dispatch
preserves the paper's ordering requirement that a pointer delete is noted
in the TRT before the pointer is physically deleted (the undo record is
appended before the update is applied, per WAL).
"""

from __future__ import annotations

import random
import struct
import zlib
from typing import Any, Callable, Generator, Iterator, List, Optional, Tuple

from ..config import RetryPolicy
from ..sim import Delay, Resource, Simulator
from ..storage.errors import LogCorruptionError, TransientIOError
from .records import LogRecord, decode_record

Subscriber = Callable[[LogRecord], None]

#: On-"disk" framing of one record: payload length + payload CRC32.
FRAME_HEADER = struct.Struct("<II")


def frame_record(payload: bytes) -> bytes:
    """Wrap one encoded record in its stable-storage frame."""
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_frames(stream: bytes) -> Tuple[List[bytes], int, Optional[str]]:
    """Split a durable byte stream back into record payloads.

    Scanning stops at the first violation — a truncated header, a frame
    overrunning the stream, or a CRC mismatch — and everything from that
    point on is treated as the torn tail of an interrupted log write.
    Returns ``(payloads, bytes_consumed, tail_problem)`` where
    ``tail_problem`` is ``None`` for a perfectly clean stream.
    """
    payloads: List[bytes] = []
    offset = 0
    while offset < len(stream):
        if offset + FRAME_HEADER.size > len(stream):
            return payloads, offset, (
                f"truncated frame header ({len(stream) - offset}B "
                f"of {FRAME_HEADER.size})")
        length, crc = FRAME_HEADER.unpack_from(stream, offset)
        body_start = offset + FRAME_HEADER.size
        if body_start + length > len(stream):
            return payloads, offset, (
                f"frame of {length}B overruns the stream "
                f"({len(stream) - body_start}B left)")
        payload = stream[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            return payloads, offset, (
                f"record CRC mismatch at byte {offset}")
        payloads.append(payload)
        offset = body_start + length
    return payloads, offset, None

#: Fault-injection hook: called with the flush-target LSN before the
#: flush takes effect; raising :class:`TransientIOError` fails that disk
#: write (the manager retries with capped exponential backoff while still
#: holding the log disk).
FlushFaultHook = Callable[[int], None]


class LogManager:
    """Append-only log with group-commit flushing.

    LSNs are 1-based and dense: record ``i`` (0-based) has LSN ``i + 1``.
    """

    def __init__(self, sim: Simulator, log_disk: Resource,
                 flush_time_ms: float,
                 io_retry_limit: int = 4, io_retry_backoff_ms: float = 5.0):
        self.sim = sim
        self.log_disk = log_disk
        self.flush_time_ms = flush_time_ms
        self.io_retry_limit = io_retry_limit
        self.io_retry_backoff_ms = io_retry_backoff_ms
        self.retry_policy = RetryPolicy.exponential(
            base_ms=io_retry_backoff_ms, max_retries=io_retry_limit)
        self.fault_hook: Optional[FlushFaultHook] = None
        self._encoded: List[bytes] = []   # the byte stream, by LSN - 1
        self._flushed_lsn = 0
        self._subscribers: List[Subscriber] = []
        self.flush_count = 0
        self.io_faults = 0
        self.io_retries = 0
        #: Set by :meth:`from_durable` when the durable stream ended in a
        #: torn/corrupt record that had to be truncated.
        self.tail_truncated = False
        self.tail_problem: Optional[str] = None
        self.tail_truncated_bytes = 0

    # -- append / read -------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return len(self._encoded)

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def append(self, record: LogRecord) -> int:
        """Buffer a record; returns its LSN.  Does not flush."""
        encoded = self._encoded
        encoded.append(record.encode())
        record.lsn = lsn = len(encoded)
        for subscriber in self._subscribers:
            subscriber(record)
        return lsn

    def read(self, lsn: int) -> LogRecord:
        if not 1 <= lsn <= len(self._encoded):
            raise IndexError(f"no log record with lsn {lsn}")
        try:
            return decode_record(self._encoded[lsn - 1], lsn=lsn)
        except LogCorruptionError as exc:
            raise LogCorruptionError(f"log record {lsn}: {exc}") from exc

    def records(self, from_lsn: int = 1,
                upto_lsn: Optional[int] = None) -> Iterator[LogRecord]:
        """Decode records with ``from_lsn <= lsn <= upto_lsn``."""
        upto = upto_lsn if upto_lsn is not None else len(self._encoded)
        for index in range(from_lsn - 1, upto):
            yield decode_record(self._encoded[index], lsn=index + 1)

    # -- durability -----------------------------------------------------------

    def flush(self, upto_lsn: Optional[int] = None) -> Generator[Any, Any, None]:
        """Make the log durable up to ``upto_lsn`` (default: everything).

        Generator — costs one log-disk I/O unless a concurrent flush
        already covered the requested LSN (group commit).  The durable
        horizon only advances to the append point captured when the disk
        write *began*: a record appended while the I/O was in flight is
        physically not in that write, so it piggybacks on the next flush
        instead of being falsely reported durable.
        """
        target = upto_lsn if upto_lsn is not None else len(self._encoded)
        if self._flushed_lsn >= target:
            return
        yield from self.log_disk.acquire()
        try:
            if self._flushed_lsn >= target:
                return  # piggybacked on the flush we just waited behind
            # Everything appended while we were *queued* rides along; the
            # write's content is fixed from this point on.
            write_point = len(self._encoded)
            for attempt in range(self.io_retry_limit + 1):
                yield Delay(self.flush_time_ms)
                if self.fault_hook is None:
                    break
                try:
                    self.fault_hook(target)
                    break
                except TransientIOError:
                    self.io_faults += 1
                    if self.retry_policy.exhausted(attempt):
                        raise
                    self.io_retries += 1
                    yield Delay(self.retry_policy.delay_ms(attempt))
            self._flushed_lsn = max(self._flushed_lsn, write_point)
            self.flush_count += 1
        finally:
            self.log_disk.release()

    def flush_now(self) -> None:
        """Zero-time flush for bulk-loading and test setup paths."""
        self._flushed_lsn = len(self._encoded)

    # -- crash surface ----------------------------------------------------------

    def durable_bytes(self) -> bytes:
        """The framed byte stream that survives a crash (flushed prefix)."""
        return b"".join(frame_record(payload)
                        for payload in self._encoded[:self._flushed_lsn])

    def torn_tail_fragment(self, rng: random.Random) -> bytes:
        """Bytes of the log write that was in flight at the crash.

        Either the first unflushed record's frame cut mid-write, or —
        when the rng says so and a record is available — the full frame
        with one bit flipped (a failed, not merely interrupted, write).
        With nothing buffered beyond the durable horizon, a stray
        partial header models a preallocated-but-unwritten log block.
        """
        if self._flushed_lsn < len(self._encoded):
            frame = frame_record(self._encoded[self._flushed_lsn])
            if rng.random() < 0.5:
                flipped = bytearray(frame)
                bit = rng.randrange(len(flipped) * 8)
                flipped[bit // 8] ^= 1 << (bit % 8)
                return bytes(flipped)
            return frame[:rng.randrange(1, len(frame))]
        return FRAME_HEADER.pack(0xFFFFFFFF, 0)[:rng.randrange(1, 8)]

    @classmethod
    def from_durable(cls, sim: Simulator, log_disk: Resource,
                     flush_time_ms: float,
                     durable: bytes) -> "LogManager":
        """Rebuild a log manager from a crash-surviving byte stream.

        The stream is scanned frame by frame; the first torn or
        CRC-failing record — a log write interrupted by the crash — and
        everything after it is truncated, and the manager records the
        truncation in :attr:`tail_truncated` / :attr:`tail_problem`.
        A frame whose CRC matches but whose body does not decode is
        treated the same way.
        """
        log = cls(sim, log_disk, flush_time_ms)
        payloads, consumed, problem = scan_frames(durable)
        kept: List[bytes] = []
        for index, payload in enumerate(payloads):
            try:
                decode_record(payload, lsn=index + 1)
            except LogCorruptionError as exc:
                problem = f"undecodable record at lsn {index + 1}: {exc}"
                break
            kept.append(payload)
        log._encoded = kept
        log._flushed_lsn = len(kept)
        log.tail_problem = problem
        log.tail_truncated = problem is not None
        log.tail_truncated_bytes = len(durable) - sum(
            len(frame_record(payload)) for payload in kept)
        return log

    # -- subscribers -------------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.remove(subscriber)

    def __repr__(self) -> str:
        return (f"<LogManager lsn={self.last_lsn} "
                f"flushed={self._flushed_lsn}>")
