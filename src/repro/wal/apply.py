"""Applying and inverting physical log records.

Shared by the normal execution path (transaction rollback) and restart
recovery (redo + undo), so both necessarily agree on semantics.
"""

from __future__ import annotations

from typing import Optional

from ..storage import ObjectImage, ObjectStore
from ..storage.oid import Oid
from .records import (
    ClrRecord,
    LogRecord,
    ObjCreateRecord,
    ObjDeleteRecord,
    PayloadUpdateRecord,
    RefUpdateRecord,
)


def apply_record(store: ObjectStore, record: LogRecord,
                 lsn: Optional[int] = None) -> None:
    """Apply a physical record's *redo* action to the store.

    If ``lsn`` is given, redo is idempotent: the record is skipped when the
    target page's LSN already covers it, and the page LSN is advanced
    afterwards (ARIES redo test).
    """
    if isinstance(record, ClrRecord):
        apply_record(store, record.decode_action(), lsn)
        return

    target = _target_oid(record)
    if lsn is not None and store.page_lsn(target) >= lsn:
        return

    if isinstance(record, ObjCreateRecord):
        store.ensure_partition(record.oid.partition)
        store.allocate_object_at(record.oid, ObjectImage.decode(record.image))
    elif isinstance(record, ObjDeleteRecord):
        if store.exists(record.oid):
            store.free_object(record.oid)
    elif isinstance(record, PayloadUpdateRecord):
        store.set_payload_bytes(record.oid, record.offset, record.after)
    elif isinstance(record, RefUpdateRecord):
        store.set_ref(record.parent, record.slot, record.new_child)
    else:
        raise TypeError(f"not a physical record: {record!r}")

    if lsn is not None:
        store.set_page_lsn(target, lsn)


def invert_record(record: LogRecord) -> LogRecord:
    """The physical record describing the *undo* of ``record``.

    The result is what gets embedded in a CLR: applying it with
    :func:`apply_record` rolls the original change back.
    """
    if isinstance(record, ObjCreateRecord):
        return ObjDeleteRecord(record.tid, 0, oid=record.oid,
                               before_image=record.image)
    if isinstance(record, ObjDeleteRecord):
        return ObjCreateRecord(record.tid, 0, oid=record.oid,
                               image=record.before_image)
    if isinstance(record, PayloadUpdateRecord):
        return PayloadUpdateRecord(record.tid, 0, oid=record.oid,
                                   offset=record.offset,
                                   before=record.after, after=record.before)
    if isinstance(record, RefUpdateRecord):
        return RefUpdateRecord(record.tid, 0, parent=record.parent,
                               slot=record.slot,
                               old_child=record.new_child,
                               new_child=record.old_child)
    raise TypeError(f"record is not undoable: {record!r}")


def _target_oid(record: LogRecord) -> Oid:
    """The OID whose page a physical record touches."""
    if isinstance(record, (ObjCreateRecord, ObjDeleteRecord,
                           PayloadUpdateRecord)):
        return record.oid
    if isinstance(record, RefUpdateRecord):
        return record.parent
    raise TypeError(f"not a physical record: {record!r}")


def record_page_key(record: LogRecord) -> Optional[tuple]:
    """``(partition, page)`` a record's redo writes to, else ``None``.

    CLRs resolve to their embedded action's page.  Used by single-page
    repair to select the log records relevant to one damaged page.
    """
    if isinstance(record, ClrRecord):
        return record_page_key(record.decode_action())
    try:
        oid = _target_oid(record)
    except TypeError:
        return None
    return (oid.partition, oid.page)
