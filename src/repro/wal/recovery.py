"""ARIES-style restart recovery: analysis, redo, undo.

Given the durable log (the flushed prefix that survived the crash) and
the snapshot store, recovery rebuilds the object store, rolls forward
committed work, and rolls back losers by writing CLRs — so running
recovery is itself crash-safe and idempotent.

Migration transactions run by the reorganizer are ordinary transactions
here: if the system failed mid-migration, the in-flight migration is
undone (paper §3.5: "The migration of an object which was in progress at
the time of failure will be undone"), leaving no half-moved object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..storage import ObjectStore, Page, PageRepairError
from ..storage.page import snapshot_checksum_ok
from .apply import apply_record, invert_record, record_page_key
from .checkpoint import SnapshotStore
from .log import LogManager
from .records import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    ClrRecord,
    CommitRecord,
    EndRecord,
    LogRecord,
    PHYSICAL_KINDS,
    TpcDecisionRecord,
    TpcPrepareRecord,
)

ReplayHook = Callable[[LogRecord], None]


@dataclass
class RecoveryStats:
    """What recovery did — reported by the crash-recovery example."""

    checkpoint_lsn: int = 0
    records_analyzed: int = 0
    records_redone: int = 0
    loser_txns: List[int] = field(default_factory=list)
    winner_txns: List[int] = field(default_factory=list)
    clrs_written: int = 0
    #: Checksum-failing checkpoint pages, and how each was healed.
    pages_corrupt: int = 0
    pages_repaired: int = 0
    pages_rebuilt_from_empty: int = 0
    repaired_pages: List[Tuple[int, int]] = field(default_factory=list)
    #: Set when the durable log ended in a torn/corrupt record that
    #: :meth:`LogManager.from_durable` truncated.
    log_tail_truncated: bool = False
    log_tail_problem: Optional[str] = None
    #: Participant branches of presumed-abort 2PC transactions that were
    #: prepared (durable ``TPC_PREPARE``) but undecided at the crash:
    #: tid → the prepare record (carrying the gid and coordinator node).
    #: Redone, **not** undone — the patched pages stay blocked until the
    #: coordinator resolves the global transaction.
    in_doubt_txns: Dict[int, TpcPrepareRecord] = field(default_factory=dict)


class RecoveryManager:
    """Runs the three recovery passes over a rebuilt log manager.

    ``replay_hook`` is invoked for every durable record from the
    checkpoint onward, in LSN order — the engine passes the log analyzer's
    processing function here so the ERT rolls forward alongside the pages
    (paper §4.4, checkpointed-ERT option).
    """

    def __init__(self, log: LogManager, snapshots: SnapshotStore,
                 page_size: int, replay_hook: Optional[ReplayHook] = None):
        self.log = log
        self.snapshots = snapshots
        self.page_size = page_size
        self.replay_hook = replay_hook
        self.stats = RecoveryStats()

    def run(self) -> ObjectStore:
        self.stats.log_tail_truncated = self.log.tail_truncated
        self.stats.log_tail_problem = self.log.tail_problem
        store, checkpoint_lsn, seed_txns = self._load_last_checkpoint()
        self.stats.checkpoint_lsn = checkpoint_lsn
        losers, winners = self._analysis(checkpoint_lsn, seed_txns)
        self._redo(store, checkpoint_lsn)
        self._undo(store, losers)
        self.stats.loser_txns = sorted(losers)
        self.stats.winner_txns = sorted(winners)
        return store

    # -- pass 0: locate the snapshot --------------------------------------------

    def _load_last_checkpoint(self):
        checkpoint: Optional[CheckpointRecord] = None
        older: List[CheckpointRecord] = []
        for record in self.log.records():
            if isinstance(record, CheckpointRecord) and \
                    self.snapshots.has(record.snapshot_id):
                if checkpoint is not None:
                    older.append(checkpoint)
                checkpoint = record
        if checkpoint is None:
            return ObjectStore(page_size=self.page_size), 0, {}
        payload = self.snapshots.load(checkpoint.snapshot_id)
        corrupt: List[Tuple[int, int]] = []
        store = ObjectStore.restore(payload["store"], corrupt_sink=corrupt)
        for pid, page_no in corrupt:
            self._repair_page(
                store, pid, page_no, older, checkpoint.lsn,
                unlogged_base=bool(payload.get("unlogged_base", False)))
        return store, checkpoint.lsn, checkpoint.active_txn_table()

    # -- single-page repair ---------------------------------------------------------

    def _repair_page(self, store: ObjectStore, pid: int, page_no: int,
                     older: List[CheckpointRecord], checkpoint_lsn: int,
                     unlogged_base: bool) -> None:
        """Heal one checksum-failing checkpoint page.

        The newest *older* snapshot holding an intact image of the page
        is the repair base; replaying the page's own physical records
        from that point forward (ARIES page-LSN test makes the replay
        idempotent) reproduces the state the corrupt image should have
        held.  A page born after logging began can be rebuilt from an
        empty base the same way.  A page that may contain bulk-loaded,
        never-logged content and has no intact older image is genuinely
        unrecoverable: that raises :class:`PageRepairError` instead of
        silently resurrecting an empty page.
        """
        self.stats.pages_corrupt += 1
        base_state = None
        absent_from = None
        for ckpt in reversed(older):
            old_payload = self.snapshots.load(ckpt.snapshot_id)
            part_state = old_payload["store"]["partitions"].get(pid)
            page_state = None if part_state is None else \
                part_state["pages"].get(page_no)
            if page_state is None:
                absent_from = ckpt
                break
            if snapshot_checksum_ok(page_state):
                base_state = page_state
                break
        if base_state is not None:
            store.adopt_page(pid, page_no, Page.restore(base_state))
            self.stats.pages_repaired += 1
        elif not unlogged_base or absent_from is not None:
            # Every byte the page ever held came through the log (either
            # the store never had an unlogged bulk-load base, or the page
            # is younger than a checkpoint that does not contain it).
            store.adopt_page(pid, page_no, Page(store.page_size))
            self.stats.pages_rebuilt_from_empty += 1
        else:
            raise PageRepairError(
                f"partition {pid} page {page_no}: checkpoint image failed "
                f"its checksum and no intact older snapshot of the page "
                f"exists; the page may hold unlogged bulk-loaded objects, "
                f"so log replay cannot rebuild it")
        for record in self.log.records(upto_lsn=checkpoint_lsn):
            if record_page_key(record) == (pid, page_no):
                apply_record(store, record, lsn=record.lsn)
        store.partition(pid).page(page_no).verify()
        self.stats.repaired_pages.append((pid, page_no))

    # -- pass 1: analysis ----------------------------------------------------------

    def _analysis(self, checkpoint_lsn: int,
                  seed_txns: Dict[int, int]):
        last_lsn: Dict[int, int] = dict(seed_txns)
        committed: Set[int] = set()
        ended: Set[int] = set()
        aborted: Set[int] = set()
        prepared: Dict[int, TpcPrepareRecord] = {}
        for record in self.log.records(from_lsn=checkpoint_lsn + 1):
            self.stats.records_analyzed += 1
            if record.tid == 0:
                continue
            if isinstance(record, BeginRecord):
                last_lsn[record.tid] = record.lsn
            elif isinstance(record, CommitRecord):
                committed.add(record.tid)
                last_lsn[record.tid] = record.lsn
            elif isinstance(record, EndRecord):
                ended.add(record.tid)
                last_lsn.pop(record.tid, None)
            elif isinstance(record, TpcPrepareRecord):
                prepared[record.tid] = record
                last_lsn[record.tid] = record.lsn
            elif isinstance(record, TpcDecisionRecord):
                # The durable commit decision IS the commit point of the
                # coordinator's local branch (presumed abort): honor it
                # even if the crash beat the branch's own COMMIT record.
                if record.commit:
                    committed.add(record.tid)
                last_lsn[record.tid] = record.lsn
            else:
                if isinstance(record, AbortRecord):
                    aborted.add(record.tid)
                last_lsn[record.tid] = record.lsn
        # A prepared branch with no durable decision is in-doubt: neither
        # undone (the coordinator may have committed globally) nor
        # committed (it may answer "abort").  A branch whose rollback
        # already logged ABORT lost its doubt — the decision was abort.
        in_doubt = {tid: rec for tid, rec in prepared.items()
                    if tid in last_lsn and tid not in committed
                    and tid not in aborted}
        self.stats.in_doubt_txns = in_doubt
        losers = {tid: lsn for tid, lsn in last_lsn.items()
                  if tid not in committed and tid not in in_doubt}
        winners = committed | ended
        return losers, winners

    # -- pass 2: redo ---------------------------------------------------------------

    def _redo(self, store: ObjectStore, checkpoint_lsn: int) -> None:
        for record in self.log.records(from_lsn=checkpoint_lsn + 1):
            if record.kind in PHYSICAL_KINDS or isinstance(record, ClrRecord):
                apply_record(store, record, lsn=record.lsn)
                self.stats.records_redone += 1
            if self.replay_hook is not None:
                self.replay_hook(record)

    # -- pass 3: undo -----------------------------------------------------------------

    def _undo(self, store: ObjectStore, losers: Dict[int, int]) -> None:
        # Undo each loser's chain; per-transaction chains are independent,
        # so the order across transactions does not matter.
        for tid in sorted(losers):
            self._undo_transaction(store, tid, losers[tid])

    def _undo_transaction(self, store: ObjectStore, tid: int,
                          from_lsn: int) -> None:
        lsn = from_lsn
        while lsn:
            record = self.log.read(lsn)
            if isinstance(record, BeginRecord):
                break
            if isinstance(record, ClrRecord):
                # Already-compensated suffix: skip to what is still undone.
                lsn = record.undo_next_lsn
                continue
            if isinstance(record, (CommitRecord, AbortRecord)):
                lsn = record.prev_lsn
                continue
            if record.kind in PHYSICAL_KINDS:
                inverse = invert_record(record)
                clr = ClrRecord(tid, prev_lsn=0,
                                undo_next_lsn=record.prev_lsn,
                                undone_lsn=record.lsn,
                                action=inverse.encode())
                clr_lsn = self.log.append(clr)
                apply_record(store, inverse, lsn=clr_lsn)
                self.stats.clrs_written += 1
            lsn = record.prev_lsn
        self.log.append(EndRecord(tid, prev_lsn=0))
        self.log.flush_now()
