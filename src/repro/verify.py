"""Deep integrity verification: every durability surface, one verdict.

``deep_verify`` sweeps all four places corruption can hide in this
system and returns a structured report:

1. **Live pages** — checksum + slotted-page invariants of every page of
   every partition (what the background scrubber checks incrementally).
2. **Durable snapshots** — the per-page checksums recorded inside every
   checkpoint payload (what restart recovery would trip over).
3. **The log** — every durable record must decode; a frame that scans
   but does not parse is corruption, not a format quirk.
4. **Logical integrity** — no dangling references, ERTs exactly mirror
   the cross-partition references (``StorageEngine.verify_integrity``).

The ``repro verify`` CLI wraps this and exits non-zero on any finding,
so chaos sweeps and CI can treat integrity as a hard gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .storage import LogCorruptionError
from .storage.errors import StorageError
from .storage.page import snapshot_checksum_ok


@dataclass
class VerifyReport:
    """Everything ``deep_verify`` found, by surface."""

    live_page_problems: List[str] = field(default_factory=list)
    snapshot_page_problems: List[str] = field(default_factory=list)
    log_problems: List[str] = field(default_factory=list)
    logical_problems: List[str] = field(default_factory=list)
    pages_checked: int = 0
    snapshot_pages_checked: int = 0
    log_records_checked: int = 0

    @property
    def ok(self) -> bool:
        return not (self.live_page_problems or self.snapshot_page_problems
                    or self.log_problems or self.logical_problems)

    def problems(self) -> List[str]:
        return (self.live_page_problems + self.snapshot_page_problems
                + self.log_problems + self.logical_problems)

    def summary(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "pages_checked": self.pages_checked,
            "snapshot_pages_checked": self.snapshot_pages_checked,
            "log_records_checked": self.log_records_checked,
            "problems": len(self.problems()),
        }

    def describe(self) -> str:
        lines = [
            f"live pages      {self.pages_checked:6d} checked, "
            f"{len(self.live_page_problems)} bad",
            f"snapshot pages  {self.snapshot_pages_checked:6d} checked, "
            f"{len(self.snapshot_page_problems)} bad",
            f"log records     {self.log_records_checked:6d} checked, "
            f"{len(self.log_problems)} bad",
            f"logical         {len(self.logical_problems)} violations",
        ]
        for problem in self.problems()[:10]:
            lines.append(f"  ! {problem}")
        lines.append("VERDICT: " + ("CLEAN" if self.ok else "CORRUPT"))
        return "\n".join(lines)


def corrupt_snapshot_pages(engine) -> List[Tuple[int, int, int]]:
    """Every durable snapshot page failing its recorded checksum, as
    ``(snapshot_id, partition_id, page_no)`` — the structured form the
    chaos accounting checks injected corruptions off against."""
    bad: List[Tuple[int, int, int]] = []
    for snapshot_id, payload in engine.snapshots.items():
        for pid, part_state in sorted(payload["store"]["partitions"].items()):
            for page_no, page_state in sorted(part_state["pages"].items()):
                if not snapshot_checksum_ok(page_state):
                    bad.append((snapshot_id, pid, page_no))
    return bad


def deep_verify(engine) -> VerifyReport:
    """Run all four sweeps over one engine; never raises on corruption —
    every finding lands in the report."""
    report = VerifyReport()

    store = engine.store
    for pid in store.partition_ids():
        report.pages_checked += store.partition(pid).page_count
    report.live_page_problems.extend(store.verify_pages())

    for _snapshot_id, payload in engine.snapshots.items():
        for part_state in payload["store"]["partitions"].values():
            report.snapshot_pages_checked += len(part_state["pages"])
    for snapshot_id, pid, page_no in corrupt_snapshot_pages(engine):
        report.snapshot_page_problems.append(
            f"snapshot {snapshot_id}: partition {pid} page "
            f"{page_no} fails its recorded checksum")

    for lsn in range(1, engine.log.last_lsn + 1):
        report.log_records_checked += 1
        try:
            engine.log.read(lsn)
        except LogCorruptionError as exc:
            report.log_problems.append(str(exc))

    try:
        integrity = engine.verify_integrity()
    except StorageError as exc:
        # Corrupt object bytes can make the reference walk itself blow
        # up; that is a finding, not a verifier crash.
        report.logical_problems.append(
            f"integrity walk aborted: {type(exc).__name__}: {exc}")
    else:
        report.logical_problems.extend(integrity.problems())
    return report
