"""Planted reorganizer bugs that prove the oracles are sound.

An oracle that never fires proves nothing.  Each mutation here breaks
the implementation in one targeted, realistic way — through the seams
the reorganizer exposes for exactly this purpose — and names the oracle
that must catch it.  ``tests/test_explore_oracles.py`` runs every
mutation through the explorer and asserts the expected oracle reports a
violation (and that an unmutated run under the same schedule is clean).

The catalogue:

``skip_parent_patch``   (ira → ``transparency``)
    Move_Object_And_Update_Refs "forgets" one parent-pointer rewrite:
    the parent keeps referencing the old, deleted address.

``third_reorg_lock``    (ira-2lock → ``lock_footprint``)
    A parent patch acquires an extra X lock on an unrelated object,
    breaking the §4.2 at-most-two-distinct-objects claim.  The data
    stays correct — only the footprint monitor can see this.

``drop_trt_entry``      (ira → ``transparency``)
    Find_Exact_Parents loses one TRT insert tuple whose parent the
    reorganizer has not discovered any other way — precisely the race
    the TRT exists to close (paper Lemma 3.2): a concurrently inserted
    reference to the old address survives the migration, dangling.

``unlogged_poke``       (ira → ``recovery_idempotence``)
    After the run, a payload byte changes in the store without a log
    record — committed state that recovery cannot reproduce.

``stale_snapshot_read`` (mvcc → ``snapshot_isolation``)
    The tier's version lookup returns the entry *one below* the correct
    one — the classic off-by-one in a timestamp-ordered chain search,
    and exactly the failure a botched merge flip or an over-eager GC
    would produce.  The database stays physically consistent; only the
    snapshot-isolation oracle's read accounting can see it.

``escalate_over_conflict``  (hier locks → ``lock_hierarchy``)
    Lock escalation skips its grantability check once: the coarse page
    (or partition) lock is granted even though another transaction holds
    a conflicting mode on the granule — the classic escalation bug of
    promoting without re-validating against concurrent holders.

``missing_ancestor_intent`` (hier locks → ``lock_hierarchy``)
    One object lock is taken without planting its page intent first —
    the hierarchical protocol's root-first invariant broken at exactly
    the spot that makes a later escalation by *another* transaction
    unsound (it cannot see the fine lock it conflicts with).

Each mutation keeps a ``triggered`` flag so a test can tell "oracle
missed the bug" apart from "the schedule never exercised the bug".
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..concurrency import LockMode
from ..refs.trt import ACTION_INSERT


class Mutation:
    """One planted bug.  Subclasses override the hooks they need."""

    name = ""
    #: Reorganization algorithm the bug lives in.
    algorithm = "ira"
    #: Lock manager the bug lives in ("flat" or "hier"); the explorer
    #: runs the schedule under this manager when the mutation asks.
    locks = "flat"
    #: The oracle that must report a violation when the bug bites.
    expected_oracle = ""
    description = ""

    def __init__(self) -> None:
        self.triggered = False
        self.detail = ""

    def install(self, engine, reorg) -> None:
        """Plant the bug before the run starts."""

    def post_run(self, engine, reorg) -> None:
        """Damage applied after the run drains, before the oracles."""


class SkipParentPatch(Mutation):
    name = "skip_parent_patch"
    algorithm = "ira"
    expected_oracle = "transparency"
    description = "one parent's pointer rewrite is skipped during a move"

    def __init__(self) -> None:
        super().__init__()
        self._victim: Optional[object] = None

    def install(self, engine, reorg) -> None:
        original = reorg._parents_to_patch

        # Pick the first migrated object that has parents and always skip
        # its first parent — "always" so a deadlock-retried batch re-skips
        # instead of silently healing the bug on the retry.
        def patched(oid, parents):
            out = original(oid, parents)
            if self._victim is None and out:
                self._victim = oid
            if oid == self._victim and out:
                self.triggered = True
                self.detail = f"left {out[0]} pointing at {oid}"
                return out[1:]
            return out

        reorg._parents_to_patch = patched


class ThirdReorgLock(Mutation):
    name = "third_reorg_lock"
    algorithm = "ira-2lock"
    expected_oracle = "lock_footprint"
    description = "a parent patch grabs an X lock on an unrelated object"

    def install(self, engine, reorg) -> None:
        original = reorg._patch_slots

        def patched(txn, holder, old_child, new_child):
            # Only a real parent patch (not the anchor's self-reference
            # fix-up), and only once — the flag flips *after* the grant,
            # so a lock timeout on the extra object retries the bug
            # instead of wasting it.
            if not self.triggered and holder not in (old_child, new_child):
                extra = self._pick_extra(engine, reorg,
                                         (holder, old_child, new_child))
                if extra is not None:
                    yield from txn.lock(extra, LockMode.X)
                    self.triggered = True
                    self.detail = f"extra X lock on {extra}"
            yield from original(txn, holder, old_child, new_child)

        reorg._patch_slots = patched

    @staticmethod
    def _pick_extra(engine, reorg, busy):
        for oid in engine.store.live_oids(reorg.partition_id):
            if oid not in busy and oid not in reorg.in_flight.values():
                return oid
        return None


class DropTrtEntry(Mutation):
    name = "drop_trt_entry"
    algorithm = "ira"
    expected_oracle = "transparency"
    description = "one TRT insert tuple is lost before Find_Exact_Parents"

    def __init__(self) -> None:
        super().__init__()
        self._victim = None

    def install(self, engine, reorg) -> None:
        original_activate = engine.activate_trt
        mutation = self

        def activate(partition_id):
            trt = original_activate(partition_id)
            original_entries_for = trt.entries_for

            # Hide the victim tuple *persistently*: the S2 drain loop
            # re-reads entries_for until empty, so a one-shot hide would
            # just delay the patch by one iteration.
            def entries_for(child):
                entries = original_entries_for(child)
                if mutation._victim is None:
                    for entry in sorted(entries, key=lambda e:
                                        (e.parent, e.tid, e.seq)):
                        if entry.action == ACTION_INSERT and \
                                mutation._qualifies(entry, engine, reorg,
                                                    child):
                            mutation._victim = entry
                            mutation.triggered = True
                            mutation.detail = (
                                f"hid TRT tuple {entry.parent} -> {child}")
                            break
                if mutation._victim is not None:
                    entries = {e for e in entries
                               if e != mutation._victim}
                return entries

            trt.entries_for = entries_for
            return trt

        engine.activate_trt = activate

    @staticmethod
    def _qualifies(entry, engine, reorg, child) -> bool:
        # Only a tuple the reorganizer knows about through *no other
        # channel* reproduces the real bug: the parent must be absent
        # from the approximate parent list and from the ERT, else S1
        # patches it anyway and the drop is harmless.
        stable = reorg._mapping.get(entry.parent, entry.parent)
        known = reorg._parents.get(child, set())
        if entry.parent in known or stable in known:
            return False
        ert_parents = engine.ert_for(reorg.partition_id).parents_of(child)
        return entry.parent not in ert_parents and stable not in ert_parents


class UnloggedPoke(Mutation):
    name = "unlogged_poke"
    algorithm = "ira"
    expected_oracle = "recovery_idempotence"
    description = "a payload byte changes in the store with no log record"

    def post_run(self, engine, reorg) -> None:
        for oid in sorted(engine.store.all_live_oids()):
            if len(engine.store.read_object(oid).payload) >= 4:
                engine.store.set_payload_bytes(oid, 0, b"\xde\xad\xbe\xef")
                self.triggered = True
                self.detail = f"poked payload of {oid} without logging"
                return


class StaleSnapshotRead(Mutation):
    name = "stale_snapshot_read"
    algorithm = "mvcc"
    expected_oracle = "snapshot_isolation"
    description = "version lookup returns one version older than visible"

    def install(self, engine, reorg) -> None:
        tier = engine.mvcc
        original = tier.version_for
        mutation = self

        def stale(loid, ts):
            entry = original(loid, ts)
            chain = tier._chains[loid]
            index = chain.index(entry)
            if index >= 1:
                older = chain[index - 1]
                # Serve the stale version only when doing so cannot turn
                # into a physical fault (a base sentinel whose object was
                # already swept would crash the read instead of silently
                # violating isolation, which is a different bug).
                if not older.is_base or \
                        engine.store.exists(older.physical):
                    if not mutation.triggered:
                        mutation.triggered = True
                        mutation.detail = (
                            f"served {loid} at {older.ts} instead of "
                            f"{entry.ts} to snapshot {ts}")
                    return older
            return entry

        tier.version_for = stale


class EscalateOverConflict(Mutation):
    name = "escalate_over_conflict"
    algorithm = "ira"
    locks = "hier"
    expected_oracle = "lock_hierarchy"
    description = "escalation skips its grantability check once"

    def install(self, engine, reorg) -> None:
        locks = engine.locks
        original = locks._escalation_safe
        mutation = self

        # Force the first escalation the sound check would *refuse*: the
        # coarse lock is granted over a conflicting co-holder, exactly
        # what promoting without re-validation does in a real manager.
        def unsafe(tid, granule, target):
            if original(tid, granule, target):
                return True
            if not mutation.triggered:
                mutation.triggered = True
                mutation.detail = (f"escalated txn {tid} to {target.value} "
                                   f"on {granule} over a conflicting holder")
                return True
            return False

        locks._escalation_safe = unsafe


class MissingAncestorIntent(Mutation):
    name = "missing_ancestor_intent"
    algorithm = "ira"
    locks = "hier"
    expected_oracle = "lock_hierarchy"
    description = "one object lock is taken without its page intent"

    def install(self, engine, reorg) -> None:
        locks = engine.locks
        original = locks._ancestors
        mutation = self

        # Drop the page granule from the ancestor walk once — for a
        # transaction that holds nothing on an already-populated page,
        # so the resulting fine lock really is uncovered (and invisible
        # to any other transaction's escalation check).
        def skipping(tid, oid, intent):
            ancestors = original(tid, oid, intent)
            if not mutation.triggered:
                page = ancestors[-1]
                entry = locks._table.get(page)
                if entry is not None and tid not in entry.granted:
                    mutation.triggered = True
                    mutation.detail = (
                        f"skipped {intent.value} on {page} for txn "
                        f"{tid}'s lock on {oid}")
                    return ancestors[:-1]
            return ancestors

        locks._ancestors = skipping


MUTATIONS: Dict[str, Type[Mutation]] = {
    cls.name: cls
    for cls in (SkipParentPatch, ThirdReorgLock, DropTrtEntry, UnloggedPoke,
                StaleSnapshotRead, EscalateOverConflict,
                MissingAncestorIntent)
}
