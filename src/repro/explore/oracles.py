"""The oracle catalogue: every invariant an explored schedule must keep.

Each oracle returns an :class:`OracleVerdict`; :func:`run_oracles` runs
the whole suite over one finished run and returns the verdicts in a
fixed order.  The oracles:

``serializability``
    Conflict-graph acyclicity over the observed read/write history
    (:mod:`repro.explore.history`).

``transparency``
    The IRA transparency guarantee, generalized from the
    graph-isomorphism test: the final database must equal a *no-reorg
    twin* translated through the migration mapping.  The twin is built
    by replay — take the pre-run image snapshot, translate every address
    through the final mapping, and apply the committed non-reorganizer
    physical log records (with their addresses translated the same way)
    in LSN order.  If reorganization is transparent, that model equals
    the real final store object-for-object; any skipped pointer rewrite,
    lost update or resurrected stale reference shows up as a mismatch.

``lock_footprint``
    The §4.2 claim, monitored live: at most two distinct objects locked
    by the reorganizer's transactions at any instant (the in-flight
    old/new pair counts once).  Enforced for ``ira-2lock``; for basic
    IRA the monitor records the peak only.  Stated in intention-lock
    terms under the hierarchical manager: only *object-level* locks
    count toward the footprint, while ancestor granule intents are
    excluded from the count but validated for consistency (every object
    lock must sit under covering intents).

``lock_hierarchy``
    Multi-granularity soundness (hierarchical manager runs only): every
    grant the lock manager makes must keep the granule tree consistent —
    object grants need covering ancestor intents, and a coarse (S/SIX/X)
    granule grant must not coexist with another transaction's
    conflicting lock on any descendant.  This is the oracle that
    convicts the planted escalation bugs.

``recovery_idempotence``
    WAL soundness: flush, recover from the durable state, recover
    *again* from the recovered engine's durable state — all three
    (live, once-recovered, twice-recovered) must have the same
    address-free graph signature, and the recovered engine must pass
    its integrity sweep.

``deep_verify``
    The existing all-surface verifier (:func:`repro.verify.deep_verify`).

``no_crash``
    No process died with an unhandled exception during the schedule.

The networkx graph helpers (:func:`object_graph`, :func:`relabeled`,
:func:`graph_matches_under_mapping`) are the library home of the check
``tests/test_graph_isomorphism.py`` originally implemented inline; the
test now imports them from here so test and oracle cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim import Simulator
from ..storage.oid import Oid
from ..verify import deep_verify
from ..wal.records import (
    BeginRecord,
    CommitRecord,
    ObjCreateRecord,
    ObjDeleteRecord,
    PayloadUpdateRecord,
    RefUpdateRecord,
)
from .history import HistoryRecorder, check_serializability


@dataclass
class OracleVerdict:
    """One oracle's answer for one explored schedule."""

    name: str
    ok: bool
    at_ms: float
    details: List[str] = field(default_factory=list)

    def describe(self) -> str:
        status = "ok" if self.ok else "VIOLATION"
        extra = f" ({self.details[0]})" if self.details and not self.ok else ""
        return f"{self.name:>22}: {status}{extra}"


# -- graph isomorphism (extracted from tests/test_graph_isomorphism.py) -------

def object_graph(db):
    """The database as a labeled multigraph (payload = node label).

    ``db`` is anything with a ``.store`` (Database, StorageEngine) or an
    object store itself.
    """
    import networkx as nx
    store = getattr(db, "store", db)
    graph = nx.MultiDiGraph()
    for oid in store.all_live_oids():
        image = store.read_object(oid)
        graph.add_node(oid, payload=bytes(image.payload))
        for slot, child in image.refs():
            graph.add_edge(oid, child, slot=slot)
    return graph


def relabeled(graph, mapping):
    """The graph with every node translated through ``mapping``."""
    import networkx as nx
    return nx.relabel_nodes(graph, lambda n: mapping.get(n, n), copy=True)


def graph_matches_under_mapping(before, after, mapping) -> List[str]:
    """Exact equality of ``after`` against ``before`` relabeled through
    the migration mapping — stronger than isomorphism search.  Returns
    the list of discrepancies (empty = match)."""
    expected = relabeled(before, mapping)
    problems: List[str] = []
    missing = set(expected.nodes) - set(after.nodes)
    extra = set(after.nodes) - set(expected.nodes)
    if missing:
        problems.append(f"objects missing after reorg: {sorted(missing)[:5]}")
    if extra:
        problems.append(f"unexpected objects after reorg: {sorted(extra)[:5]}")
    for node in set(expected.nodes) & set(after.nodes):
        if expected.nodes[node]["payload"] != after.nodes[node]["payload"]:
            problems.append(f"payload of {node} changed")
    expected_edges = sorted((u, v, d["slot"])
                            for u, v, d in expected.edges(data=True))
    actual_edges = sorted((u, v, d["slot"])
                          for u, v, d in after.edges(data=True))
    if expected_edges != actual_edges:
        gone = set(expected_edges) - set(actual_edges)
        born = set(actual_edges) - set(expected_edges)
        problems.append(f"edges changed: -{sorted(gone)[:4]} "
                        f"+{sorted(born)[:4]}")
    return problems


# -- lock footprint monitor ---------------------------------------------------

class LockFootprintMonitor:
    """Live monitor of the reorganizer's distinct-object lock footprint.

    Installed as the lock manager's observer; on every grant to one of
    the reorganizer's transactions it counts the distinct objects locked
    across *all* of that reorganizer's active transactions, collapsing
    the in-flight old/new address pair to one object (§4.2 counts the
    migrating object once).  ``limit`` is the violation threshold
    (``None`` = record the peak only — basic IRA makes no two-lock
    claim).
    """

    def __init__(self, engine, reorg, limit: Optional[int] = None):
        self.engine = engine
        self.reorg = reorg
        self.limit = limit
        self.peak = 0
        #: (at_ms, distinct_count, keys) per violation instant.
        self.violations: List[tuple] = []
        #: (at_ms, problem) — an object-level reorg lock observed without
        #: its covering ancestor intents (hierarchical manager only).
        self.intent_violations: List[tuple] = []

    def install(self) -> "LockFootprintMonitor":
        # Chain rather than clobber: with N reorganizers live there are N
        # monitors, each filtering on its own partition's transactions.
        previous = self.engine.locks.observer
        if previous is None:
            self.engine.locks.observer = self._on_event
        else:
            mine = self._on_event

            def chained(event, tid, key, mode):
                previous(event, tid, key, mode)
                mine(event, tid, key, mode)

            self.engine.locks.observer = chained
        return self

    def _reorg_tids(self) -> List[int]:
        txns = self.engine.txns
        out = []
        for tid in txns.active_tids():
            txn = txns.transaction(tid)
            if getattr(txn, "reorg_partition", None) == \
                    self.reorg.partition_id:
                out.append(tid)
        return out

    def _on_event(self, event, tid, key, mode) -> None:
        if event != "grant" or not self.engine.txns.is_active(tid):
            return
        txn = self.engine.txns.transaction(tid)
        if getattr(txn, "reorg_partition", None) != self.reorg.partition_id:
            return
        locks = self.engine.locks
        reorg_tids = self._reorg_tids()
        held = set()
        for reorg_tid in reorg_tids:
            held |= locks.held_keys(reorg_tid)
        in_flight = getattr(self.reorg, "in_flight", {})
        collapse = {new: old for old, new in in_flight.items()}
        # §4.2 counts *object-level* locks: ancestor granule intents
        # (hierarchical manager) are excluded from the footprint ...
        distinct = {collapse.get(k, k) for k in held if isinstance(k, Oid)}
        self.peak = max(self.peak, len(distinct))
        if self.limit is not None and len(distinct) > self.limit:
            self.violations.append((self.engine.sim.now, len(distinct),
                                    sorted(str(k) for k in distinct)))
        # ... but validated for consistency: every object lock a reorg
        # transaction holds must sit under covering intents.
        checker = getattr(locks, "missing_ancestor_intents", None)
        if checker is not None:
            for reorg_tid in reorg_tids:
                for problem in checker(reorg_tid):
                    self.intent_violations.append(
                        (self.engine.sim.now, problem))


# -- lock hierarchy monitor ---------------------------------------------------

class LockHierarchyMonitor:
    """Live multi-granularity soundness monitor (hierarchical manager).

    On every grant it asks the manager which hierarchy invariants the
    grant violates (``grant_problems``): an object grant needs covering
    ancestor intents, and a coarse (S/SIX/X) granule grant — i.e. an
    escalation — must not coexist with another transaction's conflicting
    lock on any descendant.  A sound manager never produces a violation;
    the planted escalation mutations do.
    """

    def __init__(self, engine):
        self.engine = engine
        self.checked = 0
        #: (at_ms, problem) per violating grant.
        self.violations: List[tuple] = []

    def install(self) -> "LockHierarchyMonitor":
        previous = self.engine.locks.observer
        if previous is None:
            self.engine.locks.observer = self._on_event
        else:
            mine = self._on_event

            def chained(event, tid, key, mode):
                previous(event, tid, key, mode)
                mine(event, tid, key, mode)

            self.engine.locks.observer = chained
        return self

    def _on_event(self, event, tid, key, mode) -> None:
        if event != "grant":
            return
        self.checked += 1
        for problem in self.engine.locks.grant_problems(tid, key, mode):
            self.violations.append((self.engine.sim.now, problem))


# -- transparency (no-reorg twin by log replay) -------------------------------

def check_transparency(engine, initial_images: Dict, start_lsn: int,
                       mapping: Dict) -> List[str]:
    """Compare the final store against the translated no-reorg model.

    ``initial_images`` is the pre-run snapshot (oid -> ObjectImage
    copy), ``start_lsn`` the log position it was taken at, ``mapping``
    the union of every migration performed.  Returns discrepancies.
    """
    translate = lambda oid: mapping.get(oid, oid)  # noqa: E731

    def translated(image):
        out = image.copy()
        for slot, child in out.refs():
            out.set_ref(slot, translate(child))
        return out

    # Which transactions belong to a reorganizer (their records ARE the
    # reorganization — the model excludes them), and which committed.
    owned, committed = set(), set()
    for record in engine.log.records():
        if isinstance(record, BeginRecord) and record.is_system and \
                record.owner_partition is not None:
            owned.add(record.tid)
        elif isinstance(record, CommitRecord):
            committed.add(record.tid)

    model = {translate(oid): translated(image)
             for oid, image in initial_images.items()}
    from ..storage import ObjectImage
    for record in engine.log.records(from_lsn=start_lsn + 1):
        if record.tid in owned or record.tid not in committed:
            continue
        if isinstance(record, PayloadUpdateRecord):
            oid = translate(record.oid)
            image = model.get(oid)
            if image is None:
                return [f"model has no object at {oid} for a committed "
                        f"payload update (lsn {record.lsn})"]
            body = image.payload
            end = record.offset + len(record.after)
            image.payload = body[:record.offset] + record.after + body[end:]
        elif isinstance(record, RefUpdateRecord):
            parent = translate(record.parent)
            image = model.get(parent)
            if image is None:
                return [f"model has no object at {parent} for a committed "
                        f"ref update (lsn {record.lsn})"]
            image.set_ref(record.slot, translate(record.new_child))
        elif isinstance(record, ObjCreateRecord):
            model[translate(record.oid)] = translated(
                ObjectImage.decode(record.image))
        elif isinstance(record, ObjDeleteRecord):
            model.pop(translate(record.oid), None)

    store = engine.store
    actual = {oid: store.read_object(oid) for oid in store.all_live_oids()}
    problems: List[str] = []
    missing = sorted(set(model) - set(actual))
    extra = sorted(set(actual) - set(model))
    if missing:
        problems.append(f"objects in the no-reorg model but not the "
                        f"store: {missing[:5]}")
    if extra:
        problems.append(f"objects in the store the no-reorg model never "
                        f"made: {extra[:5]}")
    for oid in set(model) & set(actual):
        if model[oid] != actual[oid]:
            want, got = model[oid], actual[oid]
            kind = ("payload" if want.payload != got.payload else "refs")
            problems.append(
                f"{oid}: {kind} diverge from the no-reorg model "
                f"(model refs {want.children()}, store {got.children()})")
            if len(problems) >= 6:
                break
    return problems


# -- snapshot isolation (the MVCC tier's contract) ----------------------------

def check_snapshot_isolation(tier) -> List[str]:
    """Judge a finished MVCC run against snapshot isolation.

    Works off the tier's own accounting (``record_history=True``): the
    commit log (every commit's timestamp and write set, in commit
    order), each snapshot transaction's ``(loid, seen_ts)`` read
    footprint, and the GC audit trail.  Four checks:

    1. **Monotone commits** — commit timestamps strictly increase.
    2. **Consistent snapshots** — every read observed exactly the
       newest version at or below its transaction's begin timestamp
       (``0`` = the attach-time base).  A merge relocating an object
       must not perturb this: the flip keeps each consolidated
       version's original timestamp, so a reorganization that leaks
       into what readers see shows up here.
    3. **First-committer-wins** — no two committed transactions with
       overlapping write sets have overlapping ``(begin, commit)``
       intervals.
    4. **GC safety** — every pruned version's successor was already
       at or below the watermark when it was reclaimed (nothing any
       live snapshot could still see ever went away).
    """
    problems: List[str] = []
    ts_seq = [ts for ts, _ in tier.commit_log]
    if ts_seq != sorted(set(ts_seq)):
        problems.append(f"commit timestamps not strictly increasing: "
                        f"{ts_seq[:10]}")
    commits_by_oid: Dict = {}
    for ts, writes in tier.commit_log:
        for loid in writes:
            commits_by_oid.setdefault(loid, []).append(ts)

    stale = 0
    for entry in tier.history:
        for loid, seen_ts in entry.reads:
            visible = [ts for ts in commits_by_oid.get(loid, [])
                       if ts <= entry.begin_ts]
            expected = max(visible) if visible else 0
            if seen_ts != expected:
                stale += 1
                if stale <= 3:
                    problems.append(
                        f"snapshot at {entry.begin_ts} read {loid} at "
                        f"version {seen_ts}, expected {expected}")
    if stale > 3:
        problems.append(f"... and {stale - 3} more stale reads")

    for entry in tier.history:
        if not entry.committed or entry.commit_ts is None:
            continue
        for loid in entry.writes:
            clobbered = [ts for ts in commits_by_oid.get(loid, [])
                         if entry.begin_ts < ts < entry.commit_ts]
            if clobbered:
                problems.append(
                    f"lost update on {loid}: txn ({entry.begin_ts}, "
                    f"{entry.commit_ts}] committed over version(s) "
                    f"{clobbered}")

    for loid, pruned_ts, successor_ts, watermark in tier.gc_log:
        if successor_ts > watermark:
            problems.append(
                f"GC reclaimed {loid} version {pruned_ts} while its "
                f"successor {successor_ts} was above the watermark "
                f"{watermark}")
    return problems


def check_mvcc_integrity(engine) -> List[str]:
    """Structural health of the tier plus the lineage-aware store sweep."""
    tier = engine.mvcc
    problems = list(tier.verify())
    report = engine.verify_integrity()
    if not report.ok:
        problems.extend(report.problems()[:5])
    return problems


# -- recovery idempotence -----------------------------------------------------

def check_recovery_idempotence(engine) -> List[str]:
    """Flush, recover, recover again; all three states must agree."""
    from ..engine import CrashImage, StorageEngine
    from ..faults.chaos import graph_signature

    engine.log.flush_now()
    live_sig = graph_signature(engine)
    image = CrashImage(durable_log=engine.log.durable_bytes(),
                       snapshots=engine.snapshots, config=engine.config)
    once = StorageEngine.recover(image, sim=Simulator())
    problems: List[str] = []
    integrity = once.verify_integrity()
    if not integrity.ok:
        problems.append(
            f"recovered engine fails integrity: {integrity.problems()[:3]}")
    once_sig = graph_signature(once)
    if once_sig != live_sig:
        problems.append("recovered state diverges from the live engine "
                        "(some committed state never reached the WAL)")
    once.log.flush_now()
    image2 = CrashImage(durable_log=once.log.durable_bytes(),
                        snapshots=once.snapshots, config=once.config)
    twice = StorageEngine.recover(image2, sim=Simulator())
    if graph_signature(twice) != once_sig:
        problems.append("second recovery diverges from the first "
                        "(recovery is not idempotent)")
    return problems


# -- the suite ---------------------------------------------------------------

@dataclass
class OracleContext:
    """Everything the suite needs about one finished run.

    ``reorg`` and ``monitor`` accept a single object or a list — with a
    reorganizer *fleet* live, the transparency oracle translates through
    the union of every worker's migration mapping, and the footprint
    oracle pools every monitor's violations.
    """

    engine: object
    reorg: object
    history: Optional[HistoryRecorder]
    monitor: Optional[LockFootprintMonitor]
    initial_images: Dict
    start_lsn: int
    #: (process_name, repr(exception)) for every unhandled process death.
    unhandled: List[tuple] = field(default_factory=list)
    #: Skip the state-comparing oracles (run was killed mid-flight).
    state_valid: bool = True
    #: :class:`LockHierarchyMonitor` (or list of them) for hierarchical
    #: runs; ``None`` under the flat manager.
    hierarchy: Optional[LockHierarchyMonitor] = None


def _as_list(value) -> List:
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def merged_mapping(reorgs) -> Dict:
    """The union of every reorganizer's old→new migration mapping.

    Partitions are disjoint, so the per-worker mappings never disagree
    on a key; a crashed worker's partial mapping and its successor's
    roll-forward mapping overlap only on identical pairs.
    """
    mapping: Dict = {}
    for reorg in _as_list(reorgs):
        mapping.update(getattr(reorg.stats, "mapping", {}) or {})
    return mapping


def run_oracles(ctx: OracleContext) -> List[OracleVerdict]:
    now = ctx.engine.sim.now
    verdicts: List[OracleVerdict] = []

    if ctx.history is not None:
        report = check_serializability(ctx.history)
        verdicts.append(OracleVerdict("serializability", report.ok, now,
                                      report.problems()))

    if ctx.state_valid:
        mapping = merged_mapping(ctx.reorg)
        problems = check_transparency(ctx.engine, ctx.initial_images,
                                      ctx.start_lsn, mapping)
        verdicts.append(OracleVerdict("transparency", not problems, now,
                                      problems))

    monitors = _as_list(ctx.monitor)
    if monitors:
        violations = sorted(
            (v for monitor in monitors for v in monitor.violations),
            key=lambda v: v[0])
        intent_violations = sorted(
            (v for monitor in monitors
             for v in getattr(monitor, "intent_violations", ())),
            key=lambda v: v[0])
        details = [f"{count} distinct reorg locks at {at:.1f}ms: {keys}"
                   for at, count, keys in violations[:3]]
        details += [f"at {at:.1f}ms: {problem}"
                    for at, problem in intent_violations[:3]]
        first = violations or intent_violations
        at = first[0][0] if first else now
        verdicts.append(OracleVerdict(
            "lock_footprint", not violations and not intent_violations,
            at, details))

    hier_monitors = _as_list(ctx.hierarchy)
    if hier_monitors:
        violations = sorted(
            (v for monitor in hier_monitors for v in monitor.violations),
            key=lambda v: v[0])
        details = [f"at {at:.1f}ms: {problem}"
                   for at, problem in violations[:5]]
        at = violations[0][0] if violations else now
        verdicts.append(OracleVerdict("lock_hierarchy", not violations, at,
                                      details))

    if ctx.state_valid:
        problems = check_recovery_idempotence(ctx.engine)
        verdicts.append(OracleVerdict("recovery_idempotence", not problems,
                                      now, problems))

        report = deep_verify(ctx.engine)
        verdicts.append(OracleVerdict("deep_verify", report.ok, now,
                                      report.problems()[:5]))

    crashes = [f"{name}: {exc}" for name, exc in ctx.unhandled]
    verdicts.append(OracleVerdict("no_crash", not crashes, now, crashes[:5]))
    return verdicts
