"""Scheduler policies for schedule-space exploration.

The sim kernel consults an installed :class:`~repro.sim.SchedulerPolicy`
with the full same-timestamp ready set before every step (see
``repro.sim.kernel``).  The policies here layer exploration on top of
that hook:

* :class:`TracingPolicy` — FIFO, but counts every consultation, records
  the *choice points* (consultations with more than one ready callback)
  and the non-FIFO decisions actually taken.  The recorded decision map
  is the **schedule trace**: because the kernel and workload are
  deterministic, replaying the same decisions reproduces the identical
  run, tick for tick.
* :class:`ReplayPolicy` — applies a fixed ``{consultation_index:
  decision}`` map, FIFO everywhere else.  Used both to replay serialized
  failure traces and to drive the explorer's depth-bounded systematic
  deviations from the baseline schedule.
* :class:`RandomWalkPolicy` — seeded random perturbations: permutes
  same-timestamp ready sets and injects bounded preemptions by deferring
  a callback a small simulated-time amount (which merges it into a later
  ready set, exposing interleavings FIFO never produces).

Traces serialize to plain JSON (:func:`encode_decisions` /
:func:`decode_decisions`) so a failing schedule reproduces from a file
in a fresh process.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Tuple

from ..sim import SchedulerPolicy

#: A decision is ("run", index) or ("defer", index, delta_ms).
Decision = Tuple
FIFO: Decision = ("run", 0)


class TracingPolicy(SchedulerPolicy):
    """FIFO with full consultation accounting.

    Subclasses override :meth:`decide`; this class guarantees that
    whatever was *actually* decided lands in :attr:`decisions` (sparse:
    FIFO decisions are the default and are not recorded), that
    out-of-range indices are clamped to FIFO, and that choice points are
    remembered for the systematic explorer.
    """

    def __init__(self) -> None:
        self.consultations = 0
        #: consultation_index -> non-FIFO decision actually applied.
        self.decisions: Dict[int, Decision] = {}
        #: consultation_index -> ready-set size, for every consultation
        #: that offered a real choice (size > 1).
        self.choice_points: Dict[int, int] = {}

    def schedule(self, now: float, ready: list) -> Decision:
        index = self.consultations
        self.consultations += 1
        if len(ready) > 1:
            self.choice_points[index] = len(ready)
        decision = self.decide(index, now, ready)
        decision = self._clamp(decision, len(ready))
        if decision != FIFO:
            self.decisions[index] = decision
        return decision

    def decide(self, index: int, now: float, ready: list) -> Decision:
        return FIFO

    @staticmethod
    def _clamp(decision: Decision, size: int) -> Decision:
        kind = decision[0]
        if kind == "run":
            i = int(decision[1])
            return ("run", i) if 0 <= i < size else FIFO
        if kind == "defer":
            i = int(decision[1])
            if not 0 <= i < size:
                return FIFO
            return ("defer", i, max(float(decision[2]),
                                    SchedulerPolicy.MIN_DEFER))
        return FIFO

    def trace_hash(self) -> str:
        """Stable digest of the executed schedule, for deduplication."""
        return hash_decisions(self.decisions)


class ReplayPolicy(TracingPolicy):
    """Apply a fixed decision map; FIFO at every other consultation.

    Replays a serialized failure trace exactly (the kernel is
    deterministic, so same decisions + same workload = same run), and
    doubles as the systematic explorer's deviation driver.  Decisions
    whose index never comes up, or that no longer fit the ready set, are
    silently clamped to FIFO — the run is then simply a different (still
    valid) schedule, visible via :meth:`trace_hash`.
    """

    def __init__(self, decisions: Dict[int, Decision]):
        super().__init__()
        self._plan = {int(k): tuple(v) for k, v in decisions.items()}

    def decide(self, index: int, now: float, ready: list) -> Decision:
        return self._plan.get(index, FIFO)


class RandomWalkPolicy(TracingPolicy):
    """Seeded random schedule perturbation.

    With probability ``permute_prob``, run a uniformly random member of
    a multi-element ready set instead of the FIFO head; with probability
    ``defer_prob``, defer a random ready callback by up to
    ``max_defer_ms`` of simulated time (a bounded preemption: the
    deferred callback re-enters the queue later and races whatever is
    scheduled there).  Fully deterministic for a given seed.
    """

    def __init__(self, seed: int, permute_prob: float = 0.4,
                 defer_prob: float = 0.05, max_defer_ms: float = 2.0):
        super().__init__()
        import random
        self._rng = random.Random(f"explore/random-walk/{seed}")
        self.permute_prob = permute_prob
        self.defer_prob = defer_prob
        self.max_defer_ms = max_defer_ms

    def decide(self, index: int, now: float, ready: list) -> Decision:
        rng = self._rng
        if len(ready) > 1 and rng.random() < self.permute_prob:
            return ("run", rng.randrange(len(ready)))
        if rng.random() < self.defer_prob:
            return ("defer", rng.randrange(len(ready)),
                    rng.uniform(0.01, self.max_defer_ms))
        return FIFO


# -- trace serialization ------------------------------------------------------

def encode_decisions(decisions: Dict[int, Decision]) -> Dict[str, list]:
    """JSON-safe form of a decision map (keys become strings)."""
    return {str(index): list(decision)
            for index, decision in sorted(decisions.items())}


def decode_decisions(data: Dict[str, list]) -> Dict[int, Decision]:
    return {int(index): tuple(decision)
            for index, decision in data.items()}


def hash_decisions(decisions: Dict[int, Decision]) -> str:
    payload = json.dumps(encode_decisions(decisions), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def systematic_deviations(choice_points: Dict[int, int], depth: int,
                          max_points: int = 64):
    """Depth-bounded systematic reordering of same-time ready sets.

    Yields decision maps that differ from the FIFO baseline at up to
    ``depth`` of the baseline's choice points, running a non-head member
    there.  Depth-1 deviations come first (every alternative at every
    considered choice point), then depth-2 combinations, …  Deeper
    decisions apply to an already-diverged execution, so their indices
    are best-effort — the clamp in :class:`TracingPolicy` keeps every
    combination a valid schedule.

    Lazy on purpose: a run can have thousands of choice points and the
    combination count is exponential in ``depth``; the caller consumes
    only as many deviations as its budget allows.  ``max_points`` bounds
    the choice points considered (earliest first — the early ready sets
    decide process startup order, where reorderings bite hardest).
    """
    points = sorted(choice_points.items())[:max_points]
    singles: List[Tuple[int, Decision]] = [
        (index, ("run", alt))
        for index, size in points for alt in range(1, size)]
    previous: List[List[Tuple[int, Decision]]] = []
    for single in singles:
        yield dict([single])
        previous.append([single])
    for _ in range(2, depth + 1):
        layer: List[List[Tuple[int, Decision]]] = []
        for combo in previous:
            last_index = combo[-1][0]
            for single in singles:
                if single[0] > last_index:
                    yield dict(combo + [single])
                    layer.append(combo + [single])
        previous = layer
        if not previous:
            break
