"""Observed read/write history + conflict-graph serializability.

:class:`HistoryRecorder` hangs off ``engine.history`` and is fed by the
transaction layer: every object read and every logged physical write
notes ``(tid, action, oid)`` in global execution order (the order the
accesses actually happened in the simulation — at most one callback runs
at a time, so the order is total).

:func:`check_serializability` builds the conflict graph over the
*committed* transactions: an edge T1 → T2 whenever T1 accessed an object
before T2 did and at least one of the two accesses is a write.  A cycle
means the schedule is not conflict-serializable — under the engine's
strict 2PL that is an invariant violation, which is exactly why the
explorer runs this oracle over every perturbed schedule.

Conflicts are keyed by physical address.  Reorganization moves objects
between addresses, but the reorganizer's own transactions write both the
old and the new location, so any user-transaction ordering induced
through a migrated object is chained through the reorganizer's node in
the graph — address-level conflict-serializability remains the right
formal property (those are the items actually locked).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Access:
    seq: int
    tid: int
    action: str  # "r" or "w"
    oid: object
    at_ms: float


class HistoryRecorder:
    """Collects accesses and transaction outcomes during one run."""

    def __init__(self, sim):
        self.sim = sim
        self.accesses: List[Access] = []
        self.committed: Set[int] = set()
        self.aborted: Set[int] = set()
        #: tid -> (system, reorg_partition) for post-run attribution.
        self.txn_kind: Dict[int, Tuple[bool, Optional[int]]] = {}
        self._seq = 0

    def record_begin(self, txn) -> None:
        self.txn_kind[txn.tid] = (txn.system,
                                  getattr(txn, "reorg_partition", None))

    def record(self, txn, action: str, oid) -> None:
        self._seq += 1
        self.accesses.append(Access(self._seq, txn.tid, action, oid,
                                    self.sim.now))

    def record_end(self, txn) -> None:
        if txn.status.value == "committed":
            self.committed.add(txn.tid)
        else:
            self.aborted.add(txn.tid)


@dataclass
class SerializabilityReport:
    ok: bool = True
    transactions: int = 0
    edges: int = 0
    #: One conflict cycle (tids, first repeated at the end) if not ok.
    cycle: List[int] = field(default_factory=list)

    def problems(self) -> List[str]:
        if self.ok:
            return []
        return [f"conflict cycle: {' -> '.join(map(str, self.cycle))}"]


def conflict_graph(accesses: List[Access],
                   committed: Set[int]) -> Dict[int, Set[int]]:
    """Adjacency sets of the conflict graph over committed transactions."""
    graph: Dict[int, Set[int]] = {tid: set() for tid in committed}
    # One pass in execution order: each access conflicts with every
    # earlier access to the same oid by a different committed txn where
    # at least one side writes.
    writers_so_far: Dict[object, Set[int]] = {}
    readers_so_far: Dict[object, Set[int]] = {}
    for access in accesses:
        if access.tid not in committed:
            continue
        if access.action == "w":
            for prior in writers_so_far.get(access.oid, ()):
                if prior != access.tid:
                    graph[prior].add(access.tid)
            for prior in readers_so_far.get(access.oid, ()):
                if prior != access.tid:
                    graph[prior].add(access.tid)
            writers_so_far.setdefault(access.oid, set()).add(access.tid)
        else:
            for prior in writers_so_far.get(access.oid, ()):
                if prior != access.tid:
                    graph[prior].add(access.tid)
            readers_so_far.setdefault(access.oid, set()).add(access.tid)
    return graph


def _find_cycle(graph: Dict[int, Set[int]]) -> List[int]:
    """A cycle in the directed graph, or [] — iterative three-color DFS."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    parent: Dict[int, Optional[int]] = {}
    for root in sorted(graph):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, object]] = [(root, iter(sorted(graph[root])))]
        color[root] = GRAY
        parent[root] = None
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color.get(child, BLACK) == WHITE:
                    color[child] = GRAY
                    parent[child] = node
                    stack.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if color.get(child) == GRAY:
                    cycle = [child]
                    walk = node
                    while walk is not None and walk != child:
                        cycle.append(walk)
                        walk = parent[walk]
                    cycle.append(child)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return []


def check_serializability(history: HistoryRecorder) -> SerializabilityReport:
    """Conflict-serializability verdict over the recorded history."""
    graph = conflict_graph(history.accesses, history.committed)
    report = SerializabilityReport(
        transactions=len(graph),
        edges=sum(len(out) for out in graph.values()))
    cycle = _find_cycle(graph)
    if cycle:
        report.ok = False
        report.cycle = cycle
    return report
