"""Trace minimization: shrink a failing schedule to its essence.

A failing schedule found by the explorer may carry hundreds of recorded
scheduling decisions, most of them irrelevant to the failure.  The
minimizer is a budgeted ddmin (delta debugging) over the *sparse*
decision map: it re-runs candidate subsets through the caller-supplied
``still_fails`` predicate (which replays the subset and checks that the
same oracles fire) and keeps the smallest subset that still reproduces.

Each probe is a full simulation run, so the search is budget-capped
rather than run to the 1-minimal fixpoint; the artifact notes whether
the budget expired.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple


def minimize_decisions(decisions: Dict[int, tuple],
                       still_fails: Callable[[Dict[int, tuple]], bool],
                       budget: int = 32) -> Tuple[Dict[int, tuple], bool]:
    """ddmin over decision items; returns ``(minimized, budget_left)``.

    ``still_fails(subset)`` must replay the subset and report whether the
    original failure reproduces.  The input map is assumed failing; at
    most ``budget`` probes are spent.
    """
    items: List[tuple] = sorted(decisions.items())
    spent = [0]

    def probe(subset: List[tuple]) -> bool:
        if spent[0] >= budget:
            return False
        spent[0] += 1
        return still_fails(dict(subset))

    # Fast path: does the failure even need the deviations?
    if items and probe([]):
        return {}, True

    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            if spent[0] >= budget:
                return dict(items), False
            candidate = items[:start] + items[start + chunk:]
            if candidate != items and probe(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(items))
    return dict(items), spent[0] < budget
