"""The bounded schedule-space explorer.

One *schedule* = one deterministic end-to-end run of the standard
workload (MPL random-walk threads + one on-line reorganization) under a
scheduler policy, followed by the full oracle suite.  The explorer runs
many schedules — the FIFO baseline, depth-bounded systematic deviations
from it, and seeded random walks — deduplicates them by trace hash, and
turns any failure into a minimized, replayable artifact file.

Entry points:

* :func:`run_schedule` — one schedule under one policy, returning a
  :class:`ScheduleResult` with the executed trace and oracle verdicts.
* :func:`explore` — the search loop (``repro explore`` in the CLI).
* :func:`replay_artifact` — re-run a serialized failure artifact; a
  fresh process reproduces the identical failure (same oracles, same
  simulated end time) because the kernel, workload and policies are all
  deterministic.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from ..config import (
    ExperimentConfig,
    ReorgConfig,
    SystemConfig,
    WorkloadConfig,
)
from ..core import CompactionPlan
from ..database import Database
from ..workload.driver import WorkloadDriver
from ..workload.metrics import ExperimentMetrics
from .history import HistoryRecorder
from .minimize import minimize_decisions
from .mutations import MUTATIONS, Mutation
from .oracles import (
    LockFootprintMonitor,
    LockHierarchyMonitor,
    OracleContext,
    OracleVerdict,
    run_oracles,
)
from .scheduler import (
    RandomWalkPolicy,
    ReplayPolicy,
    TracingPolicy,
    decode_decisions,
    encode_decisions,
    systematic_deviations,
)

#: Simulated-time bound per schedule: a healthy run of the default
#: workload finishes far earlier; hitting the horizon means a planted
#: (or real) bug wedged the run, which the liveness verdict reports.
DEFAULT_HORIZON_MS = 600_000.0

#: Escalation threshold for hierarchical explorer runs: low enough that
#: the standard workload escalates for real (and the planted escalation
#: bugs get exercised), high enough that most locking stays fine-grained.
HIER_ESCALATE_AFTER = 3


def _system_config(locks: str, strict: bool) -> Optional[SystemConfig]:
    """The engine config one explored schedule runs under.

    ``None`` for the default flat/strict point, so those runs build the
    engine exactly as before this axis existed (byte-identical)."""
    if locks == "flat" and strict:
        return None
    return SystemConfig(
        lock_manager=locks,
        lock_escalate_after=HIER_ESCALATE_AFTER if locks == "hier" else 0,
        strict_transactions=strict)


def default_workload(seed: int = 131) -> WorkloadConfig:
    """The explorer's standard workload: small enough that one schedule
    runs in well under a second, busy enough (three threads, two
    partitions, pointer-rewiring updates) to produce real contention."""
    return WorkloadConfig(num_partitions=2, objects_per_partition=85,
                          mpl=3, seed=seed)


@dataclass
class ScheduleResult:
    """One explored schedule's identity and verdicts."""

    trace: Dict[int, tuple]
    trace_hash: str
    consultations: int
    choice_points: int
    verdicts: List[OracleVerdict]
    sim_end_ms: float
    committed: int
    mutation: Optional[str] = None
    mutation_triggered: bool = False

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def failing(self) -> List[str]:
        return [v.name for v in self.verdicts if not v.ok]


def run_schedule(policy: TracingPolicy,
                 workload: Optional[WorkloadConfig] = None,
                 algorithm: str = "ira",
                 reorg_config: Optional[ReorgConfig] = None,
                 reorg_partition: int = 1,
                 mutation: Optional[Mutation] = None,
                 locks: str = "flat",
                 strict: bool = True,
                 horizon_ms: float = DEFAULT_HORIZON_MS) -> ScheduleResult:
    """Run one schedule under ``policy`` and judge it with every oracle.

    ``locks`` selects the lock manager ("flat" or "hier"); ``strict``
    selects strict vs. relaxed (§4.1) two-phase locking for the user
    transactions.  Relaxed runs skip the serializability oracle —
    short-duration read locks give up that guarantee by design — but
    keep every state oracle (transparency, recovery, deep verify).
    """
    workload = workload or default_workload()
    if mutation is not None and locks == "flat":
        # A mutation lives in one manager's seams; a hier-locks bug
        # cannot even install against the flat manager.
        locks = mutation.locks
    if algorithm == "mvcc":
        return _run_mvcc_schedule(policy, workload, reorg_partition,
                                  mutation, horizon_ms)
    db, layout = Database.with_workload(workload,
                                        system=_system_config(locks, strict))
    engine, sim = db.engine, db.sim
    history = HistoryRecorder(sim)
    engine.history = history

    reorg = db.reorganizer(reorg_partition, algorithm,
                           plan=CompactionPlan(), reorg_config=reorg_config)
    if mutation is not None:
        mutation.install(engine, reorg)
    # §4.2's two-lock claim is enforced for ira-2lock; other algorithms
    # only have their peak footprint recorded.
    limit = 2 if algorithm == "ira-2lock" else None
    monitor = LockFootprintMonitor(engine, reorg, limit=limit).install()
    hierarchy = (LockHierarchyMonitor(engine).install()
                 if locks == "hier" else None)

    # The transparency oracle's reference point: the loaded database and
    # the log position it starts replaying user transactions from.
    initial_images = {oid: engine.store.read_object(oid).copy()
                      for oid in engine.store.all_live_oids()}
    start_lsn = engine.log.last_lsn

    metrics = ExperimentMetrics(algorithm=algorithm, mpl=workload.mpl)
    driver = WorkloadDriver(engine, layout, ExperimentConfig(
        workload=workload))

    def reorg_watch():
        try:
            yield from reorg.run()
        finally:
            # Close the measurement window however the reorganizer ends
            # (normally, or by a planted bug's exception) so the threads
            # stop submitting and the queue can drain.
            driver._close(metrics)

    sim.spawn(reorg_watch(), name="reorganizer")
    for thread_id in range(workload.mpl):
        sim.spawn(driver._thread_process(thread_id, metrics),
                  name=f"thread-{thread_id}")

    sim.set_policy(policy)
    try:
        sim.run(until=horizon_ms, raise_unhandled=False)
    finally:
        sim.set_policy(None)

    hung = bool(sim._queue or sim._ready)
    unhandled = [(proc.name, f"{type(exc).__name__}: {exc}")
                 for proc, exc in sim._unhandled]
    if hung or unhandled:
        # A process died mid-transaction (or wedged the run): kill what
        # is left and roll the still-active transactions back, so the
        # state oracles judge committed state only — the planted bug's
        # committed damage, not the unrelated in-flight litter.
        driver._close(metrics)
        sim.kill_all()
        _rollback_active(engine)

    if mutation is not None:
        mutation.post_run(engine, reorg)

    ctx = OracleContext(engine=engine, reorg=reorg,
                        history=history if strict else None,
                        monitor=monitor, initial_images=initial_images,
                        start_lsn=start_lsn, unhandled=unhandled,
                        hierarchy=hierarchy)
    verdicts = run_oracles(ctx)
    if hung:
        verdicts.append(OracleVerdict(
            "liveness", False, sim.now,
            [f"run still busy at the {horizon_ms:.0f}ms horizon"]))

    return ScheduleResult(
        trace=dict(policy.decisions),
        trace_hash=policy.trace_hash(),
        consultations=policy.consultations,
        choice_points=len(policy.choice_points),
        verdicts=verdicts,
        sim_end_ms=sim.now,
        committed=len(history.committed),
        mutation=mutation.name if mutation is not None else None,
        mutation_triggered=(mutation.triggered
                            if mutation is not None else False),
    )


def _run_mvcc_schedule(policy: TracingPolicy, workload: WorkloadConfig,
                       reorg_partition: int, mutation: Optional[Mutation],
                       horizon_ms: float) -> ScheduleResult:
    """One explored schedule of the MVCC arm: MPL snapshot-transaction
    walk threads racing one merge reorganization, judged by the
    snapshot-isolation oracle instead of the 2PL suite (there are no
    locks to monitor and no migration mapping to translate through —
    relocation is invisible at the logical layer by design)."""
    import random

    from ..config import MvccConfig
    from ..errors import WriteConflictError
    from ..mvcc import MergeReorganizer, MvccTier, mvcc_random_walk
    from ..sim import Delay

    db, layout = Database.with_workload(workload)
    engine, sim = db.engine, db.sim
    tier = MvccTier.attach(engine, MvccConfig(record_history=True))
    reorg = MergeReorganizer(engine, reorg_partition, plan=CompactionPlan())
    if mutation is not None:
        mutation.install(engine, reorg)

    state = {"closed": False}

    def reorg_watch():
        try:
            yield from reorg.run()
        finally:
            state["closed"] = True

    def thread_process(thread_id: int):
        home = 1 + thread_id % (workload.num_partitions)
        thread_rng = random.Random(f"{workload.seed}/mvcc-{thread_id}")
        while not state["closed"]:
            txn_seed = thread_rng.getrandbits(48)
            while True:
                try:
                    yield from mvcc_random_walk(
                        engine, layout, workload,
                        random.Random(txn_seed), home)
                    break
                except WriteConflictError:
                    # Same logical transaction, fresh snapshot — the 2PL
                    # driver's deadlock-retry discipline, minus the locks.
                    yield Delay(thread_rng.uniform(1.0, 25.0))

    sim.spawn(reorg_watch(), name="reorganizer")
    for thread_id in range(workload.mpl):
        sim.spawn(thread_process(thread_id), name=f"thread-{thread_id}")

    sim.set_policy(policy)
    try:
        sim.run(until=horizon_ms, raise_unhandled=False)
    finally:
        sim.set_policy(None)

    hung = bool(sim._queue or sim._ready)
    unhandled = [(proc.name, f"{type(exc).__name__}: {exc}")
                 for proc, exc in sim._unhandled]
    if hung or unhandled:
        sim.kill_all()
        _rollback_active(engine)

    if mutation is not None:
        mutation.post_run(engine, reorg)

    from .oracles import check_mvcc_integrity, check_snapshot_isolation
    now = sim.now
    verdicts: List[OracleVerdict] = []
    problems = check_snapshot_isolation(tier)
    verdicts.append(OracleVerdict("snapshot_isolation", not problems, now,
                                  problems))
    problems = check_mvcc_integrity(engine)
    verdicts.append(OracleVerdict("mvcc_integrity", not problems, now,
                                  problems[:5]))
    crashes = [f"{name}: {exc}" for name, exc in unhandled]
    verdicts.append(OracleVerdict("no_crash", not crashes, now, crashes[:5]))
    if hung:
        verdicts.append(OracleVerdict(
            "liveness", False, now,
            [f"run still busy at the {horizon_ms:.0f}ms horizon"]))

    return ScheduleResult(
        trace=dict(policy.decisions),
        trace_hash=policy.trace_hash(),
        consultations=policy.consultations,
        choice_points=len(policy.choice_points),
        verdicts=verdicts,
        sim_end_ms=now,
        committed=tier.stats.commits,
        mutation=mutation.name if mutation is not None else None,
        mutation_triggered=(mutation.triggered
                            if mutation is not None else False),
    )


def _rollback_active(engine) -> None:
    sim = engine.sim
    for tid in sorted(engine.txns.active_tids()):
        sim.spawn(engine.txns.transaction(tid).abort(),
                  name=f"rollback-{tid}")
    sim.run(raise_unhandled=False)


# -- the search loop ----------------------------------------------------------

@dataclass
class ExploreReport:
    """What one ``explore()`` call covered and found."""

    schedules_run: int = 0
    distinct: int = 0
    baseline_choice_points: int = 0
    failures: List[ScheduleResult] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)
    results: List[ScheduleResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def explore(seeds: int = 50, depth: int = 2,
            workload: Optional[WorkloadConfig] = None,
            algorithm: str = "ira",
            reorg_config: Optional[ReorgConfig] = None,
            mutation_name: Optional[str] = None,
            locks: str = "flat",
            strict: bool = True,
            out_dir: Optional[str] = None,
            minimize_budget: int = 24,
            progress: Optional[Callable[[str], None]] = None
            ) -> ExploreReport:
    """Explore up to ``seeds`` distinct schedules of the workload.

    The FIFO baseline runs first; its choice points seed the systematic
    deviations (up to ``depth`` reorderings per schedule, half the
    budget), and seeded random walks fill the rest.  Duplicate executed
    traces (by hash) are not counted.  With ``out_dir`` set, every
    failure is serialized as a replayable artifact — minimized first
    when it has deviations to shrink.
    """
    workload = workload or default_workload()
    if mutation_name and MUTATIONS[mutation_name].locks == "hier":
        # A bug planted in the hierarchical manager needs that manager.
        locks = "hier"
    say = progress or (lambda message: None)
    report = ExploreReport()
    seen: Dict[str, ScheduleResult] = {}

    def run_one(policy: TracingPolicy, kind: str) -> Optional[ScheduleResult]:
        mutation = MUTATIONS[mutation_name]() if mutation_name else None
        result = run_schedule(policy, workload=workload, algorithm=algorithm,
                              reorg_config=reorg_config, mutation=mutation,
                              locks=locks, strict=strict)
        report.schedules_run += 1
        if result.trace_hash in seen:
            return None
        seen[result.trace_hash] = result
        report.results.append(result)
        if not result.ok:
            report.failures.append(result)
            say(f"[{kind}] schedule {result.trace_hash} FAILED: "
                f"{', '.join(result.failing())}")
            if out_dir is not None:
                path = _emit_artifact(out_dir, result, workload, algorithm,
                                      reorg_config, mutation_name,
                                      locks, strict,
                                      minimize_budget, say)
                if path not in report.artifacts:
                    report.artifacts.append(path)
        return result

    baseline = TracingPolicy()
    result = run_one(baseline, "baseline")
    report.baseline_choice_points = len(baseline.choice_points)
    say(f"baseline: {baseline.consultations} consultations, "
        f"{len(baseline.choice_points)} choice points, "
        f"{result.committed if result else 0} committed txns")

    attempts = 1
    systematic_budget = 1 + max(0, seeds // 2)
    for deviation in systematic_deviations(baseline.choice_points, depth):
        if len(seen) >= systematic_budget or attempts >= 2 * seeds:
            break
        attempts += 1
        run_one(ReplayPolicy(deviation), "systematic")

    walk_seed = 0
    while len(seen) < seeds and attempts < 3 * seeds:
        attempts += 1
        walk_seed += 1
        run_one(RandomWalkPolicy(seed=walk_seed), "random-walk")

    report.distinct = len(seen)
    say(f"explored {report.distinct} distinct schedules "
        f"({report.schedules_run} runs); "
        f"{len(report.failures)} failing")
    return report


# -- failure artifacts --------------------------------------------------------

def _emit_artifact(out_dir: str, result: ScheduleResult,
                   workload: WorkloadConfig, algorithm: str,
                   reorg_config: Optional[ReorgConfig],
                   mutation_name: Optional[str],
                   locks: str, strict: bool,
                   minimize_budget: int,
                   say: Callable[[str], None]) -> str:
    decisions = dict(result.trace)
    minimized = False
    signature = set(result.failing())
    if decisions and minimize_budget > 0:
        def still_fails(subset: Dict[int, tuple]) -> bool:
            mutation = MUTATIONS[mutation_name]() if mutation_name else None
            rerun = run_schedule(ReplayPolicy(subset), workload=workload,
                                 algorithm=algorithm,
                                 reorg_config=reorg_config,
                                 mutation=mutation,
                                 locks=locks, strict=strict)
            return signature <= set(rerun.failing())

        decisions, complete = minimize_decisions(decisions, still_fails,
                                                 budget=minimize_budget)
        minimized = True
        say(f"minimized {len(result.trace)} -> {len(decisions)} decisions"
            + ("" if complete else " (budget expired)"))
        if decisions != dict(result.trace):
            # The artifact must describe the run its decisions produce,
            # so a replay reproduces the recorded failure exactly.
            mutation = MUTATIONS[mutation_name]() if mutation_name else None
            result = run_schedule(ReplayPolicy(decisions),
                                  workload=workload, algorithm=algorithm,
                                  reorg_config=reorg_config,
                                  mutation=mutation,
                                  locks=locks, strict=strict)

    import os
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"failure-{result.trace_hash}.json")
    with open(path, "w") as handle:
        json.dump(build_artifact(decisions, result, workload, algorithm,
                                 reorg_config, mutation_name, locks, strict,
                                 minimized),
                  handle, indent=2, sort_keys=True)
    say(f"wrote {path}")
    return path


def build_artifact(decisions: Dict[int, tuple], result: ScheduleResult,
                   workload: WorkloadConfig, algorithm: str,
                   reorg_config: Optional[ReorgConfig],
                   mutation_name: Optional[str],
                   locks: str = "flat", strict: bool = True,
                   minimized: bool = False) -> dict:
    return {
        "version": 1,
        "workload": asdict(workload),
        "algorithm": algorithm,
        "reorg_config": (asdict(reorg_config)
                         if reorg_config is not None else None),
        "mutation": mutation_name,
        "locks": locks,
        "strict": strict,
        "decisions": encode_decisions(decisions),
        "minimized": minimized,
        "failure": {
            "oracles": result.failing(),
            "sim_end_ms": result.sim_end_ms,
            "trace_hash": result.trace_hash,
        },
    }


def replay_artifact(path: str) -> ScheduleResult:
    """Re-run a serialized failure artifact (fresh-process reproduction)."""
    with open(path) as handle:
        data = json.load(handle)
    workload = WorkloadConfig(**data["workload"])
    reorg_config = (ReorgConfig(**data["reorg_config"])
                    if data.get("reorg_config") else None)
    mutation = (MUTATIONS[data["mutation"]]()
                if data.get("mutation") else None)
    policy = ReplayPolicy(decode_decisions(data["decisions"]))
    return run_schedule(policy, workload=workload,
                        algorithm=data["algorithm"],
                        reorg_config=reorg_config, mutation=mutation,
                        locks=data.get("locks", "flat"),
                        strict=data.get("strict", True))
