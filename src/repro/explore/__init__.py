"""Schedule-space exploration: a model-checking layer over the DES kernel.

The deterministic simulation kernel makes every run a pure function of
its schedule.  This package turns that into a checker: scheduler
policies (``scheduler``) perturb and record same-timestamp execution
order, a history recorder and oracle suite (``history``, ``oracles``)
judge each run against the paper's claimed invariants, planted bugs
(``mutations``) prove the oracles can fire, and the explorer
(``explorer``) searches the schedule space and shrinks failures into
replayable artifacts (``minimize``).  See EXPLORING.md for the guided
tour.
"""

from .explorer import (
    DEFAULT_HORIZON_MS,
    ExploreReport,
    ScheduleResult,
    build_artifact,
    default_workload,
    explore,
    replay_artifact,
    run_schedule,
)
from .history import (
    Access,
    HistoryRecorder,
    SerializabilityReport,
    check_serializability,
    conflict_graph,
)
from .minimize import minimize_decisions
from .mutations import MUTATIONS, Mutation
from .oracles import (
    LockFootprintMonitor,
    LockHierarchyMonitor,
    OracleContext,
    OracleVerdict,
    check_recovery_idempotence,
    check_transparency,
    graph_matches_under_mapping,
    object_graph,
    relabeled,
    run_oracles,
)
from .scheduler import (
    RandomWalkPolicy,
    ReplayPolicy,
    TracingPolicy,
    decode_decisions,
    encode_decisions,
    hash_decisions,
    systematic_deviations,
)

__all__ = [
    "Access",
    "DEFAULT_HORIZON_MS",
    "ExploreReport",
    "HistoryRecorder",
    "LockFootprintMonitor",
    "LockHierarchyMonitor",
    "MUTATIONS",
    "Mutation",
    "OracleContext",
    "OracleVerdict",
    "RandomWalkPolicy",
    "ReplayPolicy",
    "ScheduleResult",
    "SerializabilityReport",
    "TracingPolicy",
    "build_artifact",
    "check_recovery_idempotence",
    "check_serializability",
    "check_transparency",
    "conflict_graph",
    "decode_decisions",
    "default_workload",
    "encode_decisions",
    "explore",
    "graph_matches_under_mapping",
    "hash_decisions",
    "minimize_decisions",
    "object_graph",
    "relabeled",
    "replay_artifact",
    "run_oracles",
    "run_schedule",
    "systematic_deviations",
]
