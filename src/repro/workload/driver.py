"""The experiment driver (paper §5.2, "Transaction Access Pattern").

Fixes the multiprogramming level by spawning MPL thread processes; each
thread submits random-walk transactions back-to-back, all of one
thread's walks starting in its home partition, threads assigned to
partitions round-robin.  A transaction aborted by a lock timeout is
retried by its thread; the logical transaction's response time runs from
first submission to final commit.

The measurement window closes when the reorganizer finishes (the paper's
protocol: "transactions were run until the reorganization operation
completed"), or at an explicit horizon for NR runs — and §5.3.4's
variant measures a PQR run over IRA's longer duration by passing both a
reorganizer and a horizon.  Threads drain: a transaction in flight when
the window closes finishes and is recorded, which is how PQR's blocked
transactions surface their enormous response times in Table 2.
"""

from __future__ import annotations

import random
from typing import Any, Generator, Optional

from ..concurrency import LockTimeoutError
from ..sim import Delay
from ..config import ExperimentConfig, RetryPolicy
from .graphgen import GraphLayout
from .metrics import ExperimentMetrics, TransactionRecord
from .transactions import random_walk_transaction


class WorkloadDriver:
    """Runs one experiment: MPL threads + (optionally) a reorganizer.

    Subclasses may override ``walk_fn`` (the per-transaction generator)
    and ``retry_on`` (the abort exceptions a thread retries) to run the
    same closed-loop protocol over a different transaction API — the
    MVCC arm swaps in snapshot-transaction walks retried on
    first-committer-wins conflicts, with identical seeding.
    """

    walk_fn = staticmethod(random_walk_transaction)
    retry_on = (LockTimeoutError,)

    def __init__(self, engine, layout: GraphLayout,
                 experiment: ExperimentConfig):
        self.engine = engine
        self.layout = layout
        self.experiment = experiment
        self.config = experiment.workload
        self._stop = False
        self._start_ms = 0.0

    def run(self, reorganizer=None,
            horizon_ms: Optional[float] = None) -> ExperimentMetrics:
        """Run one experiment; returns the metrics.

        * ``reorganizer`` only — the window closes when its ``run()``
          generator finishes (the paper's protocol).  A *list* of
          reorganizers runs them concurrently (different partitions); the
          window closes when the last one finishes.
        * ``horizon_ms`` only — an NR run over a fixed window.
        * both — the window closes at the horizon even if the reorganizer
          finished earlier (§5.3.4's equal-duration comparison).
        """
        reorganizers = ([] if reorganizer is None
                        else reorganizer if isinstance(reorganizer, list)
                        else [reorganizer])
        if not reorganizers and horizon_ms is None:
            horizon_ms = self.experiment.horizon_ms
            if horizon_ms is None:
                raise ValueError("need a reorganizer and/or a horizon_ms")
        algorithm = (reorganizers[0].algorithm_name if reorganizers
                     else "nr")
        metrics = ExperimentMetrics(algorithm=algorithm,
                                    mpl=self.config.mpl)
        self._stop = False
        sim = self.engine.sim
        self._start_ms = sim.now
        buffer = self.engine.buffer
        buffer_base = buffer.stats.snapshot() if buffer is not None else None

        for thread_id in range(self.config.mpl):
            sim.spawn(self._thread_process(thread_id, metrics),
                      name=f"thread-{thread_id}")

        close_at_reorg_end = horizon_ms is None
        remaining = {"count": len(reorganizers)}
        reorg_procs = [
            sim.spawn(self._reorg_process(one, metrics,
                                          close_at_reorg_end, remaining),
                      name=f"reorganizer-{index}")
            for index, one in enumerate(reorganizers)
        ]
        if horizon_ms is not None:
            def close_window() -> None:
                self._close(metrics)
            sim.call_later(horizon_ms, close_window)

        sim.run()

        if reorg_procs:
            metrics.reorg_stats = reorg_procs[0].result
            metrics.reorg_duration_ms = max(
                proc.result.duration_ms for proc in reorg_procs)
        metrics.lock_waits = self.engine.locks.stats.waits
        metrics.lock_timeouts = self.engine.locks.stats.timeouts
        metrics.forced_lock_timeouts = self.engine.locks.stats.forced_timeouts
        metrics.deadlock_victims = self.engine.locks.stats.deadlock_victims
        # None for the flat manager (keeps its summaries byte-identical);
        # the hierarchical manager always reports its counters.
        metrics.locks = self.engine.locks.counters_summary()
        metrics.deadlock_aborts = self.engine.txns.abort_reasons.get(
            "deadlock", 0)
        metrics.io_faults = self.engine.log.io_faults
        metrics.io_retries = self.engine.log.io_retries
        if buffer is not None:
            metrics.io_faults += buffer.stats.io_faults
            metrics.io_retries += buffer.stats.io_retries
            # Windowed deltas: a multi-phase experiment (trace, reorganize,
            # measure) gets each run's own page-fetch accounting.
            metrics.buffer = buffer.stats.since(buffer_base)
        metrics.cpu_utilization = self.engine.cpu.utilization(
            horizon=metrics.window_ms or None)
        return metrics

    def _close(self, metrics: ExperimentMetrics) -> None:
        if not self._stop:
            self._stop = True
            metrics.window_ms = self.engine.sim.now - self._start_ms

    # -- processes ------------------------------------------------------------------

    def _thread_process(self, thread_id: int,
                        metrics: ExperimentMetrics
                        ) -> Generator[Any, Any, None]:
        # Unbounded retries: a closed-loop thread never gives a logical
        # transaction up.  The policy's draws come from ``thread_rng``,
        # which is shared with the per-transaction seed draws — the
        # interleaving is part of the seeded runs' byte-identity.
        policy = RetryPolicy.uniform(max_retries=None)
        thread_rng = RetryPolicy.rng(f"{self.config.seed}/thread-{thread_id}")
        home = 1 + thread_id % self.config.num_partitions
        while not self._stop:
            started = self.engine.sim.now
            retries = 0
            # A logical transaction is a fixed piece of work: a retry after
            # a timeout-abort re-runs the *same* walk (same per-transaction
            # seed), it does not draw a fresh random one.  This is what
            # lets a reorganizer holding the locks a transaction needs pin
            # that transaction down for its whole duration (paper §5.3.1).
            txn_seed = thread_rng.getrandbits(64)
            while True:
                try:
                    yield from self.walk_fn(
                        self.engine, self.layout, self.config,
                        random.Random(txn_seed), home)
                    break
                except self.retry_on:
                    metrics.aborts += 1
                    retries += 1
                    # Randomized backoff before the retry: two transactions
                    # deadlocking on identical walks would otherwise repeat
                    # the same collision in deterministic lockstep forever
                    # (a real system's scheduler provides this jitter).
                    yield Delay(policy.delay_ms(retries, thread_rng))
            metrics.records.append(TransactionRecord(
                thread_id=thread_id,
                started_ms=started - self._start_ms,
                finished_ms=self.engine.sim.now - self._start_ms,
                retries=retries))

    def _reorg_process(self, reorganizer, metrics: ExperimentMetrics,
                       close_at_end: bool,
                       remaining: dict) -> Generator[Any, Any, Any]:
        stats = yield from reorganizer.run()
        remaining["count"] -= 1
        if close_at_end and remaining["count"] == 0:
            self._close(metrics)
        # Track migrated persistent roots so later runs/examples against
        # the same database keep working; an attached tracer's statistics
        # follow the objects to their new addresses the same way.
        self.layout.remap(stats.mapping)
        tracer = getattr(self.engine, "tracer", None)
        if tracer is not None:
            tracer.graph.remap(stats.mapping)
        return stats
