"""The paper's workload: object-graph generator, random walks, driver."""

from .driver import WorkloadDriver
from .graphgen import (
    ROOT_PARTITION,
    GraphLayout,
    build_database,
    glue_slot,
    node_ref_capacity,
)
from .metrics import ExperimentMetrics, TransactionRecord
from .transactions import WalkOutcome, random_walk_transaction

__all__ = [
    "ExperimentMetrics",
    "GraphLayout",
    "ROOT_PARTITION",
    "TransactionRecord",
    "WalkOutcome",
    "WorkloadDriver",
    "build_database",
    "glue_slot",
    "node_ref_capacity",
    "random_walk_transaction",
]
