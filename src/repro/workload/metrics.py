"""Experiment metrics: throughput, response times and their dispersion.

The paper evaluates throughput (tps) and average response time, and —
Table 2 — the maximum and standard deviation of response times, which is
where PQR's "several orders of magnitude" worse predictability shows.
Response time is measured from first submission to final commit,
*including* retries after timeout-induced aborts (that is how a blocked
transaction under PQR accrues a ~100 s response time despite the
1-second lock timeout).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TransactionRecord:
    """One logical transaction as seen by a submitting thread."""

    thread_id: int
    started_ms: float
    finished_ms: float
    retries: int

    @property
    def response_ms(self) -> float:
        return self.finished_ms - self.started_ms


@dataclass
class ExperimentMetrics:
    """Aggregated results of one experiment run."""

    algorithm: str
    mpl: int
    #: Measurement window (ms of simulated time).
    window_ms: float = 0.0
    records: List[TransactionRecord] = field(default_factory=list)
    aborts: int = 0
    #: Aborts caused by deadlock handling (lock timeouts + waits-for
    #: victims) — a subset of ``aborts``.
    deadlock_aborts: int = 0
    #: Requests the waits-for detector victimized (0 under the paper's
    #: pure-timeout scheme).
    deadlock_victims: int = 0
    #: Logical transactions abandoned because their per-request retry
    #: budget ran out (serving layer; distinct from generic aborts).
    retry_budget_exhausted: int = 0
    #: Arrivals refused by admission control (serving layer).
    shed: int = 0
    #: Admitted requests that blew their end-to-end deadline.
    deadline_misses: int = 0
    reorg_duration_ms: Optional[float] = None
    reorg_stats: Optional[object] = None
    cpu_utilization: float = 0.0
    lock_waits: int = 0
    lock_timeouts: int = 0
    #: Lock timeouts the fault injector forced (lock-timeout storms) —
    #: a subset of ``lock_timeouts``.
    forced_lock_timeouts: int = 0
    #: Transient I/O errors injected (buffer pool + log flush) and the
    #: retries they cost.
    io_faults: int = 0
    io_retries: int = 0
    #: Buffer-pool counter deltas over this run's window (disk-resident
    #: setting only; ``None`` when the database is memory-resident) —
    #: the placement-quality signal the clustering experiment gates on.
    buffer: Optional[Dict[str, int]] = None
    #: Lock-manager counter summary (acquires, conflicts, escalations,
    #: de-escalations, peak lock-table size).  The flat manager reports
    #: ``None`` so pre-existing summaries stay byte-identical; the
    #: hierarchical manager always reports (``repro.hlock``).
    locks: Optional[Dict[str, object]] = None

    # Derived-statistics caches, keyed on the records generation (its
    # length — records are append-only in practice; a shrink triggers a
    # full rebuild).  ``summary()`` used to rebuild the response-time
    # list four times and ``percentile_response_ms`` re-sorted per call;
    # now each is computed once per generation.  The cached aggregates
    # use the same float expressions as before, so every reported number
    # is bit-identical to the uncached implementation.
    _times_n: int = field(default=0, init=False, repr=False, compare=False)
    _times: List[float] = field(default_factory=list, init=False,
                                repr=False, compare=False)
    _agg: Optional[Tuple[float, float, float, int]] = field(
        default=None, init=False, repr=False, compare=False)
    _sorted: Optional[List[float]] = field(default=None, init=False,
                                           repr=False, compare=False)
    _tps_key: Optional[Tuple[int, float]] = field(default=None, init=False,
                                                  repr=False, compare=False)
    _tps: float = field(default=0.0, init=False, repr=False, compare=False)

    # -- derived metrics -------------------------------------------------------

    def _cached_times(self) -> List[float]:
        n = len(self.records)
        if n != self._times_n:
            if n > self._times_n:
                self._times.extend(r.response_ms
                                   for r in self.records[self._times_n:])
            else:
                self._times = [r.response_ms for r in self.records]
            self._times_n = n
            self._agg = None
            self._sorted = None
            self._tps_key = None
        return self._times

    def _aggregates(self) -> Tuple[float, float, float, int]:
        """``(avg, max, std, retries)`` over the current records."""
        times = self._cached_times()
        if self._agg is None:
            n = len(times)
            avg = sum(times) / n if times else 0.0
            peak = max(times) if times else 0.0
            if n < 2:
                std = 0.0
            else:
                mean = sum(times) / n
                std = math.sqrt(sum((t - mean) ** 2 for t in times)
                                / (n - 1))
            self._agg = (avg, peak, std,
                         sum(r.retries for r in self.records))
        return self._agg

    def _sorted_times(self) -> List[float]:
        times = self._cached_times()
        if self._sorted is None:
            self._sorted = sorted(times)
        return self._sorted

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def total_retries(self) -> int:
        """Timeout-abort retries summed over all logical transactions."""
        return self._aggregates()[3]

    @property
    def reorg_deadlock_retries(self) -> int:
        stats = self.reorg_stats
        return getattr(stats, "deadlock_retries", 0) if stats else 0

    @property
    def reorg_backoff_ms(self) -> float:
        stats = self.reorg_stats
        return getattr(stats, "backoff_ms_total", 0.0) if stats else 0.0

    @property
    def throughput_tps(self) -> float:
        """Transactions per second of simulated time over the window."""
        if self.window_ms <= 0:
            return 0.0
        key = (len(self.records), self.window_ms)
        if self._tps_key != key:
            in_window = sum(1 for r in self.records
                            if r.finished_ms <= self.window_ms)
            self._tps = in_window / (self.window_ms / 1000.0)
            self._tps_key = key
        return self._tps

    def response_times(self) -> List[float]:
        return list(self._cached_times())

    @property
    def avg_response_ms(self) -> float:
        return self._aggregates()[0]

    @property
    def max_response_ms(self) -> float:
        return self._aggregates()[1]

    @property
    def std_response_ms(self) -> float:
        return self._aggregates()[2]

    def percentile_response_ms(self, pct: float) -> float:
        times = self._sorted_times()
        if not times:
            return 0.0
        rank = min(len(times) - 1, max(0, int(round(
            pct / 100.0 * (len(times) - 1)))))
        return times[rank]

    @property
    def p99_response_ms(self) -> float:
        return self.percentile_response_ms(99.0)

    @property
    def p999_response_ms(self) -> float:
        return self.percentile_response_ms(99.9)

    def top_responses(self, n: int = 10) -> List[float]:
        return sorted(self._cached_times(), reverse=True)[:n]

    @property
    def buffer_hit_ratio(self) -> float:
        if not self.buffer:
            return 0.0
        total = self.buffer["hits"] + self.buffer["misses"]
        return self.buffer["hits"] / total if total else 0.0

    @property
    def pages_fetched_per_txn(self) -> float:
        """Page faults per completed transaction over this run's window —
        the paper-style cost of one traversal under the current layout."""
        if not self.buffer or not self.completed:
            return 0.0
        return self.buffer["misses"] / self.completed

    def summary(self) -> Dict[str, float]:
        out = self._base_summary()
        if self.buffer is not None:
            buffer = dict(self.buffer)
            buffer["hit_ratio"] = round(self.buffer_hit_ratio, 4)
            buffer["pages_fetched_per_txn"] = round(
                self.pages_fetched_per_txn, 3)
            out["buffer"] = buffer
        if self.locks is not None:
            out["locks"] = dict(self.locks)
        return out

    def _base_summary(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm,
            "mpl": self.mpl,
            "throughput_tps": round(self.throughput_tps, 2),
            "completed": self.completed,
            "aborts": self.aborts,
            "deadlock_aborts": self.deadlock_aborts,
            "deadlock_victims": self.deadlock_victims,
            "retry_budget_exhausted": self.retry_budget_exhausted,
            "shed": self.shed,
            "deadline_misses": self.deadline_misses,
            "retries": self.total_retries,
            "reorg_deadlock_retries": self.reorg_deadlock_retries,
            "reorg_backoff_ms": round(self.reorg_backoff_ms, 1),
            "lock_timeouts": self.lock_timeouts,
            "forced_lock_timeouts": self.forced_lock_timeouts,
            "io_faults": self.io_faults,
            "avg_response_ms": round(self.avg_response_ms, 1),
            "p99_response_ms": round(self.p99_response_ms, 1),
            "p999_response_ms": round(self.p999_response_ms, 1),
            "max_response_ms": round(self.max_response_ms, 1),
            "std_response_ms": round(self.std_response_ms, 1),
            "window_ms": round(self.window_ms, 1),
            "cpu_utilization": round(self.cpu_utilization, 3),
        }

    def __repr__(self) -> str:
        return (f"<Metrics {self.algorithm} mpl={self.mpl} "
                f"tps={self.throughput_tps:.1f} "
                f"art={self.avg_response_ms:.0f}ms>")
