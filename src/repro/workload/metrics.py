"""Experiment metrics: throughput, response times and their dispersion.

The paper evaluates throughput (tps) and average response time, and —
Table 2 — the maximum and standard deviation of response times, which is
where PQR's "several orders of magnitude" worse predictability shows.
Response time is measured from first submission to final commit,
*including* retries after timeout-induced aborts (that is how a blocked
transaction under PQR accrues a ~100 s response time despite the
1-second lock timeout).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TransactionRecord:
    """One logical transaction as seen by a submitting thread."""

    thread_id: int
    started_ms: float
    finished_ms: float
    retries: int

    @property
    def response_ms(self) -> float:
        return self.finished_ms - self.started_ms


@dataclass
class ExperimentMetrics:
    """Aggregated results of one experiment run."""

    algorithm: str
    mpl: int
    #: Measurement window (ms of simulated time).
    window_ms: float = 0.0
    records: List[TransactionRecord] = field(default_factory=list)
    aborts: int = 0
    reorg_duration_ms: Optional[float] = None
    reorg_stats: Optional[object] = None
    cpu_utilization: float = 0.0
    lock_waits: int = 0
    lock_timeouts: int = 0
    #: Lock timeouts the fault injector forced (lock-timeout storms) —
    #: a subset of ``lock_timeouts``.
    forced_lock_timeouts: int = 0
    #: Transient I/O errors injected (buffer pool + log flush) and the
    #: retries they cost.
    io_faults: int = 0
    io_retries: int = 0

    # -- derived metrics -------------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def total_retries(self) -> int:
        """Timeout-abort retries summed over all logical transactions."""
        return sum(r.retries for r in self.records)

    @property
    def reorg_deadlock_retries(self) -> int:
        stats = self.reorg_stats
        return getattr(stats, "deadlock_retries", 0) if stats else 0

    @property
    def reorg_backoff_ms(self) -> float:
        stats = self.reorg_stats
        return getattr(stats, "backoff_ms_total", 0.0) if stats else 0.0

    @property
    def throughput_tps(self) -> float:
        """Transactions per second of simulated time over the window."""
        if self.window_ms <= 0:
            return 0.0
        in_window = sum(1 for r in self.records
                        if r.finished_ms <= self.window_ms)
        return in_window / (self.window_ms / 1000.0)

    def response_times(self) -> List[float]:
        return [r.response_ms for r in self.records]

    @property
    def avg_response_ms(self) -> float:
        times = self.response_times()
        return sum(times) / len(times) if times else 0.0

    @property
    def max_response_ms(self) -> float:
        times = self.response_times()
        return max(times) if times else 0.0

    @property
    def std_response_ms(self) -> float:
        times = self.response_times()
        if len(times) < 2:
            return 0.0
        mean = sum(times) / len(times)
        return math.sqrt(sum((t - mean) ** 2 for t in times)
                         / (len(times) - 1))

    def percentile_response_ms(self, pct: float) -> float:
        times = sorted(self.response_times())
        if not times:
            return 0.0
        rank = min(len(times) - 1, max(0, int(round(
            pct / 100.0 * (len(times) - 1)))))
        return times[rank]

    def top_responses(self, n: int = 10) -> List[float]:
        return sorted(self.response_times(), reverse=True)[:n]

    def summary(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm,
            "mpl": self.mpl,
            "throughput_tps": round(self.throughput_tps, 2),
            "completed": self.completed,
            "aborts": self.aborts,
            "retries": self.total_retries,
            "reorg_deadlock_retries": self.reorg_deadlock_retries,
            "reorg_backoff_ms": round(self.reorg_backoff_ms, 1),
            "lock_timeouts": self.lock_timeouts,
            "forced_lock_timeouts": self.forced_lock_timeouts,
            "io_faults": self.io_faults,
            "avg_response_ms": round(self.avg_response_ms, 1),
            "max_response_ms": round(self.max_response_ms, 1),
            "std_response_ms": round(self.std_response_ms, 1),
            "window_ms": round(self.window_ms, 1),
            "cpu_utilization": round(self.cpu_utilization, 3),
        }

    def __repr__(self) -> str:
        return (f"<Metrics {self.algorithm} mpl={self.mpl} "
                f"tps={self.throughput_tps:.1f} "
                f"art={self.avg_response_ms:.0f}ms>")
