"""The paper's transaction workload: random walks (§5.2).

A transaction starts at a randomly chosen persistent root of its thread's
home partition, then performs a random walk of OPSPERTRANS object
accesses, choosing the next object uniformly among the references out of
the current one.  Each access is an update access with probability
UPDATEPROB (exclusive lock); an update either pokes the object's payload
or — with probability ``ref_update_prob`` — re-points the object's glue
edge at a node visited earlier in the walk, which is the pointer
insert/delete traffic the TRT machinery exists for.
"""

from __future__ import annotations

import random
from typing import Any, Generator

from ..concurrency import LockTimeoutError
from ..config import WorkloadConfig
from ..storage import NoSuchObjectError
from .graphgen import GraphLayout, glue_slot, random_bytes


class WalkOutcome:
    """What one attempt at a random-walk transaction did."""

    __slots__ = ("committed", "ops", "updates", "ref_updates")

    def __init__(self, committed: bool, ops: int, updates: int,
                 ref_updates: int):
        self.committed = committed
        self.ops = ops
        self.updates = updates
        self.ref_updates = ref_updates


def random_walk_transaction(engine, layout: GraphLayout,
                            config: WorkloadConfig, rng: random.Random,
                            home_partition: int
                            ) -> Generator[Any, Any, WalkOutcome]:
    """Run one random-walk transaction; aborts and re-raises on a lock
    timeout (deadlock) so the submitting thread can retry."""
    txn = engine.txns.begin()
    ops = updates = ref_updates = 0
    try:
        # Enter through a persistent root (a root stub in partition 0).
        stub_oids = layout.root_stubs[home_partition]
        stub = stub_oids[rng.randrange(len(stub_oids))]
        # The walk only ever follows references, so use the copy-free
        # ``read_refs`` — same locking/CPU/local-memory semantics as
        # ``read``, but no per-step private image copy.
        current = (yield from txn.read_refs(stub))[0]
        visited = []

        for _ in range(config.ops_per_trans):
            is_update = rng.random() < config.update_prob
            children = yield from txn.read_refs(current, for_update=is_update)
            ops += 1
            if is_update:
                updates += 1
                rewire = (rng.random() < config.ref_update_prob
                          and len(visited) >= 1)
                if rewire:
                    # Re-point the glue edge at an earlier-visited node
                    # (its reference is in the transaction's local memory).
                    candidates = [oid for oid in visited if oid != current]
                    if candidates:
                        target = candidates[rng.randrange(len(candidates))]
                        yield from txn.update_ref(
                            current, glue_slot(config), target)
                        ref_updates += 1
                        children = engine.store.children_tuple(current)
                else:
                    offset = rng.randrange(
                        max(1, config.payload_bytes - 4))
                    poke = random_bytes(rng, 4)
                    yield from txn.write_payload(current, offset, poke)
            visited.append(current)
            if not children:
                break
            current = children[rng.randrange(len(children))]

        yield from txn.commit()
        return WalkOutcome(True, ops, updates, ref_updates)
    except LockTimeoutError:
        yield from txn.abort(reason="deadlock")
        raise
    except NoSuchObjectError:
        # The §4.2 reference-equality caveat: this walk read a parent
        # before the two-lock reorganizer patched it, queued on the old
        # address's lock, and was granted it only after the migration
        # deleted the old copy.  Abort so locks are released; whether the
        # submitting harness retries is its policy.
        yield from txn.abort(reason="stale-read")
        raise
