"""The paper's object-graph generator (§5.2).

The database has NUMPARTITIONS partitions of NUMOBJS objects each.
Objects are organized into clusters of 85 — a complete 4-ary tree of
depth 3.  One extra edge from each node (the *glue* edge) points to a
node in another cluster, which lives in another partition with
probability GLUEFACTOR.

The cluster roots are the persistent roots.  We realize them as *root
stub* objects living in a dedicated root partition (partition 0), one per
cluster, each holding a single reference to its cluster root.  This gives
the exact PQR behaviour §5.3.1 describes: the persistent roots of a
partition are external to it, so quiescing the partition locks them and
stalls every thread whose walks start there.

Reference-slot layout of a tree node (fixed at creation):

* slots ``0 .. branching-1`` — tree children,
* slot ``branching``         — the glue edge,
* one spare slot             — room for workload reference inserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..config import WorkloadConfig
from ..storage import ObjectImage
from ..storage.oid import Oid

#: The root stubs (and nothing else) live in this partition.
ROOT_PARTITION = 0


def random_bytes(rng: random.Random, count: int) -> bytes:
    """``count`` random bytes, identical to
    ``bytes(rng.getrandbits(8) for _ in range(count))`` — the same values
    from the same Mersenne-Twister word stream (each ``getrandbits(8)``
    takes the top byte of one 32-bit word; ``getrandbits(32 * count)``
    draws the same words, assembled little-endian-word-wise, so slicing
    ``[3::4]`` recovers exactly those top bytes) — but in one C-level
    call instead of a Python call per byte."""
    if count == 0:
        return b""
    return rng.getrandbits(32 * count).to_bytes(4 * count, "little")[3::4]


@dataclass
class GraphLayout:
    """Addresses the workload driver needs, produced by ``build_database``."""

    config: WorkloadConfig
    #: partition id -> root stub OIDs (walk entry points for that home).
    root_stubs: Dict[int, List[Oid]] = field(default_factory=dict)
    #: partition id -> cluster root OIDs.
    cluster_roots: Dict[int, List[Oid]] = field(default_factory=dict)

    @property
    def data_partitions(self) -> List[int]:
        return sorted(self.cluster_roots)

    def remap(self, mapping: Dict[Oid, Oid]) -> None:
        """Apply a reorganization's old→new mapping to the layout."""
        for stubs in self.root_stubs.values():
            stubs[:] = [mapping.get(oid, oid) for oid in stubs]
        for roots in self.cluster_roots.values():
            roots[:] = [mapping.get(oid, oid) for oid in roots]


def glue_slot(config: WorkloadConfig) -> int:
    """Reference-slot index of a node's glue edge."""
    return config.branching


def node_ref_capacity(config: WorkloadConfig) -> int:
    """Tree children + glue edge + one spare slot."""
    return config.branching + 2


def build_database(engine, config: WorkloadConfig) -> GraphLayout:
    """Create partitions, objects, references, ERTs, and a checkpoint.

    Bulk-loads directly into the store (no WAL records — the checkpoint
    taken at the end is the recovery baseline, as a freshly-loaded real
    system would do), then populates the ERTs to match.
    """
    rng = random.Random(config.seed)
    layout = GraphLayout(config=config)
    engine.create_partition(ROOT_PARTITION)
    for pid in range(1, config.num_partitions + 1):
        engine.create_partition(pid)

    # Pass 1: allocate every tree node with empty reference slots.
    # nodes[pid][cluster][i] is node i of the cluster in BFS order
    # (node i's children are nodes 4i+1 .. 4i+4).
    nodes: Dict[int, List[List[Oid]]] = {}
    capacity = node_ref_capacity(config)
    for pid in range(1, config.num_partitions + 1):
        clusters: List[List[Oid]] = []
        for _ in range(config.clusters_per_partition):
            cluster: List[Oid] = []
            for _ in range(config.cluster_size):
                payload = random_bytes(rng, config.payload_bytes)
                image = ObjectImage.new(capacity, payload=payload)
                cluster.append(engine.store.allocate_object(pid, image))
            clusters.append(cluster)
        nodes[pid] = clusters
        layout.cluster_roots[pid] = [cluster[0] for cluster in clusters]

    # Pass 2: tree edges.
    for pid, clusters in nodes.items():
        for cluster in clusters:
            for index, oid in enumerate(cluster):
                for child_slot in range(config.branching):
                    child_index = config.branching * index + child_slot + 1
                    if child_index >= config.cluster_size:
                        break
                    _set_ref(engine, oid, child_slot, cluster[child_index])

    # Pass 3: glue edges — from each node to a node in another cluster,
    # in another partition with probability GLUEFACTOR.
    partition_ids = list(nodes)
    for pid, clusters in nodes.items():
        for cluster_index, cluster in enumerate(clusters):
            for oid in cluster:
                target_pid = pid
                if len(partition_ids) > 1 and \
                        rng.random() < config.glue_factor:
                    target_pid = rng.choice(
                        [p for p in partition_ids if p != pid])
                choices = len(nodes[target_pid])
                target_cluster_index = rng.randrange(choices)
                if target_pid == pid and choices > 1:
                    while target_cluster_index == cluster_index:
                        target_cluster_index = rng.randrange(choices)
                target_cluster = nodes[target_pid][target_cluster_index]
                target = target_cluster[rng.randrange(len(target_cluster))]
                _set_ref(engine, oid, glue_slot(config), target)

    # Pass 4: root stubs — the persistent roots, one per cluster, living
    # in the root partition.
    for pid in range(1, config.num_partitions + 1):
        stubs: List[Oid] = []
        for root in layout.cluster_roots[pid]:
            image = ObjectImage.new(1, refs=[root])
            stub = engine.store.allocate_object(ROOT_PARTITION, image)
            stubs.append(stub)
            engine.ert_for(pid).add(root, stub)
        layout.root_stubs[pid] = stubs

    engine.unlogged_base = True  # the bulk load above wrote no WAL records
    engine.take_checkpoint()
    return layout


def _set_ref(engine, parent: Oid, slot: int, child: Oid) -> None:
    """Raw bulk-load reference write; maintains the ERT directly."""
    engine.store.set_ref(parent, slot, child)
    if child.partition != parent.partition:
        engine.ert_for(child.partition).add(child, parent)
