"""Index structures (extendible hashing, as in Brahmā)."""

from .extendible_hash import ExtendibleHashIndex

__all__ = ["ExtendibleHashIndex"]
