"""Extendible hashing.

Brahmā — the storage manager the paper's experiments ran on — "supports
extendible hash indices which were used to implement the TRT and the ERT"
(§5).  This module implements that index structure from scratch: a
directory of bucket pointers indexed by the low ``global_depth`` bits of
the key hash, buckets that split when they overflow, and directory
doubling when a splitting bucket is already at global depth.

The index is a *multimap*: one key maps to a set of values, which is the
shape both reference tables need (one child object → many parents /
many TRT tuples).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Set, Tuple


class _Bucket:
    __slots__ = ("local_depth", "entries")

    def __init__(self, local_depth: int):
        self.local_depth = local_depth
        # key -> set of values; bucket occupancy counts distinct keys,
        # mirroring a disk bucket of fixed key capacity.
        self.entries: Dict[Hashable, Set[Any]] = {}

    def __repr__(self) -> str:
        return f"<_Bucket depth={self.local_depth} keys={len(self.entries)}>"


def _key_hash(key: Hashable) -> int:
    """Stable integer hash for directory addressing.

    Integers hash to themselves (bit-mixed so that sequential OIDs spread
    across buckets); other hashables fall back to ``hash``.
    """
    if isinstance(key, int):
        value = key
    else:
        value = hash(key)
    # 64-bit Fibonacci mix to spread structured keys (packed OIDs are
    # highly regular in their low bits).
    value &= (1 << 64) - 1
    return (value * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)


class ExtendibleHashIndex:
    """An in-memory extendible-hash multimap.

    >>> idx = ExtendibleHashIndex(bucket_capacity=2)
    >>> idx.insert(1, "a"); idx.insert(1, "b"); idx.insert(2, "c")
    >>> sorted(idx.get(1))
    ['a', 'b']
    """

    def __init__(self, bucket_capacity: int = 8):
        if bucket_capacity < 1:
            raise ValueError("bucket capacity must be >= 1")
        self.bucket_capacity = bucket_capacity
        self._global_depth = 1
        bucket0, bucket1 = _Bucket(1), _Bucket(1)
        self._directory: List[_Bucket] = [bucket0, bucket1]
        self._size = 0  # number of (key, value) pairs

    # -- public API ------------------------------------------------------------

    @property
    def global_depth(self) -> int:
        return self._global_depth

    def __len__(self) -> int:
        return self._size

    def insert(self, key: Hashable, value: Any) -> bool:
        """Add ``value`` under ``key``; returns False if already present."""
        bucket = self._bucket_for(key)
        values = bucket.entries.get(key)
        if values is not None:
            if value in values:
                return False
            values.add(value)
            self._size += 1
            return True
        # New key: may overflow the bucket.
        while len(bucket.entries) >= self.bucket_capacity:
            self._split(bucket)
            bucket = self._bucket_for(key)
        bucket.entries[key] = {value}
        self._size += 1
        return True

    def remove(self, key: Hashable, value: Any) -> bool:
        """Remove one ``(key, value)`` pair; returns False if absent."""
        bucket = self._bucket_for(key)
        values = bucket.entries.get(key)
        if values is None or value not in values:
            return False
        values.discard(value)
        if not values:
            del bucket.entries[key]
        self._size -= 1
        return True

    def remove_key(self, key: Hashable) -> int:
        """Drop every value under ``key``; returns how many were removed."""
        bucket = self._bucket_for(key)
        values = bucket.entries.pop(key, None)
        if values is None:
            return 0
        self._size -= len(values)
        return len(values)

    def get(self, key: Hashable) -> Set[Any]:
        """The set of values under ``key`` (a copy; empty set if absent)."""
        bucket = self._bucket_for(key)
        return set(bucket.entries.get(key, ()))

    def contains(self, key: Hashable, value: Any) -> bool:
        bucket = self._bucket_for(key)
        return value in bucket.entries.get(key, ())

    def __contains__(self, key: Hashable) -> bool:
        return key in self._bucket_for(key).entries

    def keys(self) -> Iterator[Hashable]:
        """Every distinct key (each bucket visited once, not per pointer)."""
        for bucket in self._unique_buckets():
            yield from bucket.entries.keys()

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        for bucket in self._unique_buckets():
            for key, values in bucket.entries.items():
                for value in values:
                    yield key, value

    def clear(self) -> None:
        self.__init__(bucket_capacity=self.bucket_capacity)

    # -- internals ------------------------------------------------------------

    def _dir_index(self, key: Hashable) -> int:
        return _key_hash(key) & ((1 << self._global_depth) - 1)

    def _bucket_for(self, key: Hashable) -> _Bucket:
        return self._directory[self._dir_index(key)]

    def _unique_buckets(self) -> Iterator[_Bucket]:
        seen: Set[int] = set()
        for bucket in self._directory:
            if id(bucket) not in seen:
                seen.add(id(bucket))
                yield bucket

    def _split(self, bucket: _Bucket) -> None:
        if bucket.local_depth == self._global_depth:
            self._double_directory()
        new_depth = bucket.local_depth + 1
        low = _Bucket(new_depth)
        high = _Bucket(new_depth)
        distinguishing_bit = 1 << (new_depth - 1)
        for key, values in bucket.entries.items():
            target = high if _key_hash(key) & distinguishing_bit else low
            target.entries[key] = values
        for index, entry in enumerate(self._directory):
            if entry is bucket:
                self._directory[index] = \
                    high if index & distinguishing_bit else low

    def _double_directory(self) -> None:
        self._directory = self._directory + list(self._directory)
        self._global_depth += 1

    def __repr__(self) -> str:
        return (f"<ExtendibleHashIndex depth={self._global_depth} "
                f"entries={self._size}>")
