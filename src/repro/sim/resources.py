"""Shared-resource primitives built on the simulation kernel.

Two physical resources matter for the paper's experiments:

* a single CPU (the study ran on a uniprocessor 167 MHz UltraSPARC) — every
  piece of work, user transactions and the reorganizer alike, queues for it;
* the log disk — commits flush the tail of the WAL and overlap that I/O
  with other processes' CPU work, which is why throughput peaks above the
  single-stream rate (paper §5.3.1).

Both are FCFS servers modelled by :class:`Resource`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from .kernel import Delay, Event, Simulator, Wait


class Resource:
    """A FCFS multi-server resource (capacity ``1`` models a single CPU).

    Usage from process code::

        yield from cpu.use(3.0)          # acquire, hold 3 ms, release

    or, for non-delay critical sections::

        yield from cpu.acquire()
        try:
            ...
        finally:
            cpu.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._grant_name = self.name + ":grant"
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Aggregate statistics; cheap to keep and used by the benchmarks to
        # report utilisation.
        self.total_busy_time = 0.0
        self.total_acquisitions = 0
        self._busy_since: Optional[float] = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def try_use(self) -> bool:
        """Uncontended-acquire fast path: grant and return ``True`` when a
        slot is free and nobody queues ahead, else ``False`` (the caller
        should then ``yield Wait(self.wait_gate())``).  Lets hot process
        code skip creating an ``acquire()``/``use()`` generator for the
        common uncontended case."""
        if self._in_use < self.capacity and not self._waiters:
            # ``_grant`` inlined: this brackets every uncontended CPU
            # charge, the most frequent resource operation in a run.
            if self._in_use == 0:
                self._busy_since = self.sim._now
            self._in_use += 1
            self.total_acquisitions += 1
            return True
        return False

    def wait_gate(self) -> Event:
        """Enqueue the caller and return the gate ``release`` will fire;
        the slot is already granted by the time the gate fires.

        A caller killed at its ``yield Wait(gate)`` MUST call
        :meth:`cancel_wait` (the kernel throws into the generator, so an
        ``except BaseException`` around the wait sees it) — otherwise
        the queue entry, or the already-granted slot, leaks and the
        resource wedges for every later user.
        """
        gate = Event(self.sim, self._grant_name)
        self._waiters.append(gate)
        return gate

    def cancel_wait(self, gate: Event) -> None:
        """Withdraw a :meth:`wait_gate` registration after its waiter
        died.  If the gate already fired the slot was granted to the
        corpse — release it onward; otherwise drop the queue entry."""
        if gate.fired:
            self.release()
        else:
            self._waiters.remove(gate)

    def acquire(self) -> Generator[Any, Any, None]:
        """Blocking acquire (generator; compose with ``yield from``)."""
        if not self.try_use():
            gate = self.wait_gate()
            try:
                yield Wait(gate)
            except BaseException:
                self.cancel_wait(gate)
                raise
        # _release granted us the slot before firing the gate.

    def release(self) -> None:
        """Release one slot and hand it to the oldest waiter, if any."""
        in_use = self._in_use
        if in_use <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self._in_use = in_use = in_use - 1
        if in_use == 0 and self._busy_since is not None:
            self.total_busy_time += self.sim._now - self._busy_since
            self._busy_since = None
        if self._waiters:
            gate = self._waiters.popleft()
            self._grant()
            gate.succeed()

    def use(self, duration: float) -> Generator[Any, Any, None]:
        """Acquire, hold for ``duration`` simulated ms, release."""
        # Uncontended acquire inlined: ``use`` brackets every simulated
        # CPU charge, so the generator ``yield from self.acquire()``
        # would create is measurable in the benchmarks.
        if not self.try_use():
            gate = self.wait_gate()
            try:
                yield Wait(gate)
            except BaseException:
                self.cancel_wait(gate)
                raise
        try:
            yield Delay(duration)
        finally:
            self.release()

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of ``horizon`` (default: sim.now) the resource was busy."""
        horizon = horizon if horizon is not None else self.sim.now
        busy = self.total_busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return busy / horizon if horizon > 0 else 0.0

    def _grant(self) -> None:
        if self._in_use == 0:
            self._busy_since = self.sim.now
        self._in_use += 1
        self.total_acquisitions += 1

    def __repr__(self) -> str:
        return (f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
                f"queued={len(self._waiters)}>")


class CpuMeter:
    """Accumulates fine-grained CPU costs and pays them in chunks.

    Charging a saturated FCFS CPU for every 0.4 ms micro-operation costs a
    full queueing round-trip per operation, which both distorts the model
    (a real scan doesn't reschedule per object) and multiplies simulation
    events.  The meter batches micro-costs and acquires the CPU once per
    ``chunk_ms`` of accumulated work.
    """

    def __init__(self, resource: Resource, chunk_ms: float = 10.0):
        self.resource = resource
        self.chunk_ms = chunk_ms
        self._pending = 0.0

    def charge(self, ms: float) -> Generator[Any, Any, None]:
        self._pending += ms
        if self._pending >= self.chunk_ms:
            yield from self.flush()

    def flush(self) -> Generator[Any, Any, None]:
        if self._pending > 0:
            pending, self._pending = self._pending, 0.0
            yield from self.resource.use(pending)


class Mutex:
    """A non-reentrant mutual-exclusion primitive (capacity-1 resource).

    Used for latches: short-term physical-consistency locks with no
    deadlock detection and no transactional bookkeeping.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self._resource = Resource(sim, capacity=1, name=name or "mutex")

    @property
    def locked(self) -> bool:
        return self._resource.in_use > 0

    def acquire(self) -> Generator[Any, Any, None]:
        yield from self._resource.acquire()

    def release(self) -> None:
        self._resource.release()

    def __repr__(self) -> str:
        return f"<Mutex {self._resource.name!r} locked={self.locked}>"
