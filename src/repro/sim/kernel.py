"""A deterministic discrete-event simulation kernel.

The performance study in the paper was run with native threads on a
uniprocessor.  CPython's GIL makes wall-clock measurements of a threaded
port meaningless, so this package reproduces the study on a discrete-event
simulator instead: *processes* are plain Python generators, the clock is a
simulated float (milliseconds by convention), and all contention — lock
waits, CPU queueing, log-disk flushes — happens in simulated time.

A process is a generator that yields *commands*:

``Delay(dt)``
    Suspend for ``dt`` simulated time units.

``Wait(event, timeout=None)``
    Suspend until ``event`` fires.  ``event.succeed(value)`` resumes the
    process with ``value``; ``event.fail(exc)`` raises ``exc`` inside it.
    If ``timeout`` elapses first, :class:`~repro.sim.errors.WaitTimeout`
    is raised inside the process.

Engine code composes blocking operations with ``yield from``; the value a
sub-generator ``return``s propagates to the caller as usual.

Example::

    sim = Simulator()

    def worker():
        yield Delay(5.0)
        return sim.now

    proc = sim.spawn(worker(), name="worker")
    sim.run()
    assert proc.result == 5.0
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterator, NamedTuple, Optional

from .errors import ProcessKilled, SimulationDeadlock, WaitTimeout

#: Type alias for the generators the kernel schedules.
ProcessGenerator = Generator[Any, Any, Any]


class ScheduleEntry(NamedTuple):
    """A scheduler policy's read-only view of one queued callback.

    ``seq`` is the kernel's tie-break sequence number: it is assigned by
    ``call_later`` in strictly increasing order, so at equal timestamps
    the default execution order is exactly the order in which callbacks
    were scheduled (and therefore stable under process spawn order).
    Policies identify entries by ``seq``; ``label`` names the process (or
    subsystem) the callback belongs to, for traces and debugging.
    """

    when: float
    seq: int
    label: str


class SchedulerPolicy:
    """Pluggable same-timestamp scheduling for :class:`Simulator`.

    When a policy is installed (``sim.set_policy``), every time the
    kernel is about to run a callback it gathers *all* queued callbacks
    sharing the earliest timestamp (the *ready set*, sorted by ``seq``)
    and asks the policy for a decision:

    * ``("run", index)`` — run ``ready[index]`` now; the rest of the
      ready set goes back on the queue untouched.
    * ``("defer", index, delta)`` — push ``ready[index]`` ``delta`` time
      units into the future (a bounded preemption at a yield point) and
      ask again.  ``delta`` is clamped to a small positive minimum so a
      defer always makes progress.

    The default implementation reproduces the kernel's native FIFO
    tie-break (lowest ``seq`` first), so installing the base class is a
    no-op behaviourally.  Deterministic replay works because, given the
    same decision sequence, the kernel's state evolution — including the
    ``seq`` counter — is identical.
    """

    #: Smallest defer the kernel will honour (keeps defers from looping
    #: at the same timestamp forever).
    MIN_DEFER = 1e-6

    def schedule(self, now: float, ready: list) -> tuple:
        """Return a decision for the ready set; see the class docstring."""
        return ("run", 0)


class TimerHandle:
    """A cancellable handle for one scheduled callback.

    Returned by :meth:`Simulator.call_later` / :meth:`Simulator.call_soon`.
    ``cancel()`` is idempotent and safe after the callback has run; it
    returns ``True`` only when it actually prevented a pending callback
    from firing.  Cancellation is lazy: the queue entry stays on the heap
    with its callback slot cleared and is skipped (not dispatched, and the
    clock is *not* advanced to it) when it reaches the front.

    This is what keeps settled ``Wait`` timeouts from drifting the clock:
    a 1-second lock-timeout callback whose wait was satisfied after 2 ms
    used to sit in the heap and fire as a no-op at +1000 ms, advancing
    ``Simulator.now`` past the true end of work.
    """

    __slots__ = ("_sim", "_entry", "when")

    def __init__(self, sim: "Simulator", entry: list, when: float):
        self._sim = sim
        self._entry = entry
        self.when = when

    @property
    def active(self) -> bool:
        """Whether the callback is still pending (not fired, not cancelled)."""
        return self._entry[2] is not None

    def cancel(self) -> bool:
        """Cancel the callback; no-op if it already ran or was cancelled."""
        if self._entry[2] is None:
            return False
        self._entry[2] = None
        self._sim._timers_cancelled += 1
        return True

    def __repr__(self) -> str:
        state = "pending" if self.active else "done"
        return f"<TimerHandle at={self.when!r} {state}>"


class Delay:
    """Command: suspend the yielding process for ``dt`` time units."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError(f"negative delay: {dt!r}")
        self.dt = dt

    def __repr__(self) -> str:
        return f"Delay({self.dt!r})"


class Wait:
    """Command: suspend the yielding process until ``event`` fires.

    ``timeout`` is optional; when it expires before the event fires, a
    :class:`WaitTimeout` is raised inside the process and the process is
    removed from the event's waiter list.
    """

    __slots__ = ("event", "timeout")

    def __init__(self, event: "Event", timeout: Optional[float] = None):
        self.event = event
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"Wait({self.event!r}, timeout={self.timeout!r})"


class Event:
    """A one-shot event processes can wait on.

    Events carry either a value (``succeed``) or an exception (``fail``).
    Waiters registered after the event has fired are resumed immediately
    (on the next scheduler step), so there is no lost-wakeup race.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_exc", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: list[tuple[Callable[[], None], str]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise RuntimeError(f"event {self.name!r} has not fired")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    def succeed(self, value: Any = None) -> None:
        """Fire the event successfully, resuming all waiters."""
        self._fire(value, None)

    def fail(self, exc: BaseException) -> None:
        """Fire the event with an exception, raising it in all waiters."""
        self._fire(None, exc)

    def _fire(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._fired:
            raise RuntimeError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        # Resume via the scheduler, never synchronously: the firing code
        # (e.g. a lock release inside transaction cleanup) must finish its
        # own critical section before any waiter observes the new state.
        for resume, label in waiters:
            self.sim._schedule(0.0, resume, label)

    def _add_waiter(self, resume: Callable[[], None],
                    label: str = "") -> None:
        if self._fired:
            # Already fired: resume on the next scheduler step so the
            # caller's generator frame has returned first.
            self.sim._schedule(0.0, resume, label)
        else:
            self._waiters.append((resume, label))

    def _remove_waiter(self, resume: Callable[[], None]) -> None:
        for index, (waiter, _label) in enumerate(self._waiters):
            if waiter is resume:
                del self._waiters[index]
                return

    def __repr__(self) -> str:
        state = "fired" if self._fired else "pending"
        return f"<Event {self.name!r} {state}>"


class _Waiter:
    """One process's registration on an event's waiter list.

    The instance itself is the resume callable handed to the event, so
    the identity :meth:`Event._remove_waiter` compares stays stable.  A
    ``Wait`` brackets every contended resource acquire, so this path is
    hot: one ``__slots__`` instance replaces the former per-wait state
    dict plus three closures.
    """

    __slots__ = ("proc", "event", "timer", "settled")

    def __init__(self, proc: "Process", event: "Event"):
        self.proc = proc
        self.event = event
        self.timer: Optional[TimerHandle] = None
        self.settled = False

    def __call__(self) -> None:
        """Resume the process with the event's outcome."""
        if self.settled:
            return
        self.settled = True
        proc = self.proc
        proc._waiter = None
        # The wait settled before its timeout: cancel the timer so it
        # neither lingers on the heap nor drags the clock forward.
        if self.timer is not None:
            self.timer.cancel()
        event = self.event
        if event._exc is not None:
            proc._step(throw=event._exc)
        else:
            proc._step(send=event._value)

    def cancel(self) -> None:
        # Called when the process dies while blocked here: drop the
        # registration so the event never steps a dead generator and
        # its waiter list does not accumulate stale entries.
        self.settled = True
        if self.timer is not None:
            self.timer.cancel()
        self.event._remove_waiter(self)

    def on_timeout(self) -> None:
        if self.settled:
            return
        self.settled = True
        proc = self.proc
        proc._waiter = None
        self.event._remove_waiter(self)
        proc._step(throw=WaitTimeout(
            f"process {proc.name} timed out waiting for {self.event!r}"))


class Process:
    """A running generator managed by the simulator.

    ``process.done`` is an :class:`Event` that fires when the generator
    returns (with its return value) or raises (with the exception), so other
    processes can join via ``yield Wait(process.done)``.
    """

    __slots__ = ("sim", "name", "gen", "done", "_alive", "_waiter")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str):
        self.sim = sim
        self.name = name
        self.gen = gen
        self.done = Event(sim, name=f"done:{name}")
        self._alive = True
        # The in-flight Wait registration, if any — a killed or finished
        # process must not linger on an event's waiter list.
        self._waiter: Optional[_Waiter] = None

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator; raises its exception if it failed."""
        return self.done.value

    def kill(self, exc: Optional[BaseException] = None) -> None:
        """Forcibly terminate this process.

        The exception (default :class:`ProcessKilled`) is thrown into the
        generator so ``finally`` blocks run; whatever the generator does with
        it, the process is dead afterwards.
        """
        if not self._alive:
            return
        # Deregister from whatever event the process is blocked on *before*
        # throwing: if the generator catches the kill and yields a new Wait,
        # the old registration must not resurrect it later.
        self._cancel_wait()
        self._step(throw=exc or ProcessKilled(f"process {self.name} killed"))

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        """Advance the generator one step and interpret what it yields."""
        if not self._alive:
            return
        try:
            if throw is not None:
                command = self.gen.throw(throw)
            else:
                command = self.gen.send(send)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except ProcessKilled as exc:
            self._finish(exc=exc, report=False)
            return
        except BaseException as exc:  # noqa: BLE001 - reported via done event
            self._finish(exc=exc)
            return
        # Exact-type fast paths for the two commands every step yields
        # (``isinstance`` plus a second call frame were measurable);
        # subclasses and stray commands fall through to ``_dispatch``.
        cls = command.__class__
        if cls is Delay:
            self.sim._schedule(command.dt, self._step, self.name)
        elif cls is Wait:
            self._wait(command.event, command.timeout)
        else:
            self._dispatch(command)

    def _finish(self, value: Any = None, exc: Optional[BaseException] = None,
                report: bool = True) -> None:
        self._alive = False
        self._cancel_wait()
        self.sim._live_processes.discard(self)
        if exc is None:
            self.done.succeed(value)
        else:
            had_waiters = bool(self.done._waiters)
            self.done.fail(exc)
            if report and not had_waiters:
                self.sim._unhandled.append((self, exc))

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Delay):
            dt = command.dt
            if dt < 0:
                raise ValueError(f"negative delay: {dt!r}")
            self.sim._schedule(dt, self._step, self.name)
        elif isinstance(command, Wait):
            self._wait(command.event, command.timeout)
        elif isinstance(command, Event):
            self._wait(command, None)
        else:
            self._step(throw=TypeError(
                f"process {self.name} yielded unsupported command "
                f"{command!r}; yield Delay(...), Wait(...) or an Event"))

    def _cancel_wait(self) -> None:
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            waiter.cancel()

    def _wait(self, event: Event, timeout: Optional[float]) -> None:
        waiter = _Waiter(self, event)
        event._add_waiter(waiter, label=self.name)
        self._waiter = waiter
        if timeout is not None:
            waiter.timer = self.sim.call_later(
                timeout, waiter.on_timeout, label=f"timeout:{self.name}")

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The event loop: a clock plus a priority queue of callbacks.

    **Tie-break determinism.**  Queue entries are ordered by
    ``(when, seq)``: ``seq`` is a strictly increasing sequence number
    assigned at scheduling time, so callbacks that share a timestamp run
    in the order they were scheduled.  In particular, processes spawned
    at the same simulated time start in spawn order, and two events fired
    at the same instant resume their waiters in registration order.  The
    tie-break is exposed to scheduler policies as
    :attr:`ScheduleEntry.seq`, which is what makes a policy's
    permutations of a same-timestamp ready set well-defined and
    replayable.

    **Scheduler policies.**  ``set_policy`` installs a
    :class:`SchedulerPolicy` consulted at every step with the full
    same-timestamp ready set; see that class for the decision contract.
    With no policy installed (the default) the kernel pops the heap
    directly — the FIFO tie-break above.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        # Queue entries are mutable lists [when, seq, fn, label]; a
        # cancelled or already-dispatched entry has ``fn is None`` and is
        # skipped lazily when it reaches the front.  ``seq`` is unique,
        # so heap comparisons never reach the callback slot.
        #
        # The pending set is split two ways (the half of all schedules
        # with ``when == now`` — event wakeups, ``call_soon``, zero
        # delays — never needs heap ordering):
        #
        # * ``_ready``   — entries scheduled *at the current time*; a
        #   plain FIFO, since ``seq`` assignment order is append order.
        # * ``_queue``   — a heap of entries strictly in the future (at
        #   scheduling time).
        #
        # Global ``(when, seq)`` dispatch order is preserved because a
        # heap entry that shares the current timestamp was necessarily
        # scheduled before the clock reached it, hence carries a smaller
        # ``seq`` than every ready-FIFO entry (which was appended at the
        # current time): at equal timestamps the heap drains first.
        self._queue: list[list] = []
        self._ready: deque[list] = deque()
        self._live_processes: set[Process] = set()
        self._unhandled: list[tuple[Process, BaseException]] = []
        self._proc_counter = 0
        self._policy: Optional[SchedulerPolicy] = None
        # Kernel counters, surfaced by ``counters()`` for the benchmark
        # baselines (BENCH_*.json).
        self._events_dispatched = 0
        self._timers_cancelled = 0
        self._heap_peak = 0

    @property
    def now(self) -> float:
        """Current simulated time (milliseconds by library convention)."""
        return self._now

    @property
    def policy(self) -> Optional[SchedulerPolicy]:
        return self._policy

    def set_policy(self, policy: Optional[SchedulerPolicy]) -> None:
        """Install (or, with ``None``, remove) a scheduler policy."""
        self._policy = policy

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event` bound to this simulator."""
        return Event(self, name=name)

    def call_soon(self, fn: Callable[[], None], label: str = "") -> TimerHandle:
        """Schedule ``fn`` at the current time (after pending callbacks)."""
        return self.call_later(0.0, fn, label=label)

    def call_later(self, dt: float, fn: Callable[[], None],
                   label: str = "") -> TimerHandle:
        """Schedule ``fn`` to run ``dt`` time units from now.

        Returns a :class:`TimerHandle`; cancelling it prevents the
        callback from firing (and from advancing the clock).  ``label``
        names the callback for scheduler policies and traces (process
        callbacks carry their process name).  Equal-time callbacks run in
        scheduling order — see the class docstring.
        """
        if dt < 0:
            raise ValueError(f"negative delay: {dt!r}")
        entry = self._schedule(dt, fn, label)
        return TimerHandle(self, entry, entry[0])

    def _schedule(self, dt: float, fn: Callable[[], None],
                  label: str) -> list:
        """``call_later`` minus validation and the :class:`TimerHandle` —
        for internal callers that never cancel (``Delay`` resumption is
        the hottest scheduling path in the benchmarks)."""
        self._seq += 1
        now = self._now
        when = now + dt
        entry = [when, self._seq, fn, label]
        # Classify by the *computed* timestamp, not by ``dt``: an entry
        # landing at the current time belongs on the ready FIFO whatever
        # delay produced it, which keeps the heap free of current-time
        # entries pushed at the current time (the ordering argument in
        # ``__init__`` depends on that).
        if when == now:
            self._ready.append(entry)
        else:
            heapq.heappush(self._queue, entry)
        depth = len(self._queue) + len(self._ready)
        if depth > self._heap_peak:
            self._heap_peak = depth
        return entry

    def spawn(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a process; it starts on the next step."""
        if not isinstance(gen, Iterator):
            raise TypeError(f"spawn() needs a generator, got {gen!r}")
        self._proc_counter += 1
        proc = Process(self, gen, name or f"proc-{self._proc_counter}")
        self._live_processes.add(proc)
        # ``call_soon`` minus the TimerHandle nobody keeps — spawns are
        # never cancelled through a handle (``kill`` settles the entry).
        self._schedule(0.0, proc._step, proc.name)
        return proc

    def _pop_next(self) -> Optional[list]:
        """Pop the callback to run next, honouring the installed policy.

        Returns ``None`` if the queue drained (possible when a policy
        defers the only ready entry and nothing else is queued — it then
        reappears at a later timestamp, so the caller just loops).
        Cancelled entries never reach the policy: they are dropped while
        gathering the ready set, so traces contain only real choices.
        """
        if self._policy is None:
            queue = self._queue
            fifo = self._ready
            now = self._now
            while queue or fifo:
                # Ready-FIFO entries sit at the current time; a heap
                # entry sharing that time was scheduled earlier (smaller
                # seq) and goes first.  With an empty FIFO the heap min
                # is simply next.
                if fifo and not (queue and queue[0][0] == now):
                    entry = fifo.popleft()
                else:
                    entry = heapq.heappop(queue)
                if entry[2] is not None:
                    return entry
            return None
        while self._queue or self._ready:
            if self._ready:
                # Earliest timestamp is the current time: the ready set
                # is every heap entry at ``now`` (smaller seqs, gathered
                # first — pop order is seq order at equal ``when``)
                # followed by the whole FIFO (append order == seq order).
                when = self._now
            else:
                when = self._queue[0][0]
            ready: list[list] = []
            while self._queue and self._queue[0][0] == when:
                entry = heapq.heappop(self._queue)
                if entry[2] is not None:
                    ready.append(entry)
            while self._ready:
                entry = self._ready.popleft()
                if entry[2] is not None:
                    ready.append(entry)
            while ready:
                view = [ScheduleEntry(e[0], e[1], e[3]) for e in ready]
                decision = self._policy.schedule(when, view)
                kind = decision[0]
                if kind == "defer":
                    _, index, delta = decision
                    delta = max(float(delta), SchedulerPolicy.MIN_DEFER)
                    entry = ready.pop(index)
                    entry[0] = when + delta
                    heapq.heappush(self._queue, entry)
                    continue
                if kind != "run":
                    raise ValueError(
                        f"scheduler policy returned unknown decision "
                        f"{decision!r}")
                chosen = ready.pop(decision[1])
                for entry in ready:
                    heapq.heappush(self._queue, entry)
                return chosen
            # Every ready entry was deferred; re-examine the queue, whose
            # earliest timestamp has moved forward.
        return None

    def run(self, until: Optional[float] = None,
            raise_unhandled: bool = True) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        Returns the final simulated time.  If a process died with an
        exception nobody joined on, it is re-raised here (the default) so
        bugs do not pass silently.
        """
        if until is None and self._policy is None:
            self._run_fast(raise_unhandled)
        else:
            self._run_general(until, raise_unhandled)
        if not self._queue and not self._ready and self._live_processes \
                and until is None:
            names = sorted(p.name for p in self._live_processes)
            raise SimulationDeadlock(
                f"no scheduled events but processes still blocked: {names}")
        return self._now

    def _run_fast(self, raise_unhandled: bool) -> None:
        """The hot loop: no horizon, no policy — pop/dispatch directly.

        Attribute lookups are hoisted into locals; cancelled entries are
        skipped without touching the clock; each dispatched entry has its
        callback slot cleared so a late ``TimerHandle.cancel`` is a no-op.
        """
        queue = self._queue
        fifo = self._ready
        pop = heapq.heappop
        popleft = fifo.popleft
        unhandled = self._unhandled
        now = self._now
        dispatched = 0
        try:
            while True:
                # Merge rule (see ``__init__``): at the current time the
                # heap's entries precede the FIFO's; otherwise the FIFO
                # (which always sits at the current time) goes first, and
                # only an empty FIFO lets the clock advance to the heap
                # minimum.
                if fifo:
                    if queue and queue[0][0] == now:
                        entry = pop(queue)
                    else:
                        entry = popleft()
                elif queue:
                    entry = pop(queue)
                else:
                    break
                fn = entry[2]
                if fn is None:
                    continue
                entry[2] = None
                now = self._now = entry[0]
                dispatched += 1
                fn()
                if raise_unhandled and unhandled:
                    proc, exc = unhandled[0]
                    raise exc
        finally:
            self._events_dispatched += dispatched

    def _run_general(self, until: Optional[float],
                     raise_unhandled: bool) -> None:
        """Horizon-bounded and/or policy-driven loop (the slow path)."""
        while self._queue or self._ready:
            # Earliest pending timestamp: ready-FIFO entries sit at the
            # current time, so a non-empty FIFO pins it to ``now``.
            when = self._now if self._ready else self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                break
            entry = self._pop_next()
            if entry is None:
                continue
            when, _, fn, _label = entry
            if until is not None and when > until:
                # A policy deferred past the horizon; put the callback
                # back and stop at the horizon, as the pre-pop check does.
                heapq.heappush(self._queue, entry)
                self._now = until
                break
            entry[2] = None
            self._now = when
            self._events_dispatched += 1
            fn()
            if raise_unhandled and self._unhandled:
                proc, exc = self._unhandled[0]
                raise exc

    def run_process(self, gen: ProcessGenerator, name: str = "main") -> Any:
        """Spawn ``gen``, run the simulation to completion, return its result.

        Convenience used throughout the tests and examples for flows that do
        not need explicit concurrency.
        """
        proc = self.spawn(gen, name=name)
        self.run()
        return proc.result

    def counters(self) -> dict:
        """Kernel-level counters for benchmark baselines.

        ``timers_scheduled`` is the total ``call_later``/``call_soon``
        count (the ``seq`` high-water mark); ``heap_peak`` the largest
        queue the run ever held — the clock-drift fix shows up here as a
        much smaller peak, since settled lock timeouts no longer pile up.
        """
        return {
            "events_dispatched": self._events_dispatched,
            "timers_scheduled": self._seq,
            "timers_cancelled": self._timers_cancelled,
            "heap_peak": self._heap_peak,
        }

    def kill_all(self, exc: Optional[BaseException] = None) -> None:
        """Kill every live process (crash injection) and drop pending events."""
        for proc in list(self._live_processes):
            proc.kill(exc)
        for entry in self._queue:
            entry[2] = None  # late TimerHandle.cancel must stay a no-op
        for entry in self._ready:
            entry[2] = None
        self._queue.clear()
        self._ready.clear()
        self._unhandled.clear()

    def live_processes(self) -> list[Process]:
        """The currently-alive processes (fault-injection introspection)."""
        return sorted(self._live_processes, key=lambda p: p.name)

    def kill_matching(self, name_substring: str,
                      exc: Optional[BaseException] = None) -> int:
        """Kill every live process whose name contains ``name_substring``
        (targeted fault injection, e.g. killing a reorganizer mid-batch);
        returns how many were killed."""
        victims = [p for p in self.live_processes()
                   if name_substring in p.name]
        for proc in victims:
            proc.kill(exc)
        return len(victims)

    def __repr__(self) -> str:
        queued = len(self._queue) + len(self._ready)
        return (f"<Simulator t={self._now:.3f} queued={queued} "
                f"live={len(self._live_processes)}>")
