"""Exceptions raised by the discrete-event simulation kernel."""


class SimError(Exception):
    """Base class for all simulation kernel errors."""


class WaitTimeout(SimError):
    """Raised inside a process when a ``Wait`` with a timeout expires.

    The exception is thrown *into* the waiting generator, so engine code can
    catch it at the exact point of the blocking call (e.g. a lock request).
    """


class ProcessKilled(SimError):
    """Raised inside a process that is forcibly terminated.

    Used by the crash-injection machinery to tear down every running
    process when a simulated system failure occurs.
    """


class SimulationDeadlock(SimError):
    """Raised by ``Simulator.run`` when live processes remain but no events
    are scheduled — i.e. every process is blocked forever."""
