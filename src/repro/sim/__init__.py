"""Deterministic discrete-event simulation kernel.

See :mod:`repro.sim.kernel` for the process model and DESIGN.md for why the
paper's threaded performance study is reproduced on a simulator.
"""

from .errors import ProcessKilled, SimError, SimulationDeadlock, WaitTimeout
from .kernel import (Delay, Event, Process, ScheduleEntry, SchedulerPolicy,
                     Simulator, TimerHandle, Wait)
from .resources import CpuMeter, Mutex, Resource

__all__ = [
    "CpuMeter",
    "Delay",
    "Event",
    "Mutex",
    "Process",
    "ProcessKilled",
    "Resource",
    "ScheduleEntry",
    "SchedulerPolicy",
    "SimError",
    "SimulationDeadlock",
    "Simulator",
    "TimerHandle",
    "Wait",
    "WaitTimeout",
]
