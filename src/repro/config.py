"""Configuration for the engine's cost model and the paper's workload.

``SystemConfig`` holds the simulated-hardware cost model.  The constants
are calibrated so the no-reorganization baseline lands near the paper's
absolute numbers on its 167 MHz UltraSPARC (NR throughput peaking around
MPL 5 at ~40 tps and ~35 tps at MPL 30; average response time ~800 ms at
MPL 30) — see EXPERIMENTS.md for the calibration.

``WorkloadConfig`` is Table 1 of the paper, plus the structural constants
of §5.2 (85-object cluster trees, which are exactly complete 4-ary trees
of depth 3: 1 + 4 + 16 + 64 = 85).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """One deterministic retry/backoff policy for every retry loop.

    The repo's retry sites share two delay shapes:

    * ``"exponential"`` — ``min(base_ms * factor**attempt, max_ms)``,
      scaled down by up to ``jitter`` drawn from the caller's seeded RNG
      (the reorganizer's deadlock retries, transient-I/O retries, and
      the 2PC RPC layer);
    * ``"uniform"`` — a fresh ``uniform(low_ms, high_ms)`` draw per
      retry (the workload driver's and serving layer's abort backoff).

    The policy itself is stateless and frozen; determinism comes from
    the caller passing a seeded ``random.Random`` (build one with
    :meth:`rng`).  ``delay_ms`` draws from the RNG exactly as the
    historical inline code did, so seeded runs reproduce byte-for-byte.
    """

    #: Give up after this many retries (``None`` = retry forever).
    max_retries: Optional[int] = 8
    kind: str = "exponential"
    # Exponential shape.  ``base_ms <= 0`` means retry immediately
    # (no delay, and — important for determinism — no RNG draw).
    base_ms: float = 8.0
    factor: float = 2.0
    max_ms: float = float("inf")
    jitter: float = 0.0
    # Uniform shape.
    low_ms: float = 1.0
    high_ms: float = 50.0

    @classmethod
    def exponential(cls, base_ms: float, factor: float = 2.0,
                    max_ms: float = float("inf"), jitter: float = 0.0,
                    max_retries: Optional[int] = 8) -> "RetryPolicy":
        return cls(max_retries=max_retries, kind="exponential",
                   base_ms=base_ms, factor=factor, max_ms=max_ms,
                   jitter=jitter)

    @classmethod
    def uniform(cls, low_ms: float = 1.0, high_ms: float = 50.0,
                max_retries: Optional[int] = 8) -> "RetryPolicy":
        return cls(max_retries=max_retries, kind="uniform",
                   low_ms=low_ms, high_ms=high_ms)

    @staticmethod
    def rng(label: object) -> random.Random:
        """A seeded RNG for this retry sequence.  String labels keep
        runs reproducible (tuples would go through randomized hash())."""
        return random.Random(label)

    def exhausted(self, retries: int) -> bool:
        """True once ``retries`` failures have used up the budget."""
        return self.max_retries is not None and retries >= self.max_retries

    def delay_ms(self, attempt: int,
                 rng: Optional[random.Random] = None) -> float:
        """Backoff before the ``attempt``-th retry (0-based).

        Exponential draws one ``rng.random()`` when an RNG is supplied
        and ``base_ms > 0``; uniform draws one ``rng.uniform``.  Callers
        that share their RNG with other draws rely on this exact
        consumption pattern.
        """
        if self.kind == "uniform":
            if rng is None:
                return (self.low_ms + self.high_ms) / 2.0
            return rng.uniform(self.low_ms, self.high_ms)
        if self.base_ms <= 0:
            return 0.0
        delay = min(self.base_ms * self.factor ** attempt, self.max_ms)
        if rng is not None:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def copy(self, **overrides) -> "RetryPolicy":
        return replace(self, **overrides)


@dataclass
class SystemConfig:
    """Engine parameters and the simulated cost model (times in ms)."""

    page_size: int = 4096
    cpu_count: int = 1                    # the paper's machine: uniprocessor
    lock_timeout_ms: float = 1000.0       # §5: "set to one second"
    log_flush_ms: float = 8.0             # one log-disk write at commit

    # Per-operation CPU costs for user transactions.
    cpu_object_access_ms: float = 3.0     # one random-walk object access
    cpu_update_extra_ms: float = 0.5      # additional work for an update
    cpu_undo_per_op_ms: float = 0.3       # rollback work per logged change

    # CPU costs for the reorganization utility.
    cpu_traverse_ms: float = 0.4          # fuzzy traversal, per object
    cpu_migrate_ms: float = 1.5           # copy + bookkeeping, per object
    cpu_ref_patch_ms: float = 0.3         # per parent reference update

    # Disk-resident setting (paper §7, future work): pages are cached in
    # a buffer pool and page faults cost data-disk I/O.
    disk_resident: bool = False
    buffer_pool_pages: int = 512
    disk_read_ms: float = 10.0
    disk_write_ms: float = 10.0

    ert_bucket_capacity: int = 8          # extendible-hash bucket size
    track_lock_history: bool = True       # §4.1 support in the lock manager
    #: Deadlock handling: ``"timeout"`` is the paper's scheme (§5); with
    #: ``"waits-for"`` the lock manager detects cycles at block time and
    #: victimizes the requester that closed the cycle (the timeout stays
    #: armed as a fallback).  The serving layer defaults to waits-for.
    deadlock_detection: str = "timeout"
    enforce_ref_protocol: bool = True     # refs must come from read objects
    strict_transactions: bool = True      # strict 2PL (relaxed per §4.1)

    # Lock-manager selection (ROADMAP item 4): ``"flat"`` is the paper's
    # per-object S/X scheme; ``"hier"`` the multi-granularity manager
    # (partition→page→object intention locks, ``repro.hlock``).
    lock_manager: str = "flat"
    #: Auto-escalation: once a transaction holds this many fine (object)
    #: locks on one page, promote them to a single page lock (0 = off).
    lock_escalate_after: int = 0
    #: Same, one level up: fine locks across all of a partition's pages
    #: promote to one partition lock (0 = off).
    lock_partition_escalate_after: int = 0
    #: De-escalate a holder's escalated coarse lock instead of blocking a
    #: conflicting requester (safe: covered fine locks are re-granted).
    lock_deescalate_on_conflict: bool = True

    # Transient-I/O handling (exercised by the repro.faults injector): a
    # failed page read/write or log flush is retried with capped
    # exponential backoff before the error escalates.
    io_retry_limit: int = 4
    io_retry_backoff_ms: float = 5.0

    # Corruption defense.  Pages always carry checksums; these knobs
    # control *when* they are re-verified: on every buffer-pool miss
    # read (disk-resident setting), and by the background scrubber
    # (:class:`repro.storage.scrub.Scrubber`; 0 = no scrubbing).
    verify_page_reads: bool = True
    scrub_interval_ms: float = 0.0
    scrub_pages_per_sweep: int = 8

    def io_retry_policy(self) -> RetryPolicy:
        """Transient-I/O retries: uncapped exponential, no jitter."""
        return RetryPolicy.exponential(base_ms=self.io_retry_backoff_ms,
                                       max_retries=self.io_retry_limit)

    def copy(self, **overrides) -> "SystemConfig":
        return replace(self, **overrides)


@dataclass
class WorkloadConfig:
    """Table 1 of the paper (defaults column) plus §5.2 structure."""

    num_partitions: int = 10              # NUMPARTITIONS
    objects_per_partition: int = 4080     # NUMOBJS (= 48 clusters of 85)
    mpl: int = 30                         # MPL
    ops_per_trans: int = 8                # OPSPERTRANS
    update_prob: float = 0.5              # UPDATEPROB
    glue_factor: float = 0.05             # GLUEFACTOR

    cluster_size: int = 85                # §5.2: trees of 85 objects
    branching: int = 4                    # 85 = 1 + 4 + 16 + 64
    payload_bytes: int = 48               # ≈100-byte objects (§5.3.3)
    ref_update_prob: float = 0.1          # update accesses that re-point
                                          # the glue edge (drives the TRT)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.objects_per_partition % self.cluster_size:
            raise ValueError(
                f"objects_per_partition={self.objects_per_partition} must be "
                f"a multiple of cluster_size={self.cluster_size}")
        expected = sum(self.branching ** d for d in range(self._depth() + 1))
        if expected != self.cluster_size:
            raise ValueError(
                f"cluster_size={self.cluster_size} is not a complete "
                f"{self.branching}-ary tree (nearest: {expected})")

    def _depth(self) -> int:
        total, depth = 1, 0
        while total < self.cluster_size:
            depth += 1
            total += self.branching ** depth
        return depth

    @property
    def clusters_per_partition(self) -> int:
        return self.objects_per_partition // self.cluster_size

    @property
    def tree_depth(self) -> int:
        return self._depth()

    def copy(self, **overrides) -> "WorkloadConfig":
        return replace(self, **overrides)


@dataclass
class ReorgConfig:
    """Knobs for the reorganization utilities."""

    #: Object migrations grouped per system transaction (§4.3).  The paper's
    #: basic IRA uses one transaction per object migration.
    migration_batch_size: int = 1
    #: Collect unreachable objects discovered by the traversal (§4.6).
    collect_garbage: bool = False
    #: Checkpoint reorganizer state every N migrations (0 = never, §4.4).
    checkpoint_every: int = 0
    #: Retries when Find_Exact_Parents loses a deadlock (lock timeout).
    max_deadlock_retries: int = 50
    #: Deadlock retries back off exponentially instead of re-colliding in
    #: lockstep: the ``n``-th retry sleeps
    #: ``min(retry_backoff_ms * retry_backoff_factor**n,
    #: retry_backoff_max_ms)`` scaled down by up to ``retry_jitter`` drawn
    #: from a seeded RNG, so runs stay deterministic.  ``retry_backoff_ms=0``
    #: restores the old retry-immediately behaviour.
    retry_backoff_ms: float = 8.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max_ms: float = 1000.0
    retry_jitter: float = 0.5
    retry_seed: int = 0

    def retry_policy(self) -> RetryPolicy:
        """The deadlock-retry backoff above as a :class:`RetryPolicy`."""
        return RetryPolicy.exponential(
            base_ms=self.retry_backoff_ms,
            factor=self.retry_backoff_factor,
            max_ms=self.retry_backoff_max_ms,
            jitter=self.retry_jitter,
            max_retries=self.max_deadlock_retries)

    def copy(self, **overrides) -> "ReorgConfig":
        return replace(self, **overrides)


@dataclass
class ServeConfig:
    """Front-end serving layer (``repro.serve``): open-loop arrivals,
    admission control, deadlines, and retry budgets."""

    #: Arrival process: ``"poisson"`` (stationary), ``"flash-crowd"``
    #: (rate multiplied by ``flash_multiplier`` inside the flash window),
    #: or ``"diurnal"`` (sinusoidal rate modulation).
    arrival: str = "poisson"
    #: Mean open-loop arrival rate (requests per simulated second).
    arrival_rate_tps: float = 40.0
    flash_multiplier: float = 6.0
    flash_start_ms: float = 10_000.0
    flash_duration_ms: float = 10_000.0
    diurnal_period_ms: float = 40_000.0
    #: Diurnal peak-to-mean swing in [0, 1).
    diurnal_amplitude: float = 0.6
    #: Zipf exponent for partition skew (0 = uniform).
    zipf_s: float = 1.1
    #: Bounded admission queue: arrivals beyond this depth are shed.
    queue_depth: int = 64
    #: Server pool size — concurrent in-flight requests (the MPL).
    servers: int = 30
    #: A queued request still unserved after this long is shed (stale).
    queue_deadline_ms: float = 2_000.0
    #: End-to-end deadline: queue wait + execution; a miss is recorded
    #: (the request still completes — the simulator cannot preempt a
    #: transaction mid-walk, matching a real server finishing the work).
    response_deadline_ms: float = 8_000.0
    #: Per-request retry budget after deadlock/timeout aborts; an
    #: exhausted budget gives the request up (a distinct counter).
    retry_budget: int = 8
    #: How long arrivals are generated (the measurement window may close
    #: later, once in-flight requests drain).
    duration_ms: float = 30_000.0
    seed: int = 42

    def retry_policy(self) -> RetryPolicy:
        """Per-request abort backoff: the driver's uniform jitter under
        this config's retry budget."""
        return RetryPolicy.uniform(max_retries=self.retry_budget)

    def copy(self, **overrides) -> "ServeConfig":
        return replace(self, **overrides)


@dataclass
class FleetConfig:
    """Multi-worker reorganizer fleet: partition claims via sim-time
    leases with heartbeats (crash takeover resumes from REORG_PROGRESS)."""

    workers: int = 2
    #: Algorithm per worker: ``"ira"`` or ``"ira-2lock"``.
    algorithm: str = "ira-2lock"
    #: Lease duration; a worker that misses heartbeats for this long is
    #: presumed dead and its partition claim becomes takeable.
    lease_ms: float = 600.0
    #: Heartbeat renewal interval (must be well under ``lease_ms``).
    heartbeat_ms: float = 150.0
    #: Partitions each fleet run reorganizes (claimed one at a time per
    #: worker from the advisor's recommendation order).
    partitions: int = 2

    def copy(self, **overrides) -> "FleetConfig":
        return replace(self, **overrides)


@dataclass
class GovernorConfig:
    """Reorg governor: paces or pauses the fleet when the serving layer's
    shed/deadline-miss rates breach the SLO."""

    enabled: bool = True
    #: Sampling tick and sliding-window length for rate estimation.
    tick_ms: float = 250.0
    window_ms: float = 2_000.0
    #: SLO thresholds as fractions of arrivals in the window.
    shed_slo: float = 0.02
    deadline_miss_slo: float = 0.05
    #: Pacing delay injected between reorganizer migration batches when
    #: the SLO is breached (the governor "paces").
    pace_delay_ms: float = 40.0
    #: Consecutive breached ticks after which workers pause outright
    #: until the rates recover below the SLO.
    pause_after_breaches: int = 4

    def copy(self, **overrides) -> "GovernorConfig":
        return replace(self, **overrides)


@dataclass
class DistConfig:
    """Multi-node cluster (``repro.dist``): sharding, interconnect and
    cross-node reorganization knobs."""

    #: Nodes in the cluster; node ``i`` owns data partition ``10*i + 1``
    #: (reorganized) and hub partition ``10*i + 2`` (never reorganized —
    #: see DIST.md for why cross-node references only originate in hubs).
    node_count: int = 3
    #: Live objects bulk-loaded into each node's data partition.
    objects_per_partition: int = 36
    payload_bytes: int = 24
    #: Fraction of each data partition's objects given a *remote* hub
    #: parent (the edges whose TRT maintenance needs 2PC).
    remote_ref_fraction: float = 0.5
    #: Fraction additionally given a *local* hub parent (same node,
    #: different partition — patched by the ordinary local protocol).
    local_hub_fraction: float = 0.25
    #: Reference slots per hub object.
    hub_fanout: int = 4
    seed: int = 7
    #: Per-link one-way delay range; the jitter is also what reorders
    #: messages relative to each other.
    link_delay_min_ms: float = 0.5
    link_delay_max_ms: float = 3.0
    heartbeat_ms: float = 25.0
    suspect_after_ms: float = 80.0
    #: Per-attempt RPC deadline; retries follow :meth:`rpc_retry_policy`.
    rpc_deadline_ms: float = 30.0
    #: How long a prepared participant waits for the pushed decision
    #: before pulling it from the coordinator.
    decision_timeout_ms: float = 60.0
    #: Per-node background scrubber cadence (0 disables).
    scrub_interval_ms: float = 40.0
    scrub_pages_per_sweep: int = 4
    #: Objects per migration transaction on each node.
    migration_batch_size: int = 4
    #: Safety horizon for cluster runs (heartbeats never drain the queue,
    #: so every run uses ``run(until=...)``).
    horizon_ms: float = 120_000.0

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError("node_count must be >= 1")
        if not 0.0 <= self.remote_ref_fraction <= 1.0:
            raise ValueError("remote_ref_fraction must be in [0, 1]")
        if not 0.0 <= self.local_hub_fraction <= 1.0:
            raise ValueError("local_hub_fraction must be in [0, 1]")

    def rpc_retry_policy(self) -> RetryPolicy:
        """Cross-node RPC backoff: the same shared policy shape as disk
        retries and the serving layer — capped exponential with seeded
        jitter, then :class:`~repro.errors.NodeUnreachableError`."""
        return RetryPolicy.exponential(base_ms=5.0, factor=2.0,
                                       max_ms=80.0, jitter=0.25,
                                       max_retries=6)

    def copy(self, **overrides) -> "DistConfig":
        return replace(self, **overrides)


@dataclass
class MvccConfig:
    """Multi-version read tier (:mod:`repro.mvcc`) knobs."""

    #: First-committer-wins retries per logical transaction before the
    #: caller gives the walk up (the serving layer has its own budget).
    max_write_conflict_retries: int = 8
    #: Uniform backoff range between conflict retries (ms).
    conflict_backoff_low_ms: float = 1.0
    conflict_backoff_high_ms: float = 25.0
    #: The merge consolidates a partition's tail versions into this many
    #: new base objects per CPU yield (pure pacing — the install itself
    #: is one atomic system transaction regardless).
    merge_batch_size: int = 16
    #: Run epoch GC (prune chains + free superseded bases below the
    #: oldest active snapshot) every N commits (0 = only explicit calls).
    gc_every_commits: int = 32
    #: Keep the full commit log for the snapshot-isolation oracle (the
    #: explorer turns this on; benches leave it off to bound memory).
    record_history: bool = False

    def conflict_retry_policy(self) -> RetryPolicy:
        return RetryPolicy.uniform(low_ms=self.conflict_backoff_low_ms,
                                   high_ms=self.conflict_backoff_high_ms,
                                   max_retries=self.max_write_conflict_retries)

    def copy(self, **overrides) -> "MvccConfig":
        return replace(self, **overrides)


@dataclass
class ExperimentConfig:
    """One performance-experiment run (driver settings)."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    system: SystemConfig = field(default_factory=SystemConfig)
    reorg: ReorgConfig = field(default_factory=ReorgConfig)
    #: Partition to reorganize (1-based; 0 is the persistent-root partition).
    reorg_partition: int = 1
    #: Simulated-time horizon (ms) for runs without a reorganizer (NR) or as
    #: a safety bound; None = run until the reorganizer finishes.
    horizon_ms: Optional[float] = None
