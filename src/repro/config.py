"""Configuration for the engine's cost model and the paper's workload.

``SystemConfig`` holds the simulated-hardware cost model.  The constants
are calibrated so the no-reorganization baseline lands near the paper's
absolute numbers on its 167 MHz UltraSPARC (NR throughput peaking around
MPL 5 at ~40 tps and ~35 tps at MPL 30; average response time ~800 ms at
MPL 30) — see EXPERIMENTS.md for the calibration.

``WorkloadConfig`` is Table 1 of the paper, plus the structural constants
of §5.2 (85-object cluster trees, which are exactly complete 4-ary trees
of depth 3: 1 + 4 + 16 + 64 = 85).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class SystemConfig:
    """Engine parameters and the simulated cost model (times in ms)."""

    page_size: int = 4096
    cpu_count: int = 1                    # the paper's machine: uniprocessor
    lock_timeout_ms: float = 1000.0       # §5: "set to one second"
    log_flush_ms: float = 8.0             # one log-disk write at commit

    # Per-operation CPU costs for user transactions.
    cpu_object_access_ms: float = 3.0     # one random-walk object access
    cpu_update_extra_ms: float = 0.5      # additional work for an update
    cpu_undo_per_op_ms: float = 0.3       # rollback work per logged change

    # CPU costs for the reorganization utility.
    cpu_traverse_ms: float = 0.4          # fuzzy traversal, per object
    cpu_migrate_ms: float = 1.5           # copy + bookkeeping, per object
    cpu_ref_patch_ms: float = 0.3         # per parent reference update

    # Disk-resident setting (paper §7, future work): pages are cached in
    # a buffer pool and page faults cost data-disk I/O.
    disk_resident: bool = False
    buffer_pool_pages: int = 512
    disk_read_ms: float = 10.0
    disk_write_ms: float = 10.0

    ert_bucket_capacity: int = 8          # extendible-hash bucket size
    track_lock_history: bool = True       # §4.1 support in the lock manager
    #: Deadlock handling: ``"timeout"`` is the paper's scheme (§5); with
    #: ``"waits-for"`` the lock manager detects cycles at block time and
    #: victimizes the requester that closed the cycle (the timeout stays
    #: armed as a fallback).  The serving layer defaults to waits-for.
    deadlock_detection: str = "timeout"
    enforce_ref_protocol: bool = True     # refs must come from read objects
    strict_transactions: bool = True      # strict 2PL (relaxed per §4.1)

    # Transient-I/O handling (exercised by the repro.faults injector): a
    # failed page read/write or log flush is retried with capped
    # exponential backoff before the error escalates.
    io_retry_limit: int = 4
    io_retry_backoff_ms: float = 5.0

    # Corruption defense.  Pages always carry checksums; these knobs
    # control *when* they are re-verified: on every buffer-pool miss
    # read (disk-resident setting), and by the background scrubber
    # (:class:`repro.storage.scrub.Scrubber`; 0 = no scrubbing).
    verify_page_reads: bool = True
    scrub_interval_ms: float = 0.0
    scrub_pages_per_sweep: int = 8

    def copy(self, **overrides) -> "SystemConfig":
        return replace(self, **overrides)


@dataclass
class WorkloadConfig:
    """Table 1 of the paper (defaults column) plus §5.2 structure."""

    num_partitions: int = 10              # NUMPARTITIONS
    objects_per_partition: int = 4080     # NUMOBJS (= 48 clusters of 85)
    mpl: int = 30                         # MPL
    ops_per_trans: int = 8                # OPSPERTRANS
    update_prob: float = 0.5              # UPDATEPROB
    glue_factor: float = 0.05             # GLUEFACTOR

    cluster_size: int = 85                # §5.2: trees of 85 objects
    branching: int = 4                    # 85 = 1 + 4 + 16 + 64
    payload_bytes: int = 48               # ≈100-byte objects (§5.3.3)
    ref_update_prob: float = 0.1          # update accesses that re-point
                                          # the glue edge (drives the TRT)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.objects_per_partition % self.cluster_size:
            raise ValueError(
                f"objects_per_partition={self.objects_per_partition} must be "
                f"a multiple of cluster_size={self.cluster_size}")
        expected = sum(self.branching ** d for d in range(self._depth() + 1))
        if expected != self.cluster_size:
            raise ValueError(
                f"cluster_size={self.cluster_size} is not a complete "
                f"{self.branching}-ary tree (nearest: {expected})")

    def _depth(self) -> int:
        total, depth = 1, 0
        while total < self.cluster_size:
            depth += 1
            total += self.branching ** depth
        return depth

    @property
    def clusters_per_partition(self) -> int:
        return self.objects_per_partition // self.cluster_size

    @property
    def tree_depth(self) -> int:
        return self._depth()

    def copy(self, **overrides) -> "WorkloadConfig":
        return replace(self, **overrides)


@dataclass
class ReorgConfig:
    """Knobs for the reorganization utilities."""

    #: Object migrations grouped per system transaction (§4.3).  The paper's
    #: basic IRA uses one transaction per object migration.
    migration_batch_size: int = 1
    #: Collect unreachable objects discovered by the traversal (§4.6).
    collect_garbage: bool = False
    #: Checkpoint reorganizer state every N migrations (0 = never, §4.4).
    checkpoint_every: int = 0
    #: Retries when Find_Exact_Parents loses a deadlock (lock timeout).
    max_deadlock_retries: int = 50
    #: Deadlock retries back off exponentially instead of re-colliding in
    #: lockstep: the ``n``-th retry sleeps
    #: ``min(retry_backoff_ms * retry_backoff_factor**n,
    #: retry_backoff_max_ms)`` scaled down by up to ``retry_jitter`` drawn
    #: from a seeded RNG, so runs stay deterministic.  ``retry_backoff_ms=0``
    #: restores the old retry-immediately behaviour.
    retry_backoff_ms: float = 8.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max_ms: float = 1000.0
    retry_jitter: float = 0.5
    retry_seed: int = 0

    def copy(self, **overrides) -> "ReorgConfig":
        return replace(self, **overrides)


@dataclass
class ServeConfig:
    """Front-end serving layer (``repro.serve``): open-loop arrivals,
    admission control, deadlines, and retry budgets."""

    #: Arrival process: ``"poisson"`` (stationary), ``"flash-crowd"``
    #: (rate multiplied by ``flash_multiplier`` inside the flash window),
    #: or ``"diurnal"`` (sinusoidal rate modulation).
    arrival: str = "poisson"
    #: Mean open-loop arrival rate (requests per simulated second).
    arrival_rate_tps: float = 40.0
    flash_multiplier: float = 6.0
    flash_start_ms: float = 10_000.0
    flash_duration_ms: float = 10_000.0
    diurnal_period_ms: float = 40_000.0
    #: Diurnal peak-to-mean swing in [0, 1).
    diurnal_amplitude: float = 0.6
    #: Zipf exponent for partition skew (0 = uniform).
    zipf_s: float = 1.1
    #: Bounded admission queue: arrivals beyond this depth are shed.
    queue_depth: int = 64
    #: Server pool size — concurrent in-flight requests (the MPL).
    servers: int = 30
    #: A queued request still unserved after this long is shed (stale).
    queue_deadline_ms: float = 2_000.0
    #: End-to-end deadline: queue wait + execution; a miss is recorded
    #: (the request still completes — the simulator cannot preempt a
    #: transaction mid-walk, matching a real server finishing the work).
    response_deadline_ms: float = 8_000.0
    #: Per-request retry budget after deadlock/timeout aborts; an
    #: exhausted budget gives the request up (a distinct counter).
    retry_budget: int = 8
    #: How long arrivals are generated (the measurement window may close
    #: later, once in-flight requests drain).
    duration_ms: float = 30_000.0
    seed: int = 42

    def copy(self, **overrides) -> "ServeConfig":
        return replace(self, **overrides)


@dataclass
class FleetConfig:
    """Multi-worker reorganizer fleet: partition claims via sim-time
    leases with heartbeats (crash takeover resumes from REORG_PROGRESS)."""

    workers: int = 2
    #: Algorithm per worker: ``"ira"`` or ``"ira-2lock"``.
    algorithm: str = "ira-2lock"
    #: Lease duration; a worker that misses heartbeats for this long is
    #: presumed dead and its partition claim becomes takeable.
    lease_ms: float = 600.0
    #: Heartbeat renewal interval (must be well under ``lease_ms``).
    heartbeat_ms: float = 150.0
    #: Partitions each fleet run reorganizes (claimed one at a time per
    #: worker from the advisor's recommendation order).
    partitions: int = 2

    def copy(self, **overrides) -> "FleetConfig":
        return replace(self, **overrides)


@dataclass
class GovernorConfig:
    """Reorg governor: paces or pauses the fleet when the serving layer's
    shed/deadline-miss rates breach the SLO."""

    enabled: bool = True
    #: Sampling tick and sliding-window length for rate estimation.
    tick_ms: float = 250.0
    window_ms: float = 2_000.0
    #: SLO thresholds as fractions of arrivals in the window.
    shed_slo: float = 0.02
    deadline_miss_slo: float = 0.05
    #: Pacing delay injected between reorganizer migration batches when
    #: the SLO is breached (the governor "paces").
    pace_delay_ms: float = 40.0
    #: Consecutive breached ticks after which workers pause outright
    #: until the rates recover below the SLO.
    pause_after_breaches: int = 4

    def copy(self, **overrides) -> "GovernorConfig":
        return replace(self, **overrides)


@dataclass
class ExperimentConfig:
    """One performance-experiment run (driver settings)."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    system: SystemConfig = field(default_factory=SystemConfig)
    reorg: ReorgConfig = field(default_factory=ReorgConfig)
    #: Partition to reorganize (1-based; 0 is the persistent-root partition).
    reorg_partition: int = 1
    #: Simulated-time horizon (ms) for runs without a reorganizer (NR) or as
    #: a safety bound; None = run until the reorganizer finishes.
    horizon_ms: Optional[float] = None
