"""The External Reference Table (ERT).

Each partition P keeps an ERT storing every reference ``R -> O`` where
``O`` belongs to P and ``R`` does not (paper §2): back pointers for
references *into* the partition.  The fuzzy traversal starts from the
ERT's referenced objects, and PQR locks the ERT's parents to quiesce the
partition.

Backed by the extendible-hash index, as in Brahmā (§5), keyed by the
referenced (child) object.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from ..index import ExtendibleHashIndex
from ..storage.oid import Oid


class ExternalReferenceTable:
    """Back-pointer table for one partition's incoming external references."""

    def __init__(self, partition_id: int, bucket_capacity: int = 8):
        self.partition_id = partition_id
        self._index = ExtendibleHashIndex(bucket_capacity=bucket_capacity)

    # -- maintenance (driven by the log analyzer) ---------------------------------

    def add(self, child: Oid, parent: Oid) -> bool:
        """Note an external reference ``parent -> child``."""
        self._check(child, parent)
        return self._index.insert(child.pack(), parent)

    def remove(self, child: Oid, parent: Oid) -> bool:
        """Forget an external reference ``parent -> child``."""
        self._check(child, parent)
        return self._index.remove(child.pack(), parent)

    # -- queries --------------------------------------------------------------------

    def parents_of(self, child: Oid) -> Set[Oid]:
        """External parents currently recorded for ``child``."""
        return self._index.get(child.pack())

    def contains(self, child: Oid, parent: Oid) -> bool:
        return self._index.contains(child.pack(), parent)

    def referenced_objects(self) -> Iterator[Oid]:
        """Objects of this partition referenced from outside — the fuzzy
        traversal's starting points (§3.4)."""
        for packed in self._index.keys():
            yield Oid.unpack(packed)

    def entries(self) -> Iterator[Tuple[Oid, Oid]]:
        """All ``(child, parent)`` pairs."""
        for packed, parent in self._index.items():
            yield Oid.unpack(packed), parent

    def all_parents(self) -> Set[Oid]:
        """Every distinct external parent — what PQR must lock (§5.1)."""
        return {parent for _, parent in self._index.items()}

    def __len__(self) -> int:
        return len(self._index)

    # -- checkpointing ------------------------------------------------------------------

    def snapshot(self) -> List[Tuple[int, int]]:
        return [(child.pack(), parent.pack())
                for child, parent in self.entries()]

    @classmethod
    def restore(cls, partition_id: int, state: List[Tuple[int, int]],
                bucket_capacity: int = 8) -> "ExternalReferenceTable":
        ert = cls(partition_id, bucket_capacity=bucket_capacity)
        for child_packed, parent_packed in state:
            ert._index.insert(child_packed, Oid.unpack(parent_packed))
        return ert

    # -- internals -------------------------------------------------------------------------

    def _check(self, child: Oid, parent: Oid) -> None:
        if child.partition != self.partition_id:
            raise ValueError(
                f"{child} is not in partition {self.partition_id}")
        if parent.partition == self.partition_id:
            raise ValueError(
                f"{parent} -> {child} is not an external reference")

    def __repr__(self) -> str:
        return f"<ERT p{self.partition_id} entries={len(self._index)}>"
