"""The Temporary Reference Table (TRT).

A transient per-partition table, existing only while a reorganization is
in progress (paper §3.3, §4.5), logging every pointer insert and delete
whose *referenced* object lives in the partition.  Tuples have the form
``(O, R, tid, action)``: transaction ``tid`` inserted/deleted a reference
to ``O`` from parent ``R``.

Find_Exact_Parents drains tuples for the object being migrated; the fuzzy
traversal reseeds from referenced objects it has not visited (Lemma 3.1).

Space optimizations (§4.5), applied when the engine runs strict 2PL:

* when the transaction that logged a pointer *delete* completes, the
  delete tuple can be purged (any reinsert by it is separately logged);
* when a transaction that deleted ``R -> O`` commits, any *insert* tuple
  for the same ``R -> O`` can be purged as well.

When transactions do not follow strict 2PL, delete tuples must be kept
(another transaction may have seen the reference and reinsert it later).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from ..index import ExtendibleHashIndex
from ..storage.oid import Oid

ACTION_INSERT = "I"
ACTION_DELETE = "D"


@dataclass(frozen=True)
class TrtEntry:
    """One logged pointer action: ``(O, R, tid, action)``.

    ``seq`` orders tuples within the table: a transaction may delete and
    then *re-insert* the very same reference (e.g. re-pointing a slot back
    and forth), and the §4.5 purge must only erase insert tuples recorded
    *before* the matching delete — the re-insert after it is a live parent
    the reorganizer still has to discover.
    """

    child: Oid     # O — the referenced object (in this partition)
    parent: Oid    # R — the referencer
    tid: int
    action: str    # ACTION_INSERT or ACTION_DELETE
    seq: int = 0

    def __repr__(self) -> str:
        return (f"TrtEntry({self.child}<-{self.parent} {self.action} "
                f"t{self.tid} #{self.seq})")


class TrtStats:
    __slots__ = ("recorded", "purged", "drained", "peak_size")

    def __init__(self) -> None:
        self.recorded = 0
        self.purged = 0
        self.drained = 0
        self.peak_size = 0


class TemporaryReferenceTable:
    """Per-partition insert/delete log, backed by extendible hashing."""

    def __init__(self, partition_id: int, bucket_capacity: int = 8):
        self.partition_id = partition_id
        self._index = ExtendibleHashIndex(bucket_capacity=bucket_capacity)
        self._by_tid: Dict[int, Set[TrtEntry]] = {}
        self._size = 0
        self._next_seq = 1
        #: Objects created in this partition while the TRT is active
        #: (paper §2 footnote 6: the reorganizer will not migrate them,
        #: and a garbage-collecting run must never classify them as
        #: garbage — their creator may still be about to link them).
        self.created_since_activation: Set[Oid] = set()
        self.stats = TrtStats()

    def record_creation(self, oid: Oid) -> None:
        if oid.partition != self.partition_id:
            raise ValueError(f"{oid} is not in partition {self.partition_id}")
        self.created_since_activation.add(oid)

    # -- recording (driven by the log analyzer) --------------------------------

    def record_insert(self, child: Oid, parent: Oid, tid: int) -> None:
        self._record(TrtEntry(child, parent, tid, ACTION_INSERT,
                              self._take_seq()))

    def record_delete(self, child: Oid, parent: Oid, tid: int) -> None:
        self._record(TrtEntry(child, parent, tid, ACTION_DELETE,
                              self._take_seq()))

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _record(self, entry: TrtEntry) -> None:
        if entry.child.partition != self.partition_id:
            raise ValueError(
                f"{entry.child} is not in partition {self.partition_id}")
        if self._index.insert(entry.child.pack(), entry):
            self._size += 1
            self._by_tid.setdefault(entry.tid, set()).add(entry)
            self.stats.recorded += 1
            self.stats.peak_size = max(self.stats.peak_size, self._size)

    # -- consumption by the reorganizer --------------------------------------------

    def entries_for(self, child: Oid) -> Set[TrtEntry]:
        """All tuples whose referenced object is ``child`` (a copy)."""
        return self._index.get(child.pack())

    def pop_entry(self, entry: TrtEntry) -> bool:
        """Remove one tuple (Find_Exact_Parents deletes tuples it handles)."""
        if self._index.remove(entry.child.pack(), entry):
            self._size -= 1
            self._forget_tid_link(entry)
            self.stats.drained += 1
            return True
        return False

    def has_entries_for(self, child: Oid) -> bool:
        return child.pack() in self._index

    def referenced_objects(self) -> Iterator[Oid]:
        """Distinct referenced objects with live tuples — the traversal
        reseeding set of Fig. 3's L2 loop."""
        seen = set()
        for packed in self._index.keys():
            if packed not in seen:
                seen.add(packed)
                yield Oid.unpack(packed)

    def all_parents(self) -> Set[Oid]:
        """Every distinct parent in the table — what PQR must lock (§5.1)."""
        return {entry.parent for _, entry in self._index.items()}

    def entries(self) -> List[TrtEntry]:
        """Every live tuple in recording order — for TRT checkpoints (§4.4)."""
        return sorted((entry for _, entry in self._index.items()),
                      key=lambda e: e.seq)

    # -- §4.5 space optimization -----------------------------------------------------

    def on_transaction_end(self, tid: int, strict_2pl: bool) -> int:
        """Purge tuples made obsolete by ``tid`` completing.

        Returns the number of tuples purged.  No-op (and must be, for
        correctness) when transactions do not follow strict 2PL.
        """
        if not strict_2pl:
            return 0
        entries = self._by_tid.pop(tid, None)
        if not entries:
            return 0
        purged = 0
        for entry in entries:
            if entry.action != ACTION_DELETE:
                continue
            if self._index.remove(entry.child.pack(), entry):
                self._size -= 1
                purged += 1
            # The deleting transaction committed or aborted; an insert tuple
            # for the very same reference recorded *before* the delete is
            # now redundant (§4.5).  A later re-insert of the same
            # reference is a live parent and must survive.
            for other in list(self._index.get(entry.child.pack())):
                if other.action == ACTION_INSERT and \
                        other.parent == entry.parent and \
                        other.seq < entry.seq:
                    if self._index.remove(entry.child.pack(), other):
                        self._size -= 1
                        self._forget_tid_link(other)
                        purged += 1
        # Surviving insert tuples of tid stay in the table until drained by
        # Find_Exact_Parents; no per-tid link is needed once tid has ended.
        self.stats.purged += purged
        return purged

    def _forget_tid_link(self, entry: TrtEntry) -> None:
        linked = self._by_tid.get(entry.tid)
        if linked is not None:
            linked.discard(entry)
            if not linked:
                del self._by_tid[entry.tid]

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"<TRT p{self.partition_id} tuples={self._size}>"
