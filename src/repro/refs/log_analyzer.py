"""The log analyzer (paper §3.3).

"A simple mechanism to maintain the TRT and the ERT, as pointers are
updated, is to process the system logs by a separate process called log
analyzer as soon as they are handed over to the logging subsystem."

The analyzer subscribes to the log manager and consumes every record at
append time.  It maintains:

* the **ERT** of every partition, permanently — including across the
  reorganizer's own migrations, whose OBJ_CREATE / OBJ_DELETE /
  REF_UPDATE records describe exactly the ERT changes Fig. 5 requires;
* every **active TRT** — but only from *user* transactions: the
  reorganizer's own reference patches are not new parents it needs to
  chase (it made them), so system-transaction updates are skipped.

CLRs are analyzed through their inner action: a transaction abort that
reintroduces a deleted reference is thereby "treated as an insertion of a
reference" (§4.5), exactly as the paper requires.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from ..storage import ObjectImage
from ..storage.oid import Oid
from ..wal.records import (
    KIND_BEGIN,
    KIND_CLR,
    KIND_END,
    KIND_OBJ_CREATE,
    KIND_OBJ_DELETE,
    KIND_REF_UPDATE,
    LogRecord,
    ObjCreateRecord,
    ObjDeleteRecord,
    RefUpdateRecord,
)
from .ert import ExternalReferenceTable
from .trt import TemporaryReferenceTable

#: Record kinds that carry reference information the analyzer acts on.
_ANALYZED_KINDS = frozenset({
    KIND_BEGIN, KIND_END, KIND_REF_UPDATE,
    KIND_OBJ_CREATE, KIND_OBJ_DELETE, KIND_CLR,
})


class LogAnalyzer:
    """Maintains ERTs and active TRTs from the log record stream."""

    def __init__(self, ert_for: Callable[[int], ExternalReferenceTable],
                 strict_2pl: bool = True):
        self._ert_for = ert_for
        self.strict_2pl = strict_2pl
        self._active_trts: Dict[int, TemporaryReferenceTable] = {}
        #: Active reorganizer transactions: tid -> partition they work on.
        #: That partition's TRT skips their updates; all other TRTs record
        #: them like any transaction's (concurrent reorganizations of
        #: referencing partitions must see each other's patches).
        self._reorg_owner: Dict[int, int] = {}
        self.records_processed = 0

    # -- TRT lifecycle ------------------------------------------------------------

    def activate_trt(self, trt: TemporaryReferenceTable) -> None:
        if trt.partition_id in self._active_trts:
            raise RuntimeError(
                f"a TRT is already active for partition {trt.partition_id}")
        self._active_trts[trt.partition_id] = trt

    def deactivate_trt(self, partition_id: int) -> None:
        self._active_trts.pop(partition_id, None)

    def trt(self, partition_id: int) -> TemporaryReferenceTable:
        return self._active_trts[partition_id]

    def has_active_trt(self, partition_id: int) -> bool:
        return partition_id in self._active_trts

    # -- record processing -----------------------------------------------------------

    def process(self, record: LogRecord) -> None:
        """Consume one log record (called synchronously at append time).

        Dispatches on the ``kind`` tag rather than ``isinstance`` chains:
        the analyzer sees *every* appended record, and the most frequent
        kinds (payload updates, commits) need no analysis at all.
        """
        self.records_processed += 1
        kind = record.kind
        if kind not in _ANALYZED_KINDS:
            # Payload updates, commits and aborts — the bulk of the
            # stream — carry no reference information.
            return
        if kind == KIND_BEGIN:
            if record.is_system and record.owner_partition is not None:
                self._reorg_owner[record.tid] = record.owner_partition
        elif kind == KIND_END:
            self._reorg_owner.pop(record.tid, None)
            for trt in self._active_trts.values():
                trt.on_transaction_end(record.tid, self.strict_2pl)
        elif kind == KIND_REF_UPDATE:
            self._analyze_ref_update(record.tid, record.parent,
                                     record.old_child, record.new_child)
        elif kind == KIND_OBJ_CREATE:
            trt = self._active_trts.get(record.oid.partition)
            if trt is not None and not self._owned_by(record.tid,
                                                      record.oid.partition):
                trt.record_creation(record.oid)
            self._analyze_whole_object(record.tid, record.oid,
                                       record.image, created=True)
        elif kind == KIND_OBJ_DELETE:
            self._analyze_whole_object(record.tid, record.oid,
                                       record.before_image, created=False)
        elif kind == KIND_CLR:
            # Analyze the compensation through its inner action: an abort
            # that reintroduces a deleted reference is treated as an
            # insertion (§4.5).  The inner record carries the same tid.
            inner = record.decode_action()
            if isinstance(inner, RefUpdateRecord):
                self._analyze_ref_update(inner.tid, inner.parent,
                                         inner.old_child, inner.new_child)
            elif isinstance(inner, ObjCreateRecord):
                self._analyze_whole_object(inner.tid, inner.oid,
                                           inner.image, created=True)
            elif isinstance(inner, ObjDeleteRecord):
                self._analyze_whole_object(inner.tid, inner.oid,
                                           inner.before_image, created=False)

    # -- internals ----------------------------------------------------------------------

    def _analyze_ref_update(self, tid: int, parent: Oid, old_child, new_child):
        if old_child is not None:
            self._reference_deleted(tid, parent, old_child)
        if new_child is not None:
            self._reference_inserted(tid, parent, new_child)

    def _analyze_whole_object(self, tid: int, oid: Oid, image: bytes,
                              created: bool) -> None:
        for child in ObjectImage.decode(image).children():
            if created:
                self._reference_inserted(tid, oid, child)
            else:
                self._reference_deleted(tid, oid, child)

    def _owned_by(self, tid: int, partition_id: int) -> bool:
        """True iff ``tid`` is the reorganizer working on ``partition_id``."""
        return self._reorg_owner.get(tid) == partition_id

    def _reference_inserted(self, tid: int, parent: Oid, child: Oid) -> None:
        if parent.partition != child.partition:
            self._ert_for(child.partition).add(child, parent)
        trt = self._active_trts.get(child.partition)
        if trt is not None and not self._owned_by(tid, child.partition):
            trt.record_insert(child, parent, tid)

    def _reference_deleted(self, tid: int, parent: Oid, child: Oid) -> None:
        if parent.partition != child.partition:
            self._ert_for(child.partition).remove(child, parent)
        trt = self._active_trts.get(child.partition)
        if trt is not None and not self._owned_by(tid, child.partition):
            trt.record_delete(child, parent, tid)
