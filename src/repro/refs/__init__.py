"""Reference tables (ERT, TRT) and the log analyzer that maintains them."""

from .ert import ExternalReferenceTable
from .log_analyzer import LogAnalyzer
from .trt import ACTION_DELETE, ACTION_INSERT, TemporaryReferenceTable, TrtEntry

__all__ = [
    "ACTION_DELETE",
    "ACTION_INSERT",
    "ExternalReferenceTable",
    "LogAnalyzer",
    "TemporaryReferenceTable",
    "TrtEntry",
]
