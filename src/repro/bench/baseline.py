"""Benchmark baselines: the ``BENCH_<n>.json`` files.

A baseline records, per *figure* (an experiment at a scale, keyed
``"<experiment>/<scale>"``, e.g. ``"table2/standard"``):

* ``wall_clock_s``   — real (host) seconds the figure took to compute;
* ``metrics``        — the simulated result summaries.  These are
  deterministic at a fixed seed, so a baseline also pins the *simulated*
  outcome byte-for-byte: any diff here is a behaviour change, not noise;
* ``counters``       — kernel counters (events dispatched, timers
  scheduled/cancelled, heap peak) per algorithm run.

``repro bench <experiment> --json FILE`` writes one; ``--compare FILE``
checks the current run against a committed baseline and fails the
process on a wall-clock regression beyond ``--max-regress`` percent —
that is the CI bench-smoke gate.  Wall-clock entries under ``pre_pr``
are measurements of the tree *before* an optimization PR, kept in the
same file so the speedup claim stays auditable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

SCHEMA = "repro-bench/1"


def figure_payload(points, wall_clock_s: float) -> Dict[str, object]:
    """Serializable record of one figure run (``run_three_way`` output)."""
    return {
        "wall_clock_s": round(wall_clock_s, 3),
        "metrics": {name: point.metrics.summary()
                    for name, point in points.items()},
        "counters": {name: point.counters
                     for name, point in points.items()},
    }


def new_baseline() -> Dict[str, object]:
    return {"schema": SCHEMA, "figures": {}}


def load_baseline(path: str) -> Dict[str, object]:
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {data.get('schema')!r} "
            f"(expected {SCHEMA!r})")
    return data


def save_baseline(path: str, data: Dict[str, object]) -> None:
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare_figure(figure_key: str, current: Dict[str, object],
                   baseline: Dict[str, object],
                   max_regress_pct: float,
                   check_metrics: bool = True) -> List[str]:
    """Problems comparing one current figure against a baseline file.

    * wall-clock: fails when the current run is more than
      ``max_regress_pct`` percent slower than the baseline figure;
    * simulated metrics: fails on *any* difference (same seed, same
      code must mean the same simulated numbers — drift is a bug, and
      kernel optimizations are required to be result-preserving).
    """
    problems: List[str] = []
    figures = baseline.get("figures", {})
    base = figures.get(figure_key)
    if base is None:
        return [f"baseline has no figure {figure_key!r} "
                f"(has: {sorted(figures)})"]
    base_wall = base["wall_clock_s"]
    wall = current["wall_clock_s"]
    limit = base_wall * (1.0 + max_regress_pct / 100.0)
    if wall > limit:
        problems.append(
            f"{figure_key}: wall-clock regression — {wall:.2f}s vs "
            f"baseline {base_wall:.2f}s (limit {limit:.2f}s at "
            f"+{max_regress_pct:.0f}%)")
    if check_metrics and current["metrics"] != base["metrics"]:
        diff_algs = sorted(
            name for name in set(current["metrics"]) | set(base["metrics"])
            if current["metrics"].get(name) != base["metrics"].get(name))
        problems.append(
            f"{figure_key}: simulated metrics drifted from baseline "
            f"for {diff_algs} — results must be deterministic at a "
            f"fixed seed")
    return problems
