"""Benchmark harness: one runner per paper table/figure.

Scales (``REPRO_BENCH_SCALE`` environment variable):

* ``paper``    — Table 1 defaults: 10 partitions x 4080 objects, the full
  sweep ranges.  Slowest; closest to the published absolute numbers.
* ``standard`` (default) — 6 partitions x 1020 objects and trimmed sweep
  ranges.  All the paper's *shapes* (who wins, where curves peak, the
  orders-of-magnitude dispersion gaps) reproduce at this scale in a few
  minutes.
* ``quick``    — 3 partitions x 340 objects, smoke-test sweeps.

Every run is deterministic given the workload seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import ExperimentConfig, ReorgConfig, SystemConfig, WorkloadConfig
from ..core import CompactionPlan
from ..database import Database
from ..workload import ExperimentMetrics, WorkloadDriver


@dataclass
class BenchScale:
    name: str
    num_partitions: int
    objects_per_partition: int
    mpl_points: Sequence[int]
    partition_size_points: Sequence[int]
    update_prob_points: Sequence[float]
    glue_factor_points: Sequence[float]
    walk_length_points: Sequence[int]
    partition_count_points: Sequence[int]
    batch_size_points: Sequence[int]
    nr_horizon_cap_ms: float


SCALES: Dict[str, BenchScale] = {
    "paper": BenchScale(
        name="paper", num_partitions=10, objects_per_partition=4080,
        mpl_points=(1, 5, 10, 20, 30, 45, 60),
        partition_size_points=(1020, 2040, 4080, 6120, 8160),
        update_prob_points=(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
        glue_factor_points=(0.01, 0.05, 0.2, 0.5),
        walk_length_points=(4, 8, 16),
        partition_count_points=(5, 10, 20),
        batch_size_points=(1, 4, 16, 64),
        nr_horizon_cap_ms=120_000.0),
    "standard": BenchScale(
        name="standard", num_partitions=6, objects_per_partition=1020,
        mpl_points=(1, 5, 15, 30, 45),
        partition_size_points=(510, 1020, 2040, 3060, 4080),
        update_prob_points=(0.1, 0.3, 0.5, 0.8, 1.0),
        glue_factor_points=(0.01, 0.05, 0.2, 0.5),
        walk_length_points=(4, 8, 16),
        partition_count_points=(3, 6, 12),
        batch_size_points=(1, 4, 16, 64),
        nr_horizon_cap_ms=60_000.0),
    "quick": BenchScale(
        name="quick", num_partitions=3, objects_per_partition=340,
        mpl_points=(2, 10, 30),
        partition_size_points=(170, 340, 680),
        update_prob_points=(0.1, 0.5, 0.9),
        glue_factor_points=(0.05, 0.5),
        walk_length_points=(4, 8),
        partition_count_points=(2, 4),
        batch_size_points=(1, 16),
        nr_horizon_cap_ms=20_000.0),
}


def bench_scale() -> BenchScale:
    """The active scale, from ``REPRO_BENCH_SCALE`` (default: standard)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "standard")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_BENCH_SCALE={name!r}; choose from {sorted(SCALES)}") \
            from None


@dataclass
class BenchPoint:
    """One measured experiment."""

    algorithm: str
    metrics: ExperimentMetrics
    overrides: Dict[str, object] = field(default_factory=dict)
    #: Kernel counters captured at the end of the run (events dispatched,
    #: timers scheduled/cancelled, heap peak) — see ``Simulator.counters``.
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.metrics.throughput_tps

    @property
    def art(self) -> float:
        return self.metrics.avg_response_ms


def base_workload(scale: Optional[BenchScale] = None,
                  **overrides) -> WorkloadConfig:
    scale = scale or bench_scale()
    params = dict(num_partitions=scale.num_partitions,
                  objects_per_partition=scale.objects_per_partition)
    params.update(overrides)
    return WorkloadConfig(**params)


def run_point(algorithm: str, workload: WorkloadConfig,
              system: Optional[SystemConfig] = None,
              reorg_config: Optional[ReorgConfig] = None,
              horizon_ms: Optional[float] = None,
              plan_factory=CompactionPlan,
              driver_cls=WorkloadDriver) -> BenchPoint:
    """Run one experiment on a freshly built database."""
    db, layout = Database.with_workload(workload, system=system)
    driver = driver_cls(
        db.engine, layout,
        ExperimentConfig(workload=workload, system=system or SystemConfig()))
    if algorithm == "nr":
        metrics = driver.run(horizon_ms=horizon_ms)
    else:
        reorganizer = db.reorganizer(1, algorithm, plan=plan_factory(),
                                     reorg_config=reorg_config)
        metrics = driver.run(reorganizer=reorganizer, horizon_ms=horizon_ms)
    report = db.verify_integrity()
    if not report.ok:
        raise AssertionError(
            f"integrity violated after {algorithm}: {report.problems()[:3]}")
    return BenchPoint(algorithm=algorithm, metrics=metrics,
                      counters=db.engine.sim.counters())


def run_three_way(workload: WorkloadConfig,
                  scale: Optional[BenchScale] = None
                  ) -> Dict[str, BenchPoint]:
    """NR / IRA / PQR at one parameter point (the paper's comparison).

    IRA runs first; NR is measured over the same duration (capped), as
    the paper measures while reorganization is in progress.
    """
    scale = scale or bench_scale()
    ira = run_point("ira", workload)
    nr_horizon = min(ira.metrics.window_ms, scale.nr_horizon_cap_ms)
    nr = run_point("nr", workload, horizon_ms=nr_horizon)
    pqr = run_point("pqr", workload)
    return {"nr": nr, "ira": ira, "pqr": pqr}


# -- output formatting ------------------------------------------------------------


def format_series(title: str, x_label: str, xs: Sequence,
                  series: Dict[str, Sequence[float]],
                  y_format: str = "{:9.2f}") -> str:
    """A paper-figure data table: one row per x, one column per series."""
    lines = [title, "-" * len(title)]
    header = f"{x_label:>12} " + " ".join(f"{name:>9}" for name in series)
    lines.append(header)
    for i, x in enumerate(xs):
        row = f"{x!s:>12} " + " ".join(
            y_format.format(values[i]) for values in series.values())
        lines.append(row)
    return "\n".join(lines)


def format_table2(points: Dict[str, BenchPoint]) -> str:
    lines = [
        "Table 2: Analysis of Response Times (paper: NR 35.0/819/1503/127,"
        " IRA 33.7/861/1935/135, PQR 28.0/1030/100040/4113)",
        f"{'':6} {'tput(tps)':>10} {'avg RT(ms)':>11} {'max RT(ms)':>11} "
        f"{'std RT(ms)':>11}",
    ]
    for name in ("nr", "ira", "pqr"):
        m = points[name].metrics
        lines.append(
            f"{name.upper():6} {m.throughput_tps:10.1f} "
            f"{m.avg_response_ms:11.0f} {m.max_response_ms:11.0f} "
            f"{m.std_response_ms:11.0f}")
    return "\n".join(lines)


def format_contention(points: Dict[str, BenchPoint]) -> str:
    """Abort/retry/fault counters per algorithm (robustness telemetry).

    ``dl-retries``/``backoff`` are the reorganizer's deadlock retries and
    the simulated time its exponential backoff spent sleeping; ``forced``
    and ``io-faults`` stay zero unless a fault injector was attached.
    """
    lines = [
        "Contention and fault counters",
        f"{'':6} {'aborts':>8} {'retries':>8} {'dl-retries':>10} "
        f"{'backoff(ms)':>11} {'timeouts':>9} {'forced':>7} "
        f"{'io-faults':>9}",
    ]
    for name, point in points.items():
        m = point.metrics
        lines.append(
            f"{name.upper():6} {m.aborts:8d} {m.total_retries:8d} "
            f"{m.reorg_deadlock_retries:10d} {m.reorg_backoff_ms:11.1f} "
            f"{m.lock_timeouts:9d} {m.forced_lock_timeouts:7d} "
            f"{m.io_faults:9d}")
    return "\n".join(lines)


def save_results(name: str, text: str) -> str:
    """Persist a bench's rendered output under benchmarks/results/."""
    results_dir = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
        "benchmarks", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
