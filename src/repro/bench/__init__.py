"""Benchmark harness reproducing the paper's tables and figures."""

from .baseline import (
    compare_figure,
    figure_payload,
    load_baseline,
    new_baseline,
    save_baseline,
)
from .harness import (
    SCALES,
    BenchPoint,
    BenchScale,
    base_workload,
    bench_scale,
    format_contention,
    format_series,
    format_table2,
    run_point,
    run_three_way,
    save_results,
)

__all__ = [
    "compare_figure",
    "figure_payload",
    "load_baseline",
    "new_baseline",
    "save_baseline",
    "SCALES",
    "BenchPoint",
    "BenchScale",
    "base_workload",
    "bench_scale",
    "format_contention",
    "format_series",
    "format_table2",
    "run_point",
    "run_three_way",
    "save_results",
]
