"""Presumed-abort two-phase commit for cross-node reference patches.

When the distributed reorganizer migrates an object whose parents live
on other nodes, the migration transaction (old copy deleted, new copy
created, local parents patched) and the remote parents' reference
patches must commit or abort as one unit — otherwise a crash leaves a
hub object pointing at a freed address on another node, which is exactly
the silent corruption the transparency guarantee forbids.  The
coordinator is the migrating node; each node holding affected parents is
a participant.

Protocol (textbook presumed-abort, with the reorganizer's local
migration transaction as the coordinator's branch):

1. Coordinator sends PREPARE(gid, patches) to every participant.
2. Participant: begins a system transaction, X-locks each parent,
   verifies the slot still references the old address, WAL-logs and
   applies the patch, force-logs ``TPC_PREPARE`` and votes **yes** —
   or aborts locally and votes **no** (lock timeout, stale patch).
   From the force-log on, the branch is *in-doubt*: a crash must
   neither commit nor undo it, and the patched parents stay X-locked.
3. Coordinator, on unanimous yes: force-logs ``TPC_DECISION(commit)``
   together with its own branch's COMMIT (one flush — the decision *is*
   the commit point), then pushes the decision.  Any no-vote or
   unreachable participant: pushes best-effort ABORT decisions and
   leaves its branch to the caller's abort/retry path.  Abort decisions
   need not be durable — that is the "presumed abort" part.
4. Participant applies the decision (commit/abort of its branch) and
   forgets the gid.  Decision delivery is push *and* pull: a
   participant that never hears the push queries ``tpc.resolve`` on the
   coordinator with backoff, so no branch stays in doubt forever.

Resolution answers derive only from durable or in-memory-active state:
*pending* while the coordinator still has the gid in flight (a decision
may exist in the log tail but not be durable yet — answering "commit"
off an unflushed record would let a participant commit a decision a
coordinator crash could still erase), *commit* iff a durable commit
decision exists, else *abort* (presumed).

``recover_in_doubt`` adopts the branches restart recovery reported
in-doubt: re-X-locks their patched parents (blocking only those pages),
then resolves each against the coordinator and settles — COMMIT +
END records on commit, a CLR rollback chain identical to recovery's
undo on abort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..concurrency import LockMode, LockTimeoutError
from ..errors import NodeUnreachableError
from ..sim import Delay, Wait, WaitTimeout
from ..storage.oid import Oid
from ..wal import (BeginRecord, ClrRecord, CommitRecord, EndRecord,
                   RefUpdateRecord, TpcDecisionRecord, TpcEndRecord,
                   TpcPrepareRecord, apply_record, invert_record)
from ..wal.records import PHYSICAL_KINDS

PREPARE = "tpc.prepare"
DECISION = "tpc.decision"
RESOLVE = "tpc.resolve"

#: Chaos crash stages, in protocol order.  The hook fires on the node
#: executing the stage, between the named pair of protocol steps.
COORDINATOR_STAGES = (
    "coord-before-prepare",      # gid allocated, nothing on the wire
    "coord-after-votes",         # all yes-votes in, decision not logged
    "coord-after-decision-log",  # decision appended, NOT yet durable
    "coord-after-commit",        # decision durable, not announced
    "coord-after-decision-send", # decisions pushed, END not logged
)
PARTICIPANT_STAGES = (
    "part-before-patch",         # prepare received, nothing applied
    "part-after-patch",          # patch logged+applied, prepare not logged
    "part-after-prepare-log",    # prepare durable, vote not sent (in doubt)
    "part-on-decision",          # decision known, branch not settled
)


class _StalePatchError(Exception):
    """The parent no longer references the old address — veto."""


class RemoteCommitAbort(LockTimeoutError):
    """A 2PC round could not commit (participant veto or unreachable
    peer).  Subclasses :class:`LockTimeoutError` so it funnels into the
    reorganizer's standard abort-and-retry batch path; there is no
    single lock behind it, hence the message-only constructor."""

    def __init__(self, message: str):
        Exception.__init__(self, message)
        self.tid = -1
        self.key = None
        self.mode = None


@dataclass
class _PreparedBranch:
    txn: Any
    coordinator: int
    event: Any = None  # decision push lands here


@dataclass
class TwoPhaseStats:
    coordinated: int = 0
    commits: int = 0
    aborts: int = 0
    prepares_handled: int = 0
    yes_votes: int = 0
    no_votes: int = 0
    duplicate_prepares: int = 0
    decisions_pushed: int = 0
    resolved_by_query: int = 0
    in_doubt_recovered: int = 0
    in_doubt_committed: int = 0
    in_doubt_aborted: int = 0


class TwoPhaseManager:
    """One node's coordinator + participant roles."""

    def __init__(self, node, decision_timeout_ms: float = 60.0,
                 pending_retry_ms: float = 25.0):
        self.node = node
        self.engine = node.engine
        self.decision_timeout_ms = decision_timeout_ms
        self.pending_retry_ms = pending_retry_ms
        self.stats = TwoPhaseStats()
        #: gid -> prepared (in-doubt) participant branch.
        self.prepared: Dict[str, _PreparedBranch] = {}
        #: gid -> "commit"/"abort" memo for late duplicate messages.
        self.resolved: Dict[str, str] = {}
        #: Coordinator-side gids still in flight (resolve says "pending").
        self.active: Set[str] = set()
        #: Branches mid-settle or awaiting in-doubt resolution — popped
        #: from ``prepared`` but their commit/abort not yet durable.  The
        #: cluster's quiescence check needs this window visible.
        self.settling = 0
        self._gid_seq = 0
        #: Chaos hook: ``fault_hook(stage, gid, node_id)`` may raise
        #: (crashing the calling process) at any protocol boundary.
        self.fault_hook = None
        node.rpc.serve(PREPARE, self._handle_prepare)
        node.rpc.serve(DECISION, self._handle_decision)
        node.rpc.serve(RESOLVE, self._handle_resolve)

    def _fault(self, stage: str, gid: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(stage, gid, self.node.node_id)

    # -- coordinator ------------------------------------------------------------

    def coordinate_commit(self, txn, patches_by_node: Dict[int, List[Tuple[Oid, Oid, Oid]]]
                          ) -> Generator[Any, Any, None]:
        """Commit ``txn`` (the local migration branch) together with
        reference patches on other nodes.

        ``patches_by_node`` maps participant node id to ``(parent, old,
        new)`` triples.  On success the local transaction is committed.
        On any failure the local transaction is left ACTIVE and an
        exception propagates — the caller (the reorganizer's batch retry
        loop) owns the abort, so this method must not abort it too.
        """
        self._gid_seq += 1
        # The crash epoch keeps gids unique across restarts: a reborn
        # coordinator restarts its sequence, and a participant's memo of
        # a pre-crash gid must never answer for a post-restart round.
        gid = (f"n{self.node.node_id}/e{self.node.crash_count}"
               f"/g{self._gid_seq}")
        participants = sorted(patches_by_node)
        self.stats.coordinated += 1
        self.active.add(gid)
        try:
            self._fault("coord-before-prepare", gid)
            prepared_at: List[int] = []
            try:
                for dst in participants:
                    payload = {
                        "gid": gid,
                        "coordinator": self.node.node_id,
                        "patches": [(p.pack(), o.pack(), n.pack())
                                    for p, o, n in patches_by_node[dst]],
                    }
                    reply = yield from self.node.call(dst, PREPARE, payload)
                    if reply["vote"] != "yes":
                        yield from self._push_decisions(
                            gid, prepared_at, commit=False)
                        self.stats.aborts += 1
                        raise RemoteCommitAbort(
                            f"2PC {gid}: node {dst} voted no")
                    prepared_at.append(dst)
            except NodeUnreachableError:
                # No decision was ever logged, so presumed abort already
                # covers the unreachable side; tell the reachable
                # yes-voters now rather than making them time out.
                yield from self._push_decisions(gid, prepared_at,
                                                commit=False)
                self.stats.aborts += 1
                raise
            self._fault("coord-after-votes", gid)
            # Global commit point: the durable decision.  It rides the
            # same flush as the branch's own COMMIT record.
            txn._log(TpcDecisionRecord(txn.tid, txn.last_lsn,
                                       gid=gid, commit=True))
            self._fault("coord-after-decision-log", gid)
            yield from txn.commit()
            self._fault("coord-after-commit", gid)
            self.stats.commits += 1
        finally:
            # Until here a resolve query must answer "pending"/"abort";
            # from here the durable log answers for itself.
            self.active.discard(gid)
        yield from self._push_decisions(gid, participants, commit=True)
        self._fault("coord-after-decision-send", gid)
        # Lazy: losing this record only costs a redundant resolve answer.
        self.engine.log.append(TpcEndRecord(0, 0, gid=gid))

    def _push_decisions(self, gid: str, participants: List[int],
                        commit: bool) -> Generator[Any, Any, None]:
        """Best-effort decision push: one attempt per participant; the
        participants' pull path (resolve with backoff) is the guarantee."""
        for dst in participants:
            try:
                yield from self.node.call(
                    dst, DECISION, {"gid": gid, "commit": commit},
                    attempts=1)
                self.stats.decisions_pushed += 1
            except NodeUnreachableError:
                pass

    def _handle_resolve(self, payload: dict) -> dict:
        gid = payload["gid"]
        if gid in self.active:
            return {"decision": "pending"}
        durable = self.engine.log.flushed_lsn
        for record in self.engine.log.records(upto_lsn=durable):
            if isinstance(record, TpcDecisionRecord) and record.gid == gid:
                return {"decision": "commit" if record.commit else "abort"}
        return {"decision": "abort"}  # presumed

    # -- participant ------------------------------------------------------------

    def _handle_prepare(self, payload: dict) -> Generator[Any, Any, dict]:
        gid = payload["gid"]
        self.stats.prepares_handled += 1
        if gid in self.resolved:
            # Late duplicate of something already settled.
            self.stats.duplicate_prepares += 1
            vote = "yes" if self.resolved[gid] == "commit" else "no"
            return {"vote": vote}
        if gid in self.prepared:
            # Retried PREPARE (our first vote was lost): idempotent —
            # the patch is already applied and logged under this gid.
            self.stats.duplicate_prepares += 1
            return {"vote": "yes"}
        self._fault("part-before-patch", gid)
        patches = [(Oid.unpack(p), Oid.unpack(o), Oid.unpack(n))
                   for p, o, n in payload["patches"]]
        txn = self.engine.txns.begin(system=True)
        try:
            for parent, old, new in patches:
                yield from txn.lock(parent, LockMode.X)
                if not self.engine.store.exists(parent):
                    raise _StalePatchError(f"parent {parent} is gone")
                image = self.engine.store.read_object(parent)
                slots = image.slots_referencing(old)
                if not slots:
                    raise _StalePatchError(
                        f"{parent} no longer references {old}")
                for slot in slots:
                    yield from txn.update_ref(parent, slot, new, cpu_ms=0)
            self._fault("part-after-patch", gid)
            lsn = txn._log(TpcPrepareRecord(
                txn.tid, txn.last_lsn, gid=gid,
                coordinator=payload["coordinator"]))
            yield from self.engine.log.flush(lsn)
            self._fault("part-after-prepare-log", gid)
        except (LockTimeoutError, _StalePatchError) as exc:
            yield from txn.abort(reason=f"tpc-veto: {exc}")
            self.resolved[gid] = "abort"
            self.stats.no_votes += 1
            return {"vote": "no"}
        branch = _PreparedBranch(txn=txn, coordinator=payload["coordinator"])
        branch.event = self.engine.sim.event(name=f"tpc-decision:{gid}")
        self.prepared[gid] = branch
        self.engine.sim.spawn(
            self._decision_waiter(gid),
            name=f"n{self.node.node_id}/tpc-wait-{gid.replace('/', '_')}")
        self.stats.yes_votes += 1
        return {"vote": "yes"}

    def _handle_decision(self, payload: dict) -> dict:
        gid = payload["gid"]
        branch = self.prepared.get(gid)
        if branch is not None and branch.event is not None \
                and not branch.event.fired:
            branch.event.succeed(bool(payload["commit"]))
        # Unknown gid: already settled (or never prepared) — ack so the
        # coordinator can forget it either way.
        return {"ack": True}

    def _decision_waiter(self, gid: str) -> Generator[Any, Any, None]:
        """Wait for the pushed decision; past the timeout, pull it from
        the coordinator (retrying across unreachability) — the liveness
        half of presumed abort."""
        branch = self.prepared.get(gid)
        if branch is None:
            return
        commit: Optional[bool] = None
        while commit is None:
            try:
                commit = yield Wait(branch.event,
                                    timeout=self.decision_timeout_ms)
                break
            except WaitTimeout:
                pass
            try:
                reply = yield from self.node.call(
                    branch.coordinator, RESOLVE, {"gid": gid})
            except NodeUnreachableError:
                yield from self.node.detector.await_up(branch.coordinator)
                continue
            if reply["decision"] == "pending":
                yield Delay(self.pending_retry_ms)
                continue
            commit = reply["decision"] == "commit"
            self.stats.resolved_by_query += 1
        yield from self._settle(gid, commit)

    def _settle(self, gid: str, commit: bool) -> Generator[Any, Any, None]:
        branch = self.prepared.pop(gid, None)
        if branch is None:
            return
        self.settling += 1
        try:
            self._fault("part-on-decision", gid)
            if commit:
                yield from branch.txn.commit()
            else:
                yield from branch.txn.abort(reason="tpc-abort")
            self.resolved[gid] = "commit" if commit else "abort"
        finally:
            self.settling -= 1

    # -- restart: adopt in-doubt branches ----------------------------------------

    def recover_in_doubt(self) -> int:
        """Re-arm the branches recovery reported in-doubt.

        For each: re-acquire X locks on the patched parents (recovery
        redid the patches but a restart empties the lock table — without
        this, readers could see a patch that may yet be rolled back),
        then spawn a resolver that settles against the coordinator.
        Also closes out prepared branches that *committed* right before
        the crash but whose END record the crash ate: recovery leaves
        committed transactions alone, so nobody else would ever write
        the END that marks the branch settled.

        Returns the number of branches adopted.
        """
        self._finish_settled_branches()
        stats = self.engine.recovery_stats
        if stats is None or not stats.in_doubt_txns:
            return 0
        adopted = 0
        for tid in sorted(stats.in_doubt_txns):
            prepare = stats.in_doubt_txns[tid]
            for parent in self._patched_parents(prepare):
                self.engine.locks.try_acquire(tid, parent, LockMode.X)
            self.engine.sim.spawn(
                self._recovered_resolver(tid, prepare),
                name=(f"n{self.node.node_id}/tpc-resolve-"
                      f"{prepare.gid.replace('/', '_')}"))
            adopted += 1
            self.stats.in_doubt_recovered += 1
        return adopted

    def _finish_settled_branches(self) -> None:
        """Append the missing END for prepared branches with a durable
        COMMIT but no END (aborted branches get theirs from recovery's
        undo), and memoize their outcome for late duplicate messages."""
        log = self.engine.log
        prepared: Dict[int, str] = {}
        committed: Set[int] = set()
        ended: Set[int] = set()
        for record in log.records():
            if isinstance(record, TpcPrepareRecord):
                prepared[record.tid] = record.gid
            elif isinstance(record, CommitRecord):
                committed.add(record.tid)
            elif isinstance(record, EndRecord):
                ended.add(record.tid)
        wrote = False
        for tid, gid in sorted(prepared.items()):
            if tid in committed:
                self.resolved.setdefault(gid, "commit")
                if tid not in ended:
                    log.append(EndRecord(tid, prev_lsn=0))
                    wrote = True
        if wrote:
            log.flush_now()

    def _patched_parents(self, prepare: TpcPrepareRecord) -> List[Oid]:
        parents: List[Oid] = []
        lsn = prepare.prev_lsn
        while lsn:
            record = self.engine.log.read(lsn)
            if isinstance(record, BeginRecord):
                break
            if isinstance(record, RefUpdateRecord):
                parents.append(record.parent)
            lsn = record.prev_lsn
        return parents

    def _recovered_resolver(self, tid: int,
                            prepare: TpcPrepareRecord
                            ) -> Generator[Any, Any, None]:
        gid = prepare.gid
        self.settling += 1
        commit: Optional[bool] = None
        while commit is None:
            try:
                reply = yield from self.node.call(
                    prepare.coordinator, RESOLVE, {"gid": gid})
            except NodeUnreachableError:
                yield from self.node.detector.await_up(prepare.coordinator)
                continue
            if reply["decision"] == "pending":
                yield Delay(self.pending_retry_ms)
                continue
            commit = reply["decision"] == "commit"
        log = self.engine.log
        if commit:
            log.append(CommitRecord(tid, prepare.lsn))
            log.append(EndRecord(tid, prev_lsn=0))
            log.flush_now()
            self.stats.in_doubt_committed += 1
        else:
            self._undo_recovered(tid, prepare.lsn)
            self.stats.in_doubt_aborted += 1
        self.engine.locks.release_all(tid)
        self.resolved[gid] = "commit" if commit else "abort"
        self.settling -= 1

    def _undo_recovered(self, tid: int, from_lsn: int) -> None:
        """Roll back a resolved-abort in-doubt branch: the same CLR walk
        restart recovery uses for losers, ending with END + flush so a
        second crash sees a cleanly finished transaction."""
        log = self.engine.log
        store = self.engine.store
        lsn = from_lsn
        while lsn:
            record = log.read(lsn)
            if isinstance(record, BeginRecord):
                break
            if isinstance(record, ClrRecord):
                lsn = record.undo_next_lsn
                continue
            if record.kind in PHYSICAL_KINDS:
                inverse = invert_record(record)
                clr = ClrRecord(tid, prev_lsn=0,
                                undo_next_lsn=record.prev_lsn,
                                undone_lsn=record.lsn,
                                action=inverse.encode())
                clr_lsn = log.append(clr)
                apply_record(store, inverse, lsn=clr_lsn)
            lsn = record.prev_lsn
        log.append(EndRecord(tid, prev_lsn=0))
        log.flush_now()
