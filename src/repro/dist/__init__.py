"""Distributed multi-node object store with cross-node reorganization.

Shards partitions across N simulated nodes — each a full storage engine
with its own WAL and resources — connected by a latency-modeled,
partitionable interconnect on the shared DES kernel.  Cross-node
physical references make reference maintenance during migration a
distributed protocol: presumed-abort two-phase commit with WAL-logged
coordinator and participant state, crash-consistent at every message
boundary.  See DIST.md for the sharding model, the protocol walkthrough
and the failure matrix.
"""

from .bench import format_dist, run_dist_experiment
from .chaos import (ChaosReport, ChaosResult, arm_fault_plan,
                    default_scenarios, run_dist_chaos)
from .cluster import DistCluster
from .detector import FailureDetector
from .net import Interconnect
from .node import DistNode, data_partition, hub_partition
from .reorg import DistReorganizer, resume_reorg, start_reorg
from .rpc import RpcEndpoint
from .twopc import (COORDINATOR_STAGES, PARTICIPANT_STAGES,
                    TwoPhaseManager)
from .verify import (cluster_deep_verify, cluster_digests,
                     cluster_graph_signature, node_state_digest,
                     reconcile_remote_ert, unresolved_in_doubt)

__all__ = [
    "COORDINATOR_STAGES",
    "ChaosReport",
    "ChaosResult",
    "DistCluster",
    "DistNode",
    "DistReorganizer",
    "FailureDetector",
    "Interconnect",
    "PARTICIPANT_STAGES",
    "RpcEndpoint",
    "TwoPhaseManager",
    "arm_fault_plan",
    "cluster_deep_verify",
    "cluster_digests",
    "cluster_graph_signature",
    "data_partition",
    "default_scenarios",
    "format_dist",
    "hub_partition",
    "node_state_digest",
    "reconcile_remote_ert",
    "resume_reorg",
    "run_dist_chaos",
    "run_dist_experiment",
    "start_reorg",
    "unresolved_in_doubt",
]
