"""Request/response RPC over the interconnect, with deadlines + retries.

A call is a simulation generator: it sends a request frame, parks on a
fresh :class:`~repro.sim.Event` with a per-attempt deadline, and on
:class:`~repro.sim.WaitTimeout` retries under the caller's
:class:`~repro.config.RetryPolicy` until the budget is exhausted —
then raises the typed :class:`~repro.errors.NodeUnreachableError` so the
serving layer and the distributed reorganizer can tell "peer is gone"
from a local failure.

Late replies are harmless by construction: each attempt uses a fresh
``msg_id``, a timed-out attempt's id is popped from the pending table
before the retry, and a response whose id resolves to nothing is
dropped on the floor.  Handlers run in their own spawned process (named
``n{id}/...`` so a node crash's ``kill_matching`` reaps them) and may
be plain functions or simulation generators.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..config import RetryPolicy
from ..errors import NodeUnreachableError
from ..sim import Wait, WaitTimeout, Delay


class RpcStats:
    def __init__(self) -> None:
        self.calls = 0
        self.retries = 0
        self.timeouts = 0
        self.unreachable = 0
        self.served = 0
        self.stale_replies = 0
        self.casts = 0


class RpcEndpoint:
    """One node's RPC stack: client-side calls plus a method registry."""

    def __init__(self, net, node_id: int, sim):
        self.net = net
        self.node_id = node_id
        self.sim = sim
        self.stats = RpcStats()
        self._handlers: Dict[str, Callable] = {}
        self._casts: Dict[str, Callable] = {}
        self._pending: Dict[str, Any] = {}
        self._seq = 0
        self._closed = False
        net.register(node_id, self._on_message)

    # -- server side ------------------------------------------------------------

    def serve(self, method: str, handler: Callable) -> None:
        """Register a request handler: ``handler(payload) -> reply`` or a
        generator yielding simulation commands and returning the reply."""
        self._handlers[method] = handler

    def serve_cast(self, method: str, handler: Callable) -> None:
        """Register a one-way message handler (no reply frame) —
        ``handler(src, payload)``, called synchronously at delivery."""
        self._casts[method] = handler

    def close(self) -> None:
        """Detach from the fabric (node crash): stop receiving anything."""
        self._closed = True
        self.net.deregister(self.node_id)

    def _on_message(self, msg: dict) -> None:
        if self._closed:
            return
        kind = msg["kind"]
        if kind == "req":
            self.sim.spawn(
                self._serve_one(msg),
                name=f"n{self.node_id}/rpc-{msg['method']}-{msg['id']}")
        elif kind == "cast":
            handler = self._casts.get(msg["method"])
            if handler is not None:
                handler(msg["src"], msg["payload"])
        else:  # response
            event = self._pending.pop(msg["id"], None)
            if event is None:
                self.stats.stale_replies += 1
            elif not event.fired:
                event.succeed(msg["payload"])

    def _serve_one(self, msg: dict) -> Generator[Any, Any, None]:
        handler = self._handlers.get(msg["method"])
        if handler is None:
            return
        result = handler(msg["payload"])
        if hasattr(result, "__next__"):
            result = yield from result
        self.stats.served += 1
        self.net.send(self.node_id, msg["src"],
                      {"kind": "resp", "id": msg["id"],
                       "src": self.node_id, "payload": result})
        # A non-generator handler still needs this method to be one.
        return

    # -- client side ------------------------------------------------------------

    def cast(self, dst: int, method: str, payload: dict) -> None:
        """One-way message (heartbeats): no reply, no retry, no deadline."""
        self.stats.casts += 1
        self.net.send(self.node_id, dst,
                      {"kind": "cast", "src": self.node_id,
                       "method": method, "payload": payload})

    def call(self, dst: int, method: str, payload: dict,
             deadline_ms: float, policy: RetryPolicy,
             rng=None) -> Generator[Any, Any, dict]:
        """Call ``method`` on node ``dst``; returns the reply payload.

        Each attempt gets the full ``deadline_ms``; between attempts the
        policy's (seeded) backoff applies.  Raises
        :class:`NodeUnreachableError` once the policy is exhausted.
        """
        self.stats.calls += 1
        attempt = 0
        while True:
            self._seq += 1
            msg_id = f"{self.node_id}:{self._seq}"
            event = self.sim.event(name=f"rpc:{msg_id}")
            self._pending[msg_id] = event
            self.net.send(self.node_id, dst,
                          {"kind": "req", "id": msg_id,
                           "src": self.node_id, "method": method,
                           "payload": payload})
            try:
                reply = yield Wait(event, timeout=deadline_ms)
                return reply
            except WaitTimeout:
                self._pending.pop(msg_id, None)
                self.stats.timeouts += 1
                if policy.exhausted(attempt):
                    self.stats.unreachable += 1
                    raise NodeUnreachableError(
                        f"rpc {method} to node {dst} timed out "
                        f"{attempt + 1} times (deadline {deadline_ms}ms)",
                        node=dst)
                self.stats.retries += 1
                delay = policy.delay_ms(attempt, rng)
                if delay > 0:
                    yield Delay(delay)
                attempt += 1
