"""Cluster-wide integrity: digests, oracles and post-crash ERT repair.

Three pillars back the chaos gates:

* :func:`node_state_digest` — a canonical fingerprint of one node's
  durable-equivalent state (every live object's address, payload and
  reference slots, plus the owned partitions' ERT contents).  Page LSNs
  and the log itself are deliberately excluded: a crashed-and-recovered
  node legitimately differs there, while the *state* must land
  byte-identical to an unkilled twin.
* :func:`cluster_graph_signature` — the transparency oracle across
  nodes: payload-level structure of the whole object graph, insensitive
  to physical addresses, so reorganization (local or cross-node) must
  leave it unchanged.
* :func:`unresolved_in_doubt` — the zero-orphan gate: any participant
  branch that logged ``TPC_PREPARE`` must eventually log ``END``
  (settled commit or abort); a prepared tid with no END is an orphaned
  in-doubt patch.

:func:`reconcile_remote_ert` repairs the one piece of reorganization
state the WAL cannot replay locally: ERT entries for *remote* parents.
The remote REF_UPDATEs live in other nodes' logs, so after a restart the
owner's ERT still maps migrated-away addresses to those parents.  Every
committed migration leaves at least one local REF_UPDATE (the circular
intra-partition chain guarantees a local parent), so the old→new pairs
are recoverable from the local log alone, and the remap is idempotent.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from ..core.checkpointing import committed_migrations_from_log
from ..verify import deep_verify
from ..wal import AbortRecord, EndRecord, TpcPrepareRecord


def node_state_digest(engine) -> str:
    """Canonical hex fingerprint of one engine's live state."""
    hasher = hashlib.sha256()
    store = engine.store
    for oid in sorted(store.all_live_oids()):
        image = store.read_object(oid)
        hasher.update(b"obj")
        hasher.update(str(oid.pack()).encode())
        hasher.update(image.payload)
        for slot, child in image.refs():
            hasher.update(f"r{slot}:{child.pack()}".encode())
    for pid in sorted(store.partition_ids()):
        hasher.update(f"ert{pid}".encode())
        entries = sorted((child.pack(), parent.pack())
                         for child, parent in engine.ert_for(pid).entries())
        for child, parent in entries:
            hasher.update(f"{child}->{parent}".encode())
    return hasher.hexdigest()


def cluster_digests(cluster) -> Dict[int, str]:
    return {node.node_id: node_state_digest(node.engine)
            for node in cluster.nodes}


def cluster_graph_signature(cluster) -> Tuple:
    """Payload-level structure of the global graph — the transparency
    oracle: identical before and after any amount of reorganization."""
    payloads = {}
    for node in cluster.nodes:
        store = node.engine.store
        for oid in store.all_live_oids():
            payloads[oid] = store.read_object(oid).payload
    entries = []
    for node in cluster.nodes:
        store = node.engine.store
        for oid in store.all_live_oids():
            children = sorted(payloads.get(child, b"<dangling>")
                              for child in store.children_of(oid))
            entries.append((payloads[oid], tuple(children)))
    return tuple(sorted(entries))


def unresolved_in_doubt(engine) -> Dict[int, str]:
    """Prepared-but-never-settled participant branches: tid -> gid.

    A clean shutdown state has none — every ``TPC_PREPARE`` is followed
    (eventually) by a terminal record: ``END`` (committed, or settled by
    in-doubt resolution) or ``ABORT`` (a live rollback, which closes
    with the abort record itself).  Non-empty means orphaned in-doubt
    patches.
    """
    prepared: Dict[int, str] = {}
    ended = set()
    for record in engine.log.records():
        if isinstance(record, TpcPrepareRecord):
            prepared[record.tid] = record.gid
        elif isinstance(record, (EndRecord, AbortRecord)):
            ended.add(record.tid)
    return {tid: gid for tid, gid in sorted(prepared.items())
            if tid not in ended}


def cluster_deep_verify(cluster) -> List[str]:
    """Per-node deep verification plus the cluster-level gates; returns
    every problem found (empty = clean)."""
    problems: List[str] = []
    for node in cluster.nodes:
        report = deep_verify(node.engine)
        for problem in report.problems():
            problems.append(f"node {node.node_id}: {problem}")
        for tid, gid in unresolved_in_doubt(node.engine).items():
            problems.append(f"node {node.node_id}: orphaned in-doubt "
                            f"branch tid={tid} gid={gid}")
        if node.scrubber is not None and not node.scrubber.stats.clean:
            problems.append(
                f"node {node.node_id}: scrubber found "
                f"{node.scrubber.stats.corrupt_pages_found} corrupt pages")
    return problems


def reconcile_remote_ert(engine, partition_id: int) -> int:
    """Re-point stale remote-parent ERT entries after a restart.

    For every migration the durable log proves committed, any surviving
    ERT entry still keyed by the old address whose parent partition is
    *not* local must belong to a remote parent patched via 2PC on the
    parent's node; move it to the new address.  Local parents never show
    up here — their REF_UPDATEs replay through the log analyzer during
    recovery.  Returns the number of entries remapped.
    """
    pairs = committed_migrations_from_log(engine, partition_id, 0)
    ert = engine.ert_for(partition_id)
    fixed = 0
    # Commit order, not address order: a freed source slot can be reused
    # as a later migration's target, and replaying out of order would
    # remap the same entry twice through the aliased address.
    for old, new in pairs.items():
        for parent in sorted(ert.parents_of(old)):
            if engine.store.has_partition(parent.partition):
                continue  # local anomaly: leave for verify_integrity
            ert.remove(old, parent)
            ert.add(new, parent)
            fixed += 1
    return fixed
