"""Latency-modeled interconnect between simulated nodes.

One :class:`Interconnect` instance connects every node of a
:class:`~repro.dist.cluster.DistCluster` over the shared DES kernel.
Each directed link gets its own seeded RNG, so message delays (and the
reordering they induce — two messages on the same link may overtake each
other within the jitter window) are deterministic per ``(seed, src,
dst)`` and independent of unrelated traffic.

Fault controls are explicit state toggles driven by the chaos harness:

* :meth:`partition_link` / :meth:`heal_link` — full bidirectional cut.
  Checked at *send and delivery* time: packets in flight when the cable
  is pulled are lost, exactly like a real cut.
* :meth:`set_loss` — uniform message drop probability (seeded draw per
  message while active).
* :meth:`set_down` — a crashed node neither sends nor receives; late
  responses addressed to it land on a deregistered handler and vanish,
  which is what makes stale-reply handling in :mod:`repro.dist.rpc`
  load-bearing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Set

Handler = Callable[[dict], None]


@dataclass
class NetStats:
    sent: int = 0
    delivered: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0
    dropped_down: int = 0
    #: messages per (src, dst) directed link
    per_link: Dict[tuple, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return (self.dropped_partition + self.dropped_loss
                + self.dropped_down)


class Interconnect:
    """Deterministic lossy/laggy message fabric between nodes."""

    def __init__(self, sim, seed: int = 0, delay_min_ms: float = 0.5,
                 delay_max_ms: float = 3.0):
        if delay_min_ms < 0 or delay_max_ms < delay_min_ms:
            raise ValueError("need 0 <= delay_min_ms <= delay_max_ms")
        self.sim = sim
        self.seed = seed
        self.delay_min_ms = delay_min_ms
        self.delay_max_ms = delay_max_ms
        self.stats = NetStats()
        self._handlers: Dict[int, Handler] = {}
        self._down: Set[int] = set()
        self._cut: Set[FrozenSet[int]] = set()
        self._loss_rate = 0.0
        self._rngs: Dict[tuple, random.Random] = {}

    # -- wiring -----------------------------------------------------------------

    def register(self, node_id: int, handler: Handler) -> None:
        """(Re-)attach a node's message handler; a restart overwrites the
        dead endpoint's registration."""
        self._handlers[node_id] = handler

    def deregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    def set_down(self, node_id: int, down: bool) -> None:
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    # -- fault toggles ----------------------------------------------------------

    def partition_link(self, a: int, b: int) -> None:
        self._cut.add(frozenset((a, b)))

    def heal_link(self, a: int, b: int) -> None:
        self._cut.discard(frozenset((a, b)))

    def link_cut(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._cut

    def set_loss(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        self._loss_rate = rate

    # -- the data path ----------------------------------------------------------

    def _rng(self, src: int, dst: int) -> random.Random:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            rng = random.Random(f"net/{self.seed}/{src}->{dst}")
            self._rngs[key] = rng
        return rng

    def send(self, src: int, dst: int, msg: dict) -> None:
        """Fire-and-forget: schedules delivery after the link's seeded
        delay, or silently loses the message under an active fault."""
        self.stats.sent += 1
        key = (src, dst)
        self.stats.per_link[key] = self.stats.per_link.get(key, 0) + 1
        if src in self._down:
            self.stats.dropped_down += 1
            return
        rng = self._rng(src, dst)
        delay = rng.uniform(self.delay_min_ms, self.delay_max_ms)
        if self.link_cut(src, dst):
            self.stats.dropped_partition += 1
            return
        if self._loss_rate > 0.0 and rng.random() < self._loss_rate:
            self.stats.dropped_loss += 1
            return
        self.sim.call_later(delay, lambda: self._deliver(src, dst, msg),
                            label=f"net/{src}->{dst}")

    def _deliver(self, src: int, dst: int, msg: dict) -> None:
        if self.link_cut(src, dst):
            # The partition started while the message was in flight.
            self.stats.dropped_partition += 1
            return
        handler = self._handlers.get(dst)
        if dst in self._down or handler is None:
            self.stats.dropped_down += 1
            return
        self.stats.delivered += 1
        handler(msg)

    def __repr__(self) -> str:
        return (f"<Interconnect sent={self.stats.sent} "
                f"delivered={self.stats.delivered} "
                f"dropped={self.stats.dropped}>")
