"""The simulated multi-node cluster: sharding, directory, lifecycle.

Partitions are sharded across N nodes over one shared DES kernel; node
``i`` owns data partition ``10*i + 1`` (the one its reorganizer works
on) and hub partition ``10*i + 2``.  The directory is the trivial
``partition // 10`` map — partition placement is static; what moves are
objects *within* their partition.

Cross-node references follow one topology rule (documented in DIST.md):
they originate only in hub partitions — which are never reorganized —
and point into other nodes' data partitions.  So a migrating object's
remote parents are never themselves mid-migration, and a migrated
object never has remote children whose owner-side ERT entries the
migration would strand.  The scheduling constraint, not the protocol,
carries that guarantee.

Every data-partition object sits on a circular intra-partition chain,
so each migration patches at least one *local* parent — the invariant
:func:`repro.core.checkpointing.committed_migrations_from_log` (and
with it crash-resume and remote-ERT reconciliation) relies on.

Node crashes come in two shapes:

* :meth:`crash_node` — from outside the node (a chaos timer): captures
  the crash image, detaches the node from the fabric, and kills its
  processes synchronously.
* :meth:`crash_node_in_process` — from *inside* one of the node's own
  processes (a 2PC fault hook): the currently-running generator cannot
  be ``throw()``-n into, so the image is captured, the sibling kill is
  scheduled via ``call_soon``, and :class:`~repro.sim.ProcessKilled` is
  raised in-line to take down the calling process itself.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..config import DistConfig, ReorgConfig, SystemConfig
from ..engine import StorageEngine
from ..sim import ProcessKilled, Simulator
from ..storage.objects import ObjectImage
from ..storage.oid import Oid
from ..workload.graphgen import random_bytes
from .net import Interconnect
from .node import DistNode, data_partition, hub_partition
from .reorg import resume_reorg, start_reorg
from .verify import reconcile_remote_ert


class DistCluster:
    """N engines, one interconnect, one simulated clock."""

    def __init__(self, config: Optional[DistConfig] = None,
                 system: Optional[SystemConfig] = None,
                 sim: Optional[Simulator] = None):
        self.config = config or DistConfig()
        self.sim = sim or Simulator()
        self._system = system or SystemConfig()
        self.net = Interconnect(self.sim, seed=self.config.seed,
                                delay_min_ms=self.config.link_delay_min_ms,
                                delay_max_ms=self.config.link_delay_max_ms)
        self.nodes: List[DistNode] = []
        self._reorg_config: Optional[ReorgConfig] = None
        #: Chaos hook installed on every node's 2PC manager (re-armed
        #: after restarts): ``hook(stage, gid, node_id)``.
        self.twopc_fault_hook = None

    # -- directory ---------------------------------------------------------------

    def owner(self, partition_id: int) -> int:
        return partition_id // 10

    def node_for(self, partition_id: int) -> DistNode:
        return self.nodes[self.owner(partition_id)]

    def exists(self, oid: Oid) -> bool:
        """Directory-backed existence check — the omniscient oracle the
        per-node integrity verifier uses for cross-node references."""
        return self.node_for(oid.partition).engine.store.exists(oid)

    def remote_ert_expected(self, node_id: int, partition_id: int
                            ) -> List[Tuple[Oid, Oid]]:
        """Every (child, parent) pair where the child lives in
        ``partition_id`` and the parent lives on another node — what the
        owner's ERT should contain beyond what its local scan can see."""
        pairs: List[Tuple[Oid, Oid]] = []
        for node in self.nodes:
            if node.node_id == node_id or node.down:
                continue
            store = node.engine.store
            for parent in store.all_live_oids():
                for child in store.children_of(parent):
                    if child.partition == partition_id:
                        pairs.append((child, parent))
        return pairs

    # -- build -------------------------------------------------------------------

    def build(self) -> "DistCluster":
        """Create the engines, bulk-load the sharded graph, checkpoint
        each node, and start the distributed runtime."""
        cfg = self.config
        rng = random.Random(f"dist/{cfg.seed}")
        for i in range(cfg.node_count):
            engine = StorageEngine(replace(self._system), sim=self.sim)
            engine.create_partition(data_partition(i))
            engine.create_partition(hub_partition(i))
            self.nodes.append(DistNode(self, i, engine))

        per_node: Dict[int, List[Oid]] = {}
        for node in self.nodes:
            store = node.engine.store
            oids = []
            for _ in range(cfg.objects_per_partition):
                image = ObjectImage.new(
                    2, payload=random_bytes(rng, cfg.payload_bytes))
                oids.append(store.allocate_object(node.data_partition,
                                                  image))
            # Circular chain: every object has exactly one local parent.
            for j, oid in enumerate(oids):
                store.set_ref(oid, 0, oids[(j + 1) % len(oids)])
            per_node[node.node_id] = oids

        for node in self.nodes:
            oids = per_node[node.node_id]
            count = len(oids)
            remote_k = int(round(cfg.remote_ref_fraction * count))
            if cfg.node_count > 1 and remote_k:
                step = max(1, count // remote_k)
                targets = oids[::step][:remote_k]
                hub_owner = self.nodes[(node.node_id + 1) % cfg.node_count]
                self._add_hub_parents(hub_owner, node, targets, rng)
            local_k = int(round(cfg.local_hub_fraction * count))
            if local_k:
                self._add_hub_parents(node, node, oids[-local_k:], rng)

        for node in self.nodes:
            node.engine.unlogged_base = True
            node.engine.take_checkpoint()
            node.start()
            if self.twopc_fault_hook is not None:
                node.twopc.fault_hook = self.twopc_fault_hook
        return self

    def _add_hub_parents(self, hub_node: DistNode, child_node: DistNode,
                         targets: List[Oid], rng: random.Random) -> None:
        cfg = self.config
        store = hub_node.engine.store
        ert = child_node.engine.ert_for(child_node.data_partition)
        for start in range(0, len(targets), cfg.hub_fanout):
            group = targets[start:start + cfg.hub_fanout]
            image = ObjectImage.new(
                cfg.hub_fanout,
                payload=random_bytes(rng, cfg.payload_bytes))
            hub_oid = store.allocate_object(hub_node.hub_partition, image)
            for slot, child in enumerate(group):
                store.set_ref(hub_oid, slot, child)
                ert.add(child, hub_oid)

    # -- reorganization ----------------------------------------------------------

    def default_reorg_config(self) -> ReorgConfig:
        # checkpoint_every == batch size: a durable progress record per
        # batch, which is what makes crash-resume byte-exact.
        return ReorgConfig(
            migration_batch_size=self.config.migration_batch_size,
            checkpoint_every=self.config.migration_batch_size)

    def reorganize_all(self, reorg_config: Optional[ReorgConfig] = None
                       ) -> None:
        self._reorg_config = reorg_config or self.default_reorg_config()
        for node in self.nodes:
            start_reorg(node, self._reorg_config.copy())

    @property
    def reorgs_done(self) -> bool:
        return all(node.reorg_done for node in self.nodes if not node.down)

    @property
    def all_reorgs_done(self) -> bool:
        return all(node.reorg_done for node in self.nodes)

    def _quiesced(self) -> bool:
        """Reorgs finished, every node up (scheduled restarts included),
        and no participant branch still awaiting a 2PC decision — a lost
        decision push resolves through the pull path, which needs sim
        time beyond the last migration."""
        return (self.all_reorgs_done
                and not any(n.down for n in self.nodes)
                and not any(n.twopc.prepared or n.twopc.settling
                            for n in self.nodes))

    def run_until_reorgs_done(self, horizon_ms: Optional[float] = None,
                              step_ms: float = 200.0) -> bool:
        """Advance the shared clock until the cluster quiesces or the
        horizon passes.  Heartbeats never drain the queue, so this steps
        in bounded increments rather than running to empty."""
        horizon = horizon_ms if horizon_ms is not None \
            else self.config.horizon_ms
        while self.sim.now < horizon:
            if self._quiesced():
                return True
            self.sim.run(until=min(self.sim.now + step_ms, horizon))
        return self._quiesced()

    def run(self, for_ms: float) -> None:
        self.sim.run(until=self.sim.now + for_ms)

    # -- crash / restart ---------------------------------------------------------

    def _begin_crash(self, node: DistNode) -> None:
        node.crash_image = node.engine.crash_image()
        node.down = True
        node.crash_count += 1
        node.rpc.close()
        self.net.set_down(node.node_id, True)

    def crash_node(self, node_id: int) -> None:
        """Fail-stop a node from outside it (chaos timer context)."""
        node = self.nodes[node_id]
        if node.down:
            return
        self._begin_crash(node)
        self.sim.kill_matching(f"n{node_id}/")

    def crash_node_in_process(self, node_id: int) -> None:
        """Fail-stop a node from within one of its own processes; raises
        :class:`ProcessKilled` to take the caller down with it."""
        node = self.nodes[node_id]
        if node.down:
            raise ProcessKilled(f"node {node_id} is already down")
        self._begin_crash(node)
        self.sim.call_soon(
            lambda: self.sim.kill_matching(f"n{node_id}/"),
            label=f"crash-n{node_id}")
        raise ProcessKilled(f"node {node_id} crashed")

    def restart_node(self, node_id: int) -> None:
        """Recover a crashed node from its crash image: ARIES restart,
        in-doubt adoption, remote-ERT reconciliation, reorg resume."""
        node = self.nodes[node_id]
        if not node.down or node.crash_image is None:
            raise RuntimeError(f"node {node_id} is not down")
        engine = StorageEngine.recover(node.crash_image, sim=self.sim)
        node.engine = engine
        node.down = False
        self.net.set_down(node_id, False)
        node.start()
        if self.twopc_fault_hook is not None:
            node.twopc.fault_hook = self.twopc_fault_hook
        node.twopc.recover_in_doubt()
        reconcile_remote_ert(engine, node.data_partition)
        if self._reorg_config is not None and not node.reorg_done:
            if not resume_reorg(node, self._reorg_config.copy()):
                # Crashed before the post-discovery checkpoint became
                # durable: nothing committed, start the identical
                # deterministic run afresh.
                start_reorg(node, self._reorg_config.copy())
