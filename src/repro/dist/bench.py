"""Cross-node reorganization cost: the degradation curve.

How much slower does reorganizing a partition get when a growing share
of its objects have parents on *other* nodes?  Each migration batch with
at least one remote parent pays a 2PC round (two RPC round-trips plus a
participant force-log) on top of the local work, so completion time
degrades with the remote-reference fraction.  The single-node
configuration — same object count, no interconnect in the commit path —
is the baseline the curve is normalized against.

All numbers are simulated time, deterministic given the seed; kernel and
network counters ride along for regression tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..config import DistConfig
from .cluster import DistCluster
from .verify import cluster_deep_verify

#: remote_ref_fraction sweep per bench scale.  Remote hub parents are
#: strided across the partition, so once every migration batch contains
#: one the per-batch 2PC round count — and with it the duration —
#: saturates; the low-fraction points are where the curve climbs.
DIST_SCALES: Dict[str, dict] = {
    "paper": {"objects_per_partition": 96,
              "fractions": (0.0, 0.05, 0.1, 0.25, 0.5, 1.0)},
    "standard": {"objects_per_partition": 48,
                 "fractions": (0.0, 0.1, 0.25, 0.5, 1.0)},
    "quick": {"objects_per_partition": 24,
              "fractions": (0.0, 0.1, 0.25, 0.5, 1.0)},
}


@dataclass
class DistBenchRow:
    label: str
    completion_ms: float
    reorg_ms_mean: float
    tpc_rounds: int
    remote_patches: int
    net_sent: int
    net_delivered: int
    paused_ms: float

    def summary(self) -> dict:
        return {
            "completion_ms": self.completion_ms,
            "reorg_ms_mean": self.reorg_ms_mean,
            "tpc_rounds": self.tpc_rounds,
            "remote_patches": self.remote_patches,
            "paused_ms": self.paused_ms,
        }

    def counters(self) -> dict:
        return {"net_sent": self.net_sent,
                "net_delivered": self.net_delivered}


def _run_one(config: DistConfig, label: str) -> DistBenchRow:
    cluster = DistCluster(config).build()
    cluster.reorganize_all()
    if not cluster.run_until_reorgs_done():
        raise RuntimeError(f"dist bench run '{label}' did not complete")
    problems = cluster_deep_verify(cluster)
    if problems:
        raise RuntimeError(f"dist bench run '{label}' not clean: "
                           f"{problems[:3]}")
    stats = [n.reorg_stats for n in cluster.nodes]
    reorgs = [n.reorg for n in cluster.nodes]
    return DistBenchRow(
        label=label,
        completion_ms=cluster.sim.now,
        reorg_ms_mean=sum(s.duration_ms for s in stats) / len(stats),
        tpc_rounds=sum(r.tpc_rounds for r in reorgs),
        remote_patches=sum(r.remote_patches for r in reorgs),
        net_sent=cluster.net.stats.sent,
        net_delivered=cluster.net.stats.delivered,
        paused_ms=sum(r.paused_ms for r in reorgs),
    )


def run_dist_experiment(scale: str = "quick",
                        node_count: int = 3,
                        progress: Optional[Callable[[str], None]] = None
                        ) -> Dict[str, DistBenchRow]:
    """Single-node baseline plus the remote-fraction sweep."""
    params = DIST_SCALES[scale]
    objects = params["objects_per_partition"]
    rows: Dict[str, DistBenchRow] = {}

    single = DistConfig(node_count=1, objects_per_partition=objects)
    rows["single-node"] = _run_one(single, "single-node")
    if progress is not None:
        progress(f"single-node done "
                 f"({rows['single-node'].reorg_ms_mean:.0f} ms)")

    for fraction in params["fractions"]:
        config = DistConfig(node_count=node_count,
                            objects_per_partition=objects,
                            remote_ref_fraction=fraction)
        label = f"remote={fraction:g}"
        rows[label] = _run_one(config, label)
        if progress is not None:
            progress(f"{label} done ({rows[label].reorg_ms_mean:.0f} ms, "
                     f"{rows[label].tpc_rounds} 2PC rounds)")
    return rows


def format_dist(rows: Dict[str, DistBenchRow]) -> str:
    base = rows["single-node"].reorg_ms_mean
    lines = [
        "Cross-node reorganization degradation "
        "(per-partition reorg time vs single-node)",
        "",
        f"{'config':>14} {'reorg ms':>9} {'degrade':>8} {'2PC':>5} "
        f"{'patches':>8} {'msgs':>7} {'paused ms':>10}",
    ]
    for label, row in rows.items():
        degrade = row.reorg_ms_mean / base if base else float("inf")
        lines.append(
            f"{label:>14} {row.reorg_ms_mean:>9.0f} {degrade:>7.2f}x "
            f"{row.tpc_rounds:>5} {row.remote_patches:>8} "
            f"{row.net_sent:>7} {row.paused_ms:>10.0f}")
    return "\n".join(lines)


def dist_payload(rows: Dict[str, DistBenchRow]) -> dict:
    return {
        "wall_clock_s": 0.0,
        "metrics": {label: row.summary() for label, row in rows.items()},
        "counters": {label: row.counters() for label, row in rows.items()},
    }
