"""Heartbeat failure detection and graceful degradation.

Every node beats to every peer over the interconnect at a fixed cadence;
a peer not heard from within ``suspect_after_ms`` is *suspected* down.
The detector is deliberately weak — partitions and crashes are
indistinguishable, and a suspicion can be wrong — so nothing here is
used for safety.  Safety lives in the WAL and the presumed-abort 2PC
protocol; the detector only drives *liveness* policy:

* the distributed reorganizer pauses (rather than spinning RPC retries
  into a dead peer) and resumes when the peer is heard from again;
* the serving layer sheds remote reads toward suspected nodes fast
  instead of eating the full RPC deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable

from ..sim import Delay


@dataclass
class DetectorStats:
    beats_sent: int = 0
    beats_heard: int = 0
    suspicions: int = 0
    await_up_waits: int = 0


class FailureDetector:
    """Per-node heartbeat emitter + peer liveness table."""

    HEARTBEAT = "hb"

    def __init__(self, rpc, node_id: int, peers: Iterable[int], sim,
                 heartbeat_ms: float = 25.0, suspect_after_ms: float = 80.0):
        if heartbeat_ms <= 0 or suspect_after_ms <= heartbeat_ms:
            raise ValueError("need 0 < heartbeat_ms < suspect_after_ms")
        self.rpc = rpc
        self.node_id = node_id
        self.peers = sorted(set(peers) - {node_id})
        self.sim = sim
        self.heartbeat_ms = heartbeat_ms
        self.suspect_after_ms = suspect_after_ms
        self.stats = DetectorStats()
        # Start optimistic: a peer is considered alive until a full
        # suspicion window passes without a beat, so a cluster does not
        # boot into all-suspected before the first heartbeat lands.
        self._last_heard: Dict[int, float] = {p: sim.now for p in self.peers}
        self._suspected: Dict[int, bool] = {p: False for p in self.peers}
        rpc.serve_cast(self.HEARTBEAT, self._on_heartbeat)

    def start(self) -> None:
        self.sim.spawn(self._beat(), name=f"n{self.node_id}/detector")

    def _beat(self) -> Generator[Any, Any, None]:
        while True:
            for peer in self.peers:
                self.stats.beats_sent += 1
                self.rpc.cast(peer, self.HEARTBEAT, {})
            yield Delay(self.heartbeat_ms)

    def _on_heartbeat(self, src: int, _payload: dict) -> None:
        self.stats.beats_heard += 1
        self._last_heard[src] = self.sim.now
        self._suspected[src] = False

    def is_up(self, peer: int) -> bool:
        last = self._last_heard.get(peer)
        if last is None:
            return False
        up = (self.sim.now - last) <= self.suspect_after_ms
        if not up and not self._suspected.get(peer, False):
            self._suspected[peer] = True
            self.stats.suspicions += 1
        return up

    def await_up(self, peer: int) -> Generator[Any, Any, None]:
        """Park until ``peer`` is heard from again (graceful degradation:
        the caller pauses instead of hammering a dead node)."""
        if not self.is_up(peer):
            self.stats.await_up_waits += 1
        while not self.is_up(peer):
            yield Delay(self.heartbeat_ms)
