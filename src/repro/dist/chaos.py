"""Seeded chaos sweep for the distributed store (``repro chaos --dist``).

Every scenario runs a full cluster reorganization with exactly one fault
armed — a node crash at a specific 2PC protocol boundary, a timed node
kill, a link partition window, or a message-loss window — and gates the
outcome on four invariants:

* **completed** — every node finished reorganizing (crashed nodes after
  their restart) before the horizon;
* **no problems** — per-node deep verification is clean, the per-node
  scrubbers found nothing, and no participant branch is left with a
  durable ``TPC_PREPARE`` and no ``END`` (zero orphaned in-doubt
  patches);
* **signature** — the payload-level graph signature equals the
  pre-reorganization one (transparency across nodes);
* **twin** — every node's final state digest is byte-identical to the
  same node in an unkilled twin run of the identical configuration.

The 2PC stage crashes use the managers' ``fault_hook`` to fail-stop the
node *executing* the stage, between that exact pair of protocol steps —
coordinator and participant crashes between every message pair of the
protocol.  Each stage is hit twice (first and a later occurrence), so
both the cold path and a mid-reorg state get exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..config import DistConfig
from .cluster import DistCluster
from .twopc import COORDINATOR_STAGES, PARTICIPANT_STAGES
from .verify import (cluster_deep_verify, cluster_digests,
                     cluster_graph_signature)

#: Default delay between a fault-hook crash and the scheduled restart.
RESTART_DELAY_MS = 120.0


@dataclass
class ChaosResult:
    scenario: str
    fired: bool
    completed: bool
    signature_ok: bool
    twin_identical: bool
    problems: List[str] = field(default_factory=list)
    crashes: int = 0
    sim_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return (self.fired and self.completed and not self.problems
                and self.signature_ok and self.twin_identical)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "fired": self.fired,
            "completed": self.completed,
            "signature_ok": self.signature_ok,
            "twin_identical": self.twin_identical,
            "problems": list(self.problems),
            "crashes": self.crashes,
            "sim_ms": self.sim_ms,
        }


@dataclass
class ChaosReport:
    results: List[ChaosResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.ok)

    def failures(self) -> List[ChaosResult]:
        return [r for r in self.results if not r.ok]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "scenarios": len(self.results),
            "passed": self.passed,
            "results": [r.to_dict() for r in self.results],
        }


class _StageCrash:
    """Fault hook: fail-stop the node executing ``stage`` the Nth time
    that stage is reached anywhere in the cluster."""

    def __init__(self, cluster: DistCluster, stage: str, occurrence: int,
                 restart_delay_ms: float = RESTART_DELAY_MS):
        self.cluster = cluster
        self.stage = stage
        self.occurrence = occurrence
        self.restart_delay_ms = restart_delay_ms
        self.seen = 0
        self.fired = False

    def __call__(self, stage: str, gid: str, node_id: int) -> None:
        if stage != self.stage or self.fired:
            return
        self.seen += 1
        if self.seen != self.occurrence:
            return
        self.fired = True
        sim = self.cluster.sim
        sim.call_later(self.restart_delay_ms,
                       lambda: self.cluster.restart_node(node_id),
                       label=f"chaos/restart-n{node_id}")
        self.cluster.crash_node_in_process(node_id)  # raises ProcessKilled


def _arm_stage_crash(stage: str, occurrence: int
                     ) -> Callable[[DistCluster], _StageCrash]:
    def arm(cluster: DistCluster) -> _StageCrash:
        hook = _StageCrash(cluster, stage, occurrence)
        cluster.twopc_fault_hook = hook
        for node in cluster.nodes:
            node.twopc.fault_hook = hook
        return hook
    return arm


def _arm_node_kill(at_ms: float, node_id: int, down_ms: float
                   ) -> Callable[[DistCluster], None]:
    def arm(cluster: DistCluster) -> None:
        cluster.sim.call_later(
            at_ms, lambda: cluster.crash_node(node_id),
            label=f"chaos/kill-n{node_id}")
        cluster.sim.call_later(
            at_ms + down_ms, lambda: cluster.restart_node(node_id),
            label=f"chaos/restart-n{node_id}")
    return arm


def _arm_link_partition(a: int, b: int, at_ms: float, heal_ms: float
                        ) -> Callable[[DistCluster], None]:
    def arm(cluster: DistCluster) -> None:
        cluster.sim.call_later(
            at_ms, lambda: cluster.net.partition_link(a, b),
            label=f"chaos/cut-{a}-{b}")
        cluster.sim.call_later(
            heal_ms, lambda: cluster.net.heal_link(a, b),
            label=f"chaos/heal-{a}-{b}")
    return arm


def _arm_message_loss(rate: float, at_ms: float, until_ms: float
                      ) -> Callable[[DistCluster], None]:
    def arm(cluster: DistCluster) -> None:
        cluster.sim.call_later(
            at_ms, lambda: cluster.net.set_loss(rate),
            label="chaos/loss-on")
        cluster.sim.call_later(
            until_ms, lambda: cluster.net.set_loss(0.0),
            label="chaos/loss-off")
    return arm


def arm_fault_plan(cluster: DistCluster, plan) -> None:
    """Install a :class:`repro.faults.FaultPlan`'s distributed faults
    (``kill_node``, ``partition_link``, ``message_drop_rate``) onto a
    built cluster; the plan's single-node fields are ignored here."""
    if plan.kill_node is not None:
        node_id, at_ms, down_ms = plan.kill_node
        _arm_node_kill(at_ms, node_id, down_ms)(cluster)
    if plan.partition_link is not None:
        a, b, cut_ms, heal_ms = plan.partition_link
        _arm_link_partition(a, b, cut_ms, heal_ms)(cluster)
    if plan.message_drop_rate > 0.0:
        start, end = plan.message_drop_window_ms
        cluster.sim.call_later(
            start, lambda: cluster.net.set_loss(plan.message_drop_rate),
            label="chaos/loss-on")
        if end != float("inf"):
            cluster.sim.call_later(
                end, lambda: cluster.net.set_loss(0.0),
                label="chaos/loss-off")


def default_scenarios(quick: bool = False) -> List[tuple]:
    """(name, arm) pairs; ``arm(cluster)`` installs the fault and may
    return a hook object whose ``fired`` attribute is checked after."""
    scenarios: List[tuple] = []
    occurrences = (1,) if quick else (1, 7)
    for occurrence in occurrences:
        for stage in COORDINATOR_STAGES + PARTICIPANT_STAGES:
            scenarios.append((f"tpc-crash/{stage}#{occurrence}",
                              _arm_stage_crash(stage, occurrence)))
    kills = [(60.0, 1), (150.0, 2)] if quick else \
        [(60.0, 1), (150.0, 2), (250.0, 0), (350.0, 1)]
    for at_ms, node_id in kills:
        scenarios.append((f"node-kill/n{node_id}@{at_ms:g}",
                          _arm_node_kill(at_ms, node_id, down_ms=140.0)))
    cuts = [(0, 1, 50.0, 170.0)] if quick else \
        [(0, 1, 50.0, 170.0), (1, 2, 120.0, 260.0), (0, 2, 200.0, 330.0)]
    for a, b, at_ms, heal_ms in cuts:
        scenarios.append((f"link-cut/{a}-{b}@{at_ms:g}",
                          _arm_link_partition(a, b, at_ms, heal_ms)))
    losses = [(0.3, 40.0, 400.0)] if quick else \
        [(0.3, 40.0, 400.0), (0.6, 100.0, 300.0)]
    for rate, at_ms, until_ms in losses:
        scenarios.append((f"msg-loss/{rate:g}@{at_ms:g}",
                          _arm_message_loss(rate, at_ms, until_ms)))
    return scenarios


def run_dist_chaos(config: Optional[DistConfig] = None,
                   scenarios: Optional[List[tuple]] = None,
                   quick: bool = False,
                   progress: Optional[Callable[[str, ChaosResult], None]]
                   = None) -> ChaosReport:
    """Run the fault-point sweep; every scenario compares against one
    unkilled twin run of the same configuration."""
    config = config or DistConfig()
    scenarios = scenarios if scenarios is not None \
        else default_scenarios(quick=quick)

    twin_cluster = DistCluster(config.copy()).build()
    twin_sig = cluster_graph_signature(twin_cluster)
    twin_cluster.reorganize_all()
    if not twin_cluster.run_until_reorgs_done():
        raise RuntimeError("twin (fault-free) run did not complete")
    twin_problems = cluster_deep_verify(twin_cluster)
    if twin_problems:
        raise RuntimeError(f"twin run is not clean: {twin_problems}")
    if cluster_graph_signature(twin_cluster) != twin_sig:
        raise RuntimeError("twin run broke the graph signature")
    twin = cluster_digests(twin_cluster)

    report = ChaosReport()
    for name, arm in scenarios:
        cluster = DistCluster(config.copy()).build()
        sig0 = cluster_graph_signature(cluster)
        cluster.reorganize_all()
        hook = arm(cluster)
        completed = cluster.run_until_reorgs_done()
        result = ChaosResult(
            scenario=name,
            fired=getattr(hook, "fired", True),
            completed=completed,
            signature_ok=cluster_graph_signature(cluster) == sig0,
            twin_identical=cluster_digests(cluster) == twin,
            problems=cluster_deep_verify(cluster),
            crashes=sum(n.crash_count for n in cluster.nodes),
            sim_ms=cluster.sim.now,
        )
        report.results.append(result)
        if progress is not None:
            progress(name, result)
    return report
