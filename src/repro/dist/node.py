"""One simulated node: a storage engine plus its distributed runtime.

A node wraps a full :class:`~repro.engine.StorageEngine` (own CPU, data
disk, log disk and WAL) with the cross-node stack: RPC endpoint, 2PC
manager, failure detector, background scrubber and — on nodes that own a
data partition — the distributed reorganizer.

Every process a node spawns is named ``n{id}/<suffix>``, which is what
makes a node crash precise: ``kill_matching("n{id}/")`` reaps exactly
this node's processes (reorganizer, scrubber, detector, RPC servers,
decision waiters) while the rest of the cluster keeps running.  The
engine's own ``spawn_scrubber`` is *not* used — it hardcodes the process
name ``"scrubber"``, which would collide across nodes and escape the
per-node kill.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from dataclasses import replace

from ..storage.oid import Oid
from ..storage.scrub import Scrubber
from .detector import FailureDetector
from .rpc import RpcEndpoint
from .twopc import TwoPhaseManager

OBJ_READ = "obj.read"

#: node id -> (data partition, hub partition); see DistConfig.
def data_partition(node_id: int) -> int:
    return 10 * node_id + 1


def hub_partition(node_id: int) -> int:
    return 10 * node_id + 2


class DistNode:
    """A cluster member; created and driven by :class:`DistCluster`."""

    def __init__(self, cluster, node_id: int, engine):
        self.cluster = cluster
        self.node_id = node_id
        self.engine = engine
        self.data_partition = data_partition(node_id)
        self.hub_partition = hub_partition(node_id)
        self.down = False
        self.crash_count = 0
        self.crash_image = None
        self.rpc: Optional[RpcEndpoint] = None
        self.twopc: Optional[TwoPhaseManager] = None
        self.detector: Optional[FailureDetector] = None
        self.scrubber: Optional[Scrubber] = None
        self.reorg = None
        self.reorg_stats = None
        self.reorg_done = False
        self._rpc_policy = cluster.config.rpc_retry_policy()
        self._rpc_rng = self._rpc_policy.rng(
            f"rpc/{cluster.config.seed}/n{node_id}")
        self._single_policy = replace(self._rpc_policy, max_retries=0)

    def proc_name(self, suffix: str) -> str:
        return f"n{self.node_id}/{suffix}"

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Wire the distributed runtime onto the current engine (called
        at cluster boot and again after every restart)."""
        cfg = self.cluster.config
        self.rpc = RpcEndpoint(self.cluster.net, self.node_id,
                               self.cluster.sim)
        self.twopc = TwoPhaseManager(
            self, decision_timeout_ms=cfg.decision_timeout_ms)
        self.detector = FailureDetector(
            self.rpc, self.node_id, range(cfg.node_count),
            self.cluster.sim, heartbeat_ms=cfg.heartbeat_ms,
            suspect_after_ms=cfg.suspect_after_ms)
        self.detector.start()
        self.rpc.serve(OBJ_READ, self._handle_obj_read)
        # Omniscient verification hooks: the integrity oracle may consult
        # the directory directly — it checks state, it is not a runtime
        # communication path (those go through RPC above).
        self.engine.remote_resolver = self.cluster.exists
        self.engine.remote_ert_expected = self._remote_ert_expected
        if cfg.scrub_interval_ms > 0:
            self.scrubber = Scrubber(
                self.engine, interval_ms=cfg.scrub_interval_ms,
                pages_per_sweep=cfg.scrub_pages_per_sweep)
            self.cluster.sim.spawn(self.scrubber.run(),
                                   name=self.proc_name("scrubber"))

    def _remote_ert_expected(self, pid: int):
        return self.cluster.remote_ert_expected(self.node_id, pid)

    # -- RPC client -------------------------------------------------------------

    def call(self, dst: int, method: str, payload: dict,
             attempts: Optional[int] = None) -> Generator[Any, Any, dict]:
        """Call a peer under the cluster's deadline and retry policy.

        ``attempts=1`` makes a single try (best-effort pushes whose loss
        something else already guarantees against).
        """
        policy = self._single_policy if attempts == 1 else self._rpc_policy
        reply = yield from self.rpc.call(
            dst, method, payload,
            deadline_ms=self.cluster.config.rpc_deadline_ms,
            policy=policy, rng=self._rpc_rng)
        return reply

    def read_remote(self, oid: Oid) -> Generator[Any, Any, dict]:
        """Read an object on its owner node; raises
        :class:`~repro.errors.NodeUnreachableError` when the owner is
        gone — the typed fail-fast the serving layer retries or sheds."""
        owner = self.cluster.owner(oid.partition)
        reply = yield from self.call(owner, OBJ_READ, {"oid": oid.pack()})
        return reply

    def _handle_obj_read(self, payload: dict) -> dict:
        oid = Oid.unpack(payload["oid"])
        if not self.engine.store.exists(oid):
            # Transient during a migration window or a genuinely bad ref;
            # the caller distinguishes by retrying.
            return {"ok": False}
        image = self.engine.store.read_object(oid)
        return {"ok": True, "payload": bytes(image.payload),
                "children": [c.pack() for c in image.children()]}

    def __repr__(self) -> str:
        state = "down" if self.down else "up"
        return (f"<DistNode {self.node_id} {state} "
                f"crashes={self.crash_count}>")
