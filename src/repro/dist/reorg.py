"""Cross-node IRA: migration batches whose parents span nodes.

The single-node incremental reorganizer already handles every *local*
parent (traversal + ERT, exact-parent locking, logged REF_UPDATEs).
What changes across nodes is only the commit: a batch whose migrated
objects have parents on other nodes commits through presumed-abort 2PC
(:mod:`repro.dist.twopc`), so the remote reference patches land
atomically with the migration itself.

Remote parents surface naturally: ``_find_exact_parents`` drops any
ERT parent whose partition the local store does not hold (the
``store.exists`` check), leaving the local transaction untouched by
them; at commit time this class collects those same ERT entries, groups
them by owner node, and hands them to the coordinator.

Graceful degradation: when a participant is unreachable the coordinator
leaves the batch's transaction to the standard abort path, then *pauses*
on the failure detector until the peer is heard from again before
retrying — a partition stalls cross-node progress, it never corrupts.

The ERT entries for remote parents are fixed up in memory after a
committed 2PC round (the local WAL never carries the remote REF_UPDATEs,
so the log analyzer cannot do it); :func:`repro.dist.verify
.reconcile_remote_ert` rebuilds those fixes from the durable log after
a crash.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from ..core.checkpointing import (WalReorgStateStore, resume_reorganization)
from ..core.ira import IncrementalReorganizer
from ..errors import NodeUnreachableError
from ..storage.oid import Oid
from .twopc import RemoteCommitAbort


class DistReorganizer(IncrementalReorganizer):
    """IRA whose batch commit spans nodes when the parents do."""

    algorithm_name = "dist-ira"

    def __init__(self, node, partition_id: int, plan=None,
                 reorg_config=None, state_store=None, transform=None):
        super().__init__(node.engine, partition_id, plan=plan,
                         reorg_config=reorg_config,
                         state_store=state_store, transform=transform)
        self.node = node
        self.cluster = node.cluster
        self.stats.algorithm = self.algorithm_name
        #: Remote parent slots patched through 2PC.
        self.remote_patches = 0
        #: Batches that needed a 2PC round.
        self.tpc_rounds = 0
        #: Simulated time spent paused on the failure detector.
        self.paused_ms = 0.0

    # A durable checkpoint right after discovery pins the migration
    # order before the first batch can commit, so *any* later crash
    # resumes the same deterministic sequence instead of re-discovering
    # (and re-migrating) a partially-reorganized partition.
    def _discover(self) -> Generator[Any, Any, None]:
        yield from super()._discover()
        if self.state_store is not None and self.cfg.checkpoint_every:
            self._checkpoint_state()

    def _remote_patches_for(self, batch_mapping: Dict[Oid, Oid]
                            ) -> Dict[int, List[Tuple[Oid, Oid, Oid]]]:
        ert = self.engine.ert_for(self.partition_id)
        by_node: Dict[int, List[Tuple[Oid, Oid, Oid]]] = {}
        for old in sorted(batch_mapping):
            new = batch_mapping[old]
            for parent in sorted(ert.parents_of(old)):
                if self.engine.store.has_partition(parent.partition):
                    continue  # local parent: already patched in the txn
                owner = self.cluster.owner(parent.partition)
                by_node.setdefault(owner, []).append((parent, old, new))
        return by_node

    def _commit_batch(self, txn, batch_mapping: Dict[Oid, Oid]
                      ) -> Generator[Any, Any, None]:
        by_node = self._remote_patches_for(batch_mapping)
        if not by_node:
            yield from txn.commit()
            return
        self.tpc_rounds += 1
        try:
            yield from self.node.twopc.coordinate_commit(txn, by_node)
        except NodeUnreachableError as exc:
            # The peer is gone; don't spin RPC timeouts through the
            # batch retry budget.  Pause until the detector hears from
            # it, then funnel into the standard abort-and-retry path
            # (coordinate_commit left the transaction active).
            started = self.engine.sim.now
            peer = exc.node if exc.node >= 0 else None
            if peer is not None:
                yield from self.node.detector.await_up(peer)
            self.paused_ms += self.engine.sim.now - started
            raise RemoteCommitAbort(
                f"2PC participant node {peer} was unreachable; "
                f"peer is back, retrying the batch") from exc
        # Committed everywhere: move the remote parents' ERT entries to
        # the new addresses (in-memory; see module docstring).
        ert = self.engine.ert_for(self.partition_id)
        for patches in by_node.values():
            for parent, old, new in patches:
                ert.remove(old, parent)
                ert.add(new, parent)
                self.remote_patches += 1


def start_reorg(node, reorg_config) -> None:
    """Spawn a fresh distributed reorganization of ``node``'s data
    partition (WAL-checkpointed so a crash can resume it)."""
    store = WalReorgStateStore(node.engine, node.data_partition)
    reorg = DistReorganizer(node, node.data_partition,
                            reorg_config=reorg_config, state_store=store)
    _spawn_runner(node, reorg)


def resume_reorg(node, reorg_config) -> bool:
    """Continue a crashed node's reorganization from its WAL progress
    records.  Returns True when there was anything to do (resumed or
    already complete); False means no durable checkpoint survived and
    the caller should start afresh."""
    store = WalReorgStateStore(node.engine, node.data_partition)
    if store.completed():
        node.reorg_done = True
        return True

    def factory(engine, partition_id, plan, cfg, state_store):
        return DistReorganizer(node, partition_id, plan=plan,
                               reorg_config=cfg, state_store=state_store)

    reorg = resume_reorganization(node.engine, store,
                                  reorg_config=reorg_config,
                                  factory=factory)
    if reorg is None:
        return False
    _spawn_runner(node, reorg)
    return True


def _spawn_runner(node, reorg) -> None:
    node.reorg = reorg
    node.reorg_done = False

    def runner():
        stats = yield from reorg.run()
        node.reorg_stats = stats
        node.reorg_done = True

    node.cluster.sim.spawn(runner(), name=node.proc_name("reorg"))
