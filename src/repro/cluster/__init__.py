"""repro.cluster — workload-driven dynamic clustering.

The missing driving operation of the source paper's §2: observe the
workload on-line (:mod:`tracing`), turn heat + co-access affinity into
page-sharing placements (:mod:`policies`), feed them to the stock
reorganizers through a relocation plan (:mod:`plan`), decide when and
where it pays off (:mod:`advisor`), and measure that it does
(:mod:`bench`, ``repro bench clustering``).
"""

from .advisor import Advice, ClusteringAdvisor
from .plan import AffinityClusteringPlan, RandomPlacementPlan
from .policies import (
    DSTCClusterer,
    GreedyHeatPacker,
    PLACEMENT_POLICIES,
    Placement,
    make_policy,
    objects_per_page,
)
from .tracing import AffinityGraph, ClusterTracer

__all__ = [
    "Advice",
    "AffinityClusteringPlan",
    "AffinityGraph",
    "ClusteringAdvisor",
    "ClusterTracer",
    "DSTCClusterer",
    "GreedyHeatPacker",
    "PLACEMENT_POLICIES",
    "Placement",
    "RandomPlacementPlan",
    "make_policy",
    "objects_per_page",
]
