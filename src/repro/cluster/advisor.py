"""The clustering advisor: when to reorganize, and which partition.

The paper cites [CWZ94]-style partition selection as the driving
utility's problem; ``repro.core.selection`` supplies the space-based
policies (fragmentation, garbage).  This advisor adds the workload-based
signal: a partition whose *hot, co-accessed* objects are scattered over
many pages has a clustering payoff a purely space-based score cannot
see.  The combined utility

    score(p) = selection_weight * fragmentation(p)
             + clustering_weight * scatter(p) * heat_share(p)

keeps both drivers in one number: ``scatter`` is the fraction of the
partition's intra-partition affinity weight whose endpoints live on
*different* pages (0 = perfectly clustered, 1 = fully scattered), and
``heat_share`` is the partition's share of all traced heat — a scattered
but cold partition is not worth reorganizing.

All ranking is deterministic: equal scores break toward the lower
partition id, so repeated runs over identical statistics recommend the
same work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..core.selection import fragmentation_score
from .tracing import AffinityGraph


@dataclass
class Advice:
    """One partition's combined reorganization utility."""

    partition_id: int
    score: float
    scatter: float
    heat_share: float
    fragmentation: float
    #: Intra-partition affinity weight observed (the evidence base).
    affinity_weight: float

    def describe(self) -> str:
        return (f"partition {self.partition_id}: score {self.score:.3f} "
                f"(scatter {self.scatter:.2f} x heat {self.heat_share:.2f}"
                f" + frag {self.fragmentation:.2f})")


class ClusteringAdvisor:
    """Ranks partitions by combined clustering + compaction payoff."""

    def __init__(self, graph: AffinityGraph,
                 clustering_weight: float = 1.0,
                 selection_weight: float = 1.0,
                 min_score: float = 0.0):
        self.graph = graph
        self.clustering_weight = clustering_weight
        self.selection_weight = selection_weight
        self.min_score = min_score

    def scatter(self, engine, partition_id: int) -> float:
        """Fraction of intra-partition affinity weight crossing pages."""
        total = 0.0
        split = 0.0
        store = engine.store
        for (a, b), weight in self.graph.partition_edges(partition_id):
            if not (store.exists(a) and store.exists(b)):
                continue
            total += weight
            if a.page != b.page:
                split += weight
        return split / total if total else 0.0

    def advice_for(self, engine, partition_id: int) -> Advice:
        partition_heat = self.graph.partition_heat()
        total_heat = sum(partition_heat.values())
        heat_share = (partition_heat.get(partition_id, 0.0) / total_heat
                      if total_heat else 0.0)
        scatter = self.scatter(engine, partition_id)
        fragmentation = fragmentation_score(engine, partition_id)
        affinity = sum(w for _, w in
                       self.graph.partition_edges(partition_id))
        score = (self.selection_weight * fragmentation
                 + self.clustering_weight * scatter * heat_share)
        return Advice(partition_id=partition_id, score=score,
                      scatter=scatter, heat_share=heat_share,
                      fragmentation=fragmentation,
                      affinity_weight=affinity)

    def rank(self, engine,
             candidates: Optional[Iterable[int]] = None) -> List[Advice]:
        pids = sorted(candidates if candidates is not None
                      else engine.store.partition_ids())
        advices = [self.advice_for(engine, pid) for pid in pids]
        advices.sort(key=lambda a: (-a.score, a.partition_id))
        return advices

    def recommend(self, engine,
                  candidates: Optional[Iterable[int]] = None
                  ) -> Optional[Advice]:
        """The most deserving partition, or ``None`` when nothing beats
        ``min_score`` (no reason to reorganize)."""
        ranked = self.rank(engine, candidates)
        if not ranked or ranked[0].score <= self.min_score:
            return None
        return ranked[0]

    def claims(self, engine, count: int,
               candidates: Optional[Iterable[int]] = None) -> List[int]:
        """The claim queue for a reorganizer fleet: up to ``count``
        partition ids in recommendation order.

        Partitions beating ``min_score`` come first (highest payoff
        first); if fewer than ``count`` qualify the queue is padded with
        the remaining candidates in rank order, so a fleet told to
        reorganize N partitions always gets N deterministic claims even
        on a cold (untraced) advisor.
        """
        ranked = self.rank(engine, candidates)
        qualified = [a.partition_id for a in ranked
                     if a.score > self.min_score]
        if len(qualified) < count:
            qualified.extend(a.partition_id for a in ranked
                             if a.partition_id not in qualified)
        return qualified[:count]
