"""On-line access tracing: heat and affinity statistics.

The source paper leaves the *why* of reorganization to the driving
operation (§2); Darmont et al.'s dynamic-clustering line of work supplies
it: observe the workload on-line, derive object-affinity placements, and
recluster.  This module is the observation half — a passive tracer fed by
the transaction layer that maintains

* per-object **heat**: decayed access counters, and
* a bounded **affinity edge map**: within-transaction co-access pairs,
  weighted by how close together the two accesses were.

The tracer is deliberately inert with respect to the simulation: it never
yields, never touches a random stream, never schedules an event, and is
only consulted behind ``if tracer is not None`` checks — so a run with
tracing enabled is byte-identical to the same run with tracing disabled
(``tests/test_cluster_identity.py`` pins this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..storage.oid import Oid

#: An affinity edge is an unordered OID pair, stored (low, high).
Edge = Tuple[Oid, Oid]


class AffinityGraph:
    """Decayed heat counters plus a bounded co-access edge map."""

    def __init__(self, max_objects: int = 16384, max_edges: int = 65536):
        self.max_objects = max_objects
        self.max_edges = max_edges
        self.heat: Dict[Oid, float] = {}
        self.edges: Dict[Edge, float] = {}
        #: Totals over the tracer's lifetime (not decayed) — cheap
        #: telemetry for the CLI.
        self.accesses = 0
        self.pairs = 0

    # -- ingestion ---------------------------------------------------------

    def observe(self, sequence: Sequence[Oid], pair_window: int) -> None:
        """Fold one committed transaction's access sequence in.

        Each access adds one unit of heat; each pair of accesses at most
        ``pair_window`` apart adds ``1 / distance`` of affinity weight —
        adjacent accesses (a pointer traversal) bind tighter than ones
        merely sharing a transaction.
        """
        heat = self.heat
        edges = self.edges
        n = len(sequence)
        for i, oid in enumerate(sequence):
            heat[oid] = heat.get(oid, 0.0) + 1.0
            self.accesses += 1
            for j in range(i + 1, min(i + 1 + pair_window, n)):
                other = sequence[j]
                if other == oid:
                    continue
                edge = (oid, other) if oid < other else (other, oid)
                edges[edge] = edges.get(edge, 0.0) + 1.0 / (j - i)
                self.pairs += 1
        if len(heat) > self.max_objects:
            self._prune(heat, self.max_objects * 3 // 4)
        if len(edges) > self.max_edges:
            self._prune(edges, self.max_edges * 3 // 4)

    def decay(self, factor: float, floor: float = 1e-3) -> None:
        """Multiply every counter by ``factor``, dropping dust below
        ``floor`` — old traffic fades, the maps stay bounded."""
        for table in (self.heat, self.edges):
            dead = []
            for key, value in table.items():
                value *= factor
                if value < floor:
                    dead.append(key)
                else:
                    table[key] = value
            for key in dead:
                del table[key]

    def remap(self, mapping: Dict[Oid, Oid]) -> None:
        """Apply a reorganization's old→new mapping so the statistics
        keep describing the surviving addresses (same-key collisions
        merge additively)."""
        if not mapping:
            return
        heat: Dict[Oid, float] = {}
        for oid, value in self.heat.items():
            new = mapping.get(oid, oid)
            heat[new] = heat.get(new, 0.0) + value
        self.heat = heat
        edges: Dict[Edge, float] = {}
        for (a, b), weight in self.edges.items():
            a = mapping.get(a, a)
            b = mapping.get(b, b)
            if a == b:
                continue
            edge = (a, b) if a < b else (b, a)
            edges[edge] = edges.get(edge, 0.0) + weight
        self.edges = edges

    @staticmethod
    def _prune(table: Dict, keep: int) -> None:
        """Keep the ``keep`` heaviest entries (deterministic tie-break on
        the key itself)."""
        survivors = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
        table.clear()
        table.update(survivors[:keep])

    # -- queries -----------------------------------------------------------

    def heat_of(self, oid: Oid) -> float:
        return self.heat.get(oid, 0.0)

    def partition_heat(self) -> Dict[int, float]:
        """Total heat per partition."""
        out: Dict[int, float] = {}
        for oid, value in self.heat.items():
            out[oid.partition] = out.get(oid.partition, 0.0) + value
        return out

    def partition_edges(self, partition_id: int) -> List[Tuple[Edge, float]]:
        """Affinity edges with *both* endpoints in ``partition_id``."""
        return [(edge, weight) for edge, weight in self.edges.items()
                if edge[0].partition == partition_id
                and edge[1].partition == partition_id]

    def adjacency(self, oids: Iterable[Oid]) -> Dict[Oid, Dict[Oid, float]]:
        """Neighbor map restricted to ``oids`` (both endpoints inside)."""
        members = set(oids)
        out: Dict[Oid, Dict[Oid, float]] = {}
        for (a, b), weight in self.edges.items():
            if a in members and b in members:
                out.setdefault(a, {})[b] = weight
                out.setdefault(b, {})[a] = weight
        return out

    def top_hot(self, n: int = 10) -> List[Tuple[Oid, float]]:
        return sorted(self.heat.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def top_edges(self, n: int = 10) -> List[Tuple[Edge, float]]:
        return sorted(self.edges.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def __repr__(self) -> str:
        return (f"<AffinityGraph objects={len(self.heat)} "
                f"edges={len(self.edges)} accesses={self.accesses}>")


class ClusterTracer:
    """The engine-side hook: buffers per-transaction access sequences and
    folds them into the :class:`AffinityGraph` at commit.

    Install with ``engine.tracer = ClusterTracer(...)`` *before* the
    traced transactions begin (each :class:`~repro.txn.Transaction`
    snapshots the tracer at construction, like the history recorder).
    System transactions — the reorganizer's own — are never traced: the
    reorganizer touching every object of a partition is maintenance, not
    workload heat.  Aborted transactions are discarded whole; a retried
    walk counts once, when it finally commits.
    """

    def __init__(self, pair_window: int = 3, decay: float = 0.5,
                 decay_every: int = 512, max_objects: int = 16384,
                 max_edges: int = 65536):
        if pair_window < 1:
            raise ValueError("pair_window must be >= 1")
        self.pair_window = pair_window
        self.decay_factor = decay
        self.decay_every = decay_every
        self.graph = AffinityGraph(max_objects=max_objects,
                                   max_edges=max_edges)
        self.commits = 0
        self.aborts = 0
        self._open: Dict[int, List[Oid]] = {}

    # -- transaction-layer callbacks (hot path: keep them tiny) ------------

    def note(self, tid: int, oid: Oid) -> None:
        seq = self._open.get(tid)
        if seq is None:
            seq = self._open[tid] = []
        seq.append(oid)

    def on_commit(self, tid: int) -> None:
        sequence = self._open.pop(tid, None)
        if not sequence:
            return
        self.graph.observe(sequence, self.pair_window)
        self.commits += 1
        if self.decay_every and self.commits % self.decay_every == 0:
            self.graph.decay(self.decay_factor)

    def on_abort(self, tid: int) -> None:
        if self._open.pop(tid, None) is not None:
            self.aborts += 1

    def __repr__(self) -> str:
        return (f"<ClusterTracer commits={self.commits} "
                f"open={len(self._open)} {self.graph!r}>")
