"""Clustering-driven relocation plans.

The reorganizers stay policy-free (paper §2): a plan answers *where*
migrated objects go.  :class:`AffinityClusteringPlan` closes the loop
from on-line statistics to placement — at ``prepare`` time it asks a
placement policy to turn the traced affinity graph into page-sharing
clusters, then drives the stock :class:`~repro.core.plan.ClusteringPlan`
machinery with the resulting key, so IRA / the two-lock variant migrate
hot, co-accessed objects onto shared fresh pages without knowing any of
this is happening.

:class:`RandomPlacementPlan` is the experimental control: the same
migration traffic, but a seeded shuffle as the order — what placement
quality looks like when the reorganizer runs with no policy at all.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.plan import ClusteringPlan, RelocationPlan
from ..storage.oid import Oid
from .policies import make_policy, objects_per_page
from .tracing import AffinityGraph


class AffinityClusteringPlan(ClusteringPlan):
    """Workload-driven re-clustering: place by traced heat + affinity.

    ``graph`` is a (typically live) :class:`AffinityGraph`; the placement
    is computed once, in ``prepare``, from the objects alive at that
    moment.  With ``target_partition`` the plan evacuates into a
    clustered layout elsewhere; without it, it re-packs in place onto
    fresh pages (``fresh_only``) and drops the emptied ones.
    """

    def __init__(self, graph: AffinityGraph, policy: str = "dstc",
                 target_partition: Optional[int] = None,
                 per_page: Optional[int] = None, **policy_kwargs):
        super().__init__(cluster_key=self._placement_key,
                         target_partition=target_partition)
        self.graph = graph
        self.policy_name = policy
        self._policy = make_policy(policy, **policy_kwargs)
        self._per_page = per_page
        self.placement = None

    def prepare(self, engine, partition_id: int) -> None:
        super().prepare(engine, partition_id)
        per_page = self._per_page or objects_per_page(engine, partition_id)
        oids = list(engine.store.live_oids(partition_id))
        self.placement = self._policy.build(oids, self.graph, per_page)

    def _placement_key(self, oid: Oid):
        if self.placement is None:
            raise RuntimeError("AffinityClusteringPlan used before prepare()")
        return self.placement.cluster_key(oid)


class RandomPlacementPlan(RelocationPlan):
    """Migrate in a seeded-random order onto fresh pages — the
    no-policy baseline the clustering experiment compares against."""

    fresh_only = True

    def __init__(self, seed: int = 0,
                 target_partition: Optional[int] = None):
        self.seed = seed
        self._target = target_partition

    def prepare(self, engine, partition_id: int) -> None:
        if self._target is None:
            engine.store.partition(partition_id).mark_relocation_floor()
        elif not engine.store.has_partition(self._target):
            engine.create_partition(self._target)

    def target_partition(self, oid: Oid) -> int:
        return self._target if self._target is not None else oid.partition

    def order(self, oids: List[Oid]) -> List[Oid]:
        shuffled = sorted(oids)
        random.Random(f"random-placement/{self.seed}").shuffle(shuffled)
        return shuffled

    def finalize(self, engine, partition_id: int) -> None:
        engine.store.partition(partition_id).drop_empty_pages()
