"""Placement policies: from affinity statistics to page-sharing targets.

Two policies from Darmont et al.'s comparison study of object-database
clustering techniques:

* :class:`GreedyHeatPacker` — the sequence-based family: rank objects by
  decayed heat and pack them into page-sized runs in that order, so the
  hottest objects of a partition share the fewest pages.
* :class:`DSTCClusterer` — the dynamic, statistical, tunable family:
  seed a cluster at the hottest unplaced object, then greedily absorb
  the unplaced neighbor with the strongest total affinity to the
  cluster's current members (above a tunable minimum weight), until the
  cluster fills a page.

Both emit a :class:`Placement`, whose ``cluster_key`` feeds directly
into :class:`repro.core.plan.ClusteringPlan` — placed objects migrate
cluster by cluster onto shared fresh pages; cold (untraced) objects
follow in address order, packed after the hot set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..storage.oid import Oid
from ..storage.page import PAGE_HEADER_BYTES, SLOT_ENTRY_BYTES
from .tracing import AffinityGraph

#: Sort key of an object under a placement: placed objects first, by
#: (cluster, rank); everything else after, in address order (the
#: ClusteringPlan tie-breaks equal keys by OID).
PlacementKey = Tuple[int, int, int]

_UNPLACED: PlacementKey = (1, 0, 0)


@dataclass
class Placement:
    """Page-sharing targets: an ordered list of object clusters."""

    policy: str
    per_page: int
    clusters: List[List[Oid]] = field(default_factory=list)
    _key_of: Dict[Oid, PlacementKey] = field(default_factory=dict)

    @classmethod
    def build(cls, policy: str, per_page: int,
              clusters: List[List[Oid]]) -> "Placement":
        placement = cls(policy=policy, per_page=per_page, clusters=clusters)
        for index, cluster in enumerate(clusters):
            for rank, oid in enumerate(cluster):
                placement._key_of[oid] = (0, index, rank)
        return placement

    def cluster_key(self, oid: Oid) -> PlacementKey:
        return self._key_of.get(oid, _UNPLACED)

    def placed(self, oid: Oid) -> bool:
        return oid in self._key_of

    @property
    def placed_count(self) -> int:
        return len(self._key_of)

    def __repr__(self) -> str:
        return (f"<Placement {self.policy} clusters={len(self.clusters)} "
                f"placed={self.placed_count} per_page={self.per_page}>")


def objects_per_page(engine, partition_id: int) -> int:
    """How many of this partition's objects fit on one page, from the
    live-size average — the target cluster size for both policies."""
    stats = engine.store.stats(partition_id)
    if stats.live_objects == 0:
        return 1
    avg = stats.live_bytes / stats.live_objects + SLOT_ENTRY_BYTES
    usable = engine.store.partition(partition_id).page_size \
        - PAGE_HEADER_BYTES
    return max(1, int(usable // avg))


class GreedyHeatPacker:
    """Heat-ranked sequence packing (the simple policy the Darmont
    advocacy paper argues usually suffices)."""

    name = "heat"

    def build(self, oids: List[Oid], graph: AffinityGraph,
              per_page: int) -> Placement:
        hot = sorted((oid for oid in oids if graph.heat_of(oid) > 0.0),
                     key=lambda oid: (-graph.heat_of(oid), oid))
        clusters = [hot[start:start + per_page]
                    for start in range(0, len(hot), per_page)]
        return Placement.build(self.name, per_page, clusters)


class DSTCClusterer:
    """Affinity-grown clusters in the DSTC style.

    ``min_weight`` is the tunable admission threshold: a candidate joins
    a cluster only if its total affinity to the cluster's members reaches
    it.  Ties break deterministically — strongest affinity first, then
    hotter, then lower OID.
    """

    name = "dstc"

    def __init__(self, min_weight: float = 0.0):
        self.min_weight = min_weight

    def build(self, oids: List[Oid], graph: AffinityGraph,
              per_page: int) -> Placement:
        adjacency = graph.adjacency(oids)
        seeds = sorted((oid for oid in oids if graph.heat_of(oid) > 0.0),
                       key=lambda oid: (-graph.heat_of(oid), oid))
        unplaced = set(seeds)
        clusters: List[List[Oid]] = []
        for seed in seeds:
            if seed not in unplaced:
                continue
            unplaced.discard(seed)
            cluster = [seed]
            # Affinity of every candidate to the cluster so far.
            pull: Dict[Oid, float] = {}
            for other, weight in adjacency.get(seed, {}).items():
                if other in unplaced:
                    pull[other] = pull.get(other, 0.0) + weight
            while len(cluster) < per_page and pull:
                best = min(pull,
                           key=lambda o: (-pull[o], -graph.heat_of(o), o))
                if pull[best] < self.min_weight:
                    break
                del pull[best]
                unplaced.discard(best)
                cluster.append(best)
                for other, weight in adjacency.get(best, {}).items():
                    if other in unplaced:
                        pull[other] = pull.get(other, 0.0) + weight
            clusters.append(cluster)
        return Placement.build(self.name, per_page, clusters)


#: Policy registry for plans, the advisor and the CLI.
PLACEMENT_POLICIES = {
    GreedyHeatPacker.name: GreedyHeatPacker,
    DSTCClusterer.name: DSTCClusterer,
}


def make_policy(name: str, **kwargs):
    try:
        factory = PLACEMENT_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; "
            f"choose from {sorted(PLACEMENT_POLICIES)}") from None
    return factory(**kwargs)
