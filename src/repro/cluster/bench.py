"""The clustering experiment: does reorganization *improve* performance?

The paper measures what reorganization costs (throughput and response
time while IRA runs); this experiment measures what it buys.  Three arms
over the same pointer-chasing workload in the disk-resident setting
(paper §7), all at one pinned seed:

* ``nr``      — no reorganization: the bulk-load layout as-is;
* ``random``  — IRA with :class:`RandomPlacementPlan`: the same
  migration traffic, policy-free placement (what the repo did before
  this subsystem existed, minus even the address-order accident);
* ``cluster`` — IRA with :class:`AffinityClusteringPlan` over
  statistics traced from the live workload.

Protocol per arm: (1) **trace** — run the workload for a fixed horizon
with the tracer attached; (2) **reorganize** — run IRA on partition 1
under concurrent load with the arm's plan (skipped for ``nr``);
(3) **measure** — run the workload again, with fresh walk seeds, and
report the buffer hit ratio and pages fetched per traversal over that
window alongside throughput and response times.  Placement quality is
thereby a *gated* number: the summaries land in ``BENCH_5.json`` and any
drift fails ``repro bench clustering --compare``.
"""

from __future__ import annotations

from typing import Dict

from ..bench.harness import BenchPoint
from ..config import ExperimentConfig, SystemConfig, WorkloadConfig
from ..database import Database
from ..workload import WorkloadDriver
from .plan import AffinityClusteringPlan, RandomPlacementPlan
from .tracing import ClusterTracer

#: The experiment's arms, in reporting order.
CLUSTERING_ARMS = ("nr", "random", "cluster")


class ClusteringScale:
    """Per-scale parameters (keyed by the bench scale names)."""

    __slots__ = ("objects_per_partition", "mpl", "buffer_pool_pages",
                 "trace_ms", "measure_ms")

    def __init__(self, objects_per_partition: int, mpl: int,
                 buffer_pool_pages: int, trace_ms: float, measure_ms: float):
        self.objects_per_partition = objects_per_partition
        self.mpl = mpl
        self.buffer_pool_pages = buffer_pool_pages
        self.trace_ms = trace_ms
        self.measure_ms = measure_ms


#: One data partition keeps the signal clean: every thread's walks hit
#: the partition being reorganized, so the buffer-pool numbers measure
#: exactly the placement under test.  The buffer pool is sized well
#: below the partition's page count — with everything resident, layout
#: cannot matter.
CLUSTERING_SCALES: Dict[str, ClusteringScale] = {
    "quick": ClusteringScale(objects_per_partition=340, mpl=8,
                             buffer_pool_pages=6,
                             trace_ms=20_000.0, measure_ms=20_000.0),
    "standard": ClusteringScale(objects_per_partition=1020, mpl=16,
                                buffer_pool_pages=10,
                                trace_ms=40_000.0, measure_ms=40_000.0),
    "paper": ClusteringScale(objects_per_partition=4080, mpl=30,
                             buffer_pool_pages=24,
                             trace_ms=60_000.0, measure_ms=60_000.0),
}


def clustering_workload(scale: ClusteringScale,
                        seed: int = 42) -> WorkloadConfig:
    return WorkloadConfig(num_partitions=1,
                          objects_per_partition=scale.objects_per_partition,
                          mpl=scale.mpl, seed=seed)


def clustering_system(scale: ClusteringScale) -> SystemConfig:
    return SystemConfig(disk_resident=True,
                        buffer_pool_pages=scale.buffer_pool_pages)


def run_clustering_arm(arm: str, scale: ClusteringScale,
                       seed: int = 42, policy: str = "dstc") -> BenchPoint:
    """Run one arm's trace / reorganize / measure protocol."""
    if arm not in CLUSTERING_ARMS:
        raise ValueError(f"unknown arm {arm!r}; "
                         f"choose from {CLUSTERING_ARMS}")
    workload = clustering_workload(scale, seed=seed)
    system = clustering_system(scale)
    db, layout = Database.with_workload(workload, system=system)
    engine = db.engine

    def driver(phase_offset: int) -> WorkloadDriver:
        # Fresh thread-walk seeds per phase: the measured walks are not
        # the traced walks, so clustering has to generalize, not recall.
        phased = workload.copy(seed=seed + phase_offset)
        return WorkloadDriver(engine, layout, ExperimentConfig(
            workload=phased, system=system))

    # Phase 1 — trace.  The tracer rides along in every arm (it is free
    # and provably inert); only the cluster arm consumes the statistics.
    tracer = ClusterTracer()
    engine.tracer = tracer
    driver(101).run(horizon_ms=scale.trace_ms)
    engine.tracer = None

    # Phase 2 — reorganize partition 1 under concurrent load.
    reorg_stats = None
    if arm != "nr":
        plan = (RandomPlacementPlan(seed=seed) if arm == "random"
                else AffinityClusteringPlan(tracer.graph, policy=policy))
        reorg_metrics = driver(202).run(
            reorganizer=db.reorganizer(1, "ira", plan=plan))
        reorg_stats = reorg_metrics.reorg_stats

    # Phase 3 — measure.
    metrics = driver(303).run(horizon_ms=scale.measure_ms)
    metrics.algorithm = arm
    report = db.verify_integrity()
    if not report.ok:
        raise AssertionError(
            f"integrity violated after clustering arm {arm!r}: "
            f"{report.problems()[:3]}")
    overrides: Dict[str, object] = {"phase": "measure"}
    if reorg_stats is not None:
        overrides["objects_migrated"] = reorg_stats.objects_migrated
        overrides["reorg_duration_ms"] = round(reorg_stats.duration_ms, 1)
    return BenchPoint(algorithm=arm, metrics=metrics, overrides=overrides,
                      counters=engine.sim.counters())


def run_clustering_experiment(scale_name: str, seed: int = 42,
                              policy: str = "dstc",
                              progress=None) -> Dict[str, BenchPoint]:
    """All three arms at one scale; NR first (the reference layout)."""
    scale = CLUSTERING_SCALES[scale_name]
    points: Dict[str, BenchPoint] = {}
    for arm in CLUSTERING_ARMS:
        points[arm] = run_clustering_arm(arm, scale, seed=seed,
                                         policy=policy)
        if progress is not None:
            m = points[arm].metrics
            progress(f"{arm}: hit ratio {m.buffer_hit_ratio:.1%}, "
                     f"{m.pages_fetched_per_txn:.2f} pages/txn")
    return points


def format_clustering(points: Dict[str, BenchPoint]) -> str:
    """The experiment's data table: placement quality next to the
    classic throughput/response-time metrics."""
    lines = [
        "Clustering experiment: buffer-pool payoff of workload-driven "
        "placement (measure window)",
        f"{'':8} {'hit-ratio':>9} {'pages/txn':>9} {'tput(tps)':>10} "
        f"{'avg RT(ms)':>11} {'migrated':>9}",
    ]
    for arm in CLUSTERING_ARMS:
        point = points[arm]
        m = point.metrics
        migrated = point.overrides.get("objects_migrated", "-")
        lines.append(
            f"{arm.upper():8} {m.buffer_hit_ratio:9.2%} "
            f"{m.pages_fetched_per_txn:9.2f} {m.throughput_tps:10.1f} "
            f"{m.avg_response_ms:11.0f} {migrated!s:>9}")
    cluster = points["cluster"].metrics
    best_other = max(points["nr"].metrics.buffer_hit_ratio,
                     points["random"].metrics.buffer_hit_ratio)
    verdict = ("clustering wins" if cluster.buffer_hit_ratio > best_other
               else "CLUSTERING DOES NOT WIN")
    lines.append(f"\n{verdict}: cluster hit ratio "
                 f"{cluster.buffer_hit_ratio:.2%} vs best baseline "
                 f"{best_other:.2%}")
    return "\n".join(lines)
