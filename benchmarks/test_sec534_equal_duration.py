"""§5.3.4: PQR measured over IRA's (longer) duration.

"While it is true that the PQR algorithm affects concurrent transactions
severely for the duration of reorganization, it brings back normalcy much
faster."  When PQR's run is measured over the *same* window IRA needs to
finish, the throughput difference between the two "never exceeded 3%"
(we assert a slightly looser bound at reduced scale).
"""

from repro import Database, ExperimentConfig
from repro.bench import base_workload, bench_scale, run_point, save_results
from repro.core import CompactionPlan
from repro.workload import WorkloadDriver


def test_sec534_pqr_over_ira_duration(once):
    scale = bench_scale()

    def run():
        workload = base_workload(mpl=30)
        ira = run_point("ira", workload)
        window = ira.metrics.window_ms

        # PQR run measured over IRA's duration: reorganization completes
        # early, normal processing resumes, the window keeps running.
        db, layout = Database.with_workload(workload)
        driver = WorkloadDriver(db.engine, layout,
                                ExperimentConfig(workload=workload))
        pqr_metrics = driver.run(
            reorganizer=db.reorganizer(1, "pqr", plan=CompactionPlan()),
            horizon_ms=window)
        assert db.verify_integrity().ok
        return ira.metrics, pqr_metrics

    ira, pqr = once(run)
    gap = (ira.throughput_tps - pqr.throughput_tps) / ira.throughput_tps
    text = "\n".join([
        "Section 5.3.4: equal-duration comparison "
        "(paper: difference never exceeded 3%)",
        f"  measurement window: {ira.window_ms / 1000:.1f} s",
        f"  IRA throughput over window: {ira.throughput_tps:8.2f} tps",
        f"  PQR throughput over window: {pqr.throughput_tps:8.2f} tps",
        f"  relative gap:               {gap:8.1%}",
        f"  PQR reorg finished after:   "
        f"{pqr.reorg_duration_ms / 1000:.1f} s",
    ])
    print("\n" + text)
    save_results("sec534_equal_duration", text)

    # PQR completes reorganization much earlier than the window...
    assert pqr.reorg_duration_ms < 0.6 * ira.window_ms
    # ...and over the full window the throughput gap nearly vanishes
    # (paper: <= 3%; reduced scale gets a little more slack).
    assert abs(gap) <= 0.08
