"""Table 1: Parameters of the implementation.

The table itself is the default experiment configuration; this benchmark
renders it (at paper scale regardless of the active bench scale, since the
table documents the paper's defaults) and validates the structural facts
§5.2 states about the generated database.
"""

from repro import Database, WorkloadConfig
from repro.bench import save_results
from repro.workload import glue_slot

PAPER_DEFAULTS = {
    "NUMPARTITIONS": ("partitions in the database", 10),
    "NUMOBJS": ("objects per partition", 4080),
    "MPL": ("multi programming level", 30),
    "OPSPERTRANS": ("length of random walk per transaction", 8),
    "UPDATEPROB": ("probability of exclusive access", 0.5),
    "GLUEFACTOR": ("fraction of inter-partition references", 0.05),
}


def render_table1(config: WorkloadConfig) -> str:
    rows = [
        ("NUMPARTITIONS", config.num_partitions),
        ("NUMOBJS", config.objects_per_partition),
        ("MPL", config.mpl),
        ("OPSPERTRANS", config.ops_per_trans),
        ("UPDATEPROB", config.update_prob),
        ("GLUEFACTOR", config.glue_factor),
    ]
    lines = ["Table 1: Parameters of the implementation",
             f"{'Parameter':>15} {'Meaning':<42} {'Default':>8}"]
    for name, value in rows:
        meaning, paper_value = PAPER_DEFAULTS[name]
        lines.append(f"{name:>15} {meaning:<42} {value!s:>8}")
        assert value == paper_value, f"{name}: {value} != paper {paper_value}"
    return "\n".join(lines)


def test_table1_defaults_match_paper(once):
    def run():
        config = WorkloadConfig()  # the library's defaults ARE Table 1
        text = render_table1(config)
        # §5.2 structural facts at small scale: 85-object clusters are
        # complete 4-ary trees whose roots are persistent roots.
        db, layout = Database.with_workload(WorkloadConfig(
            num_partitions=2, objects_per_partition=170, mpl=2))
        assert config.cluster_size == 85
        assert config.tree_depth == 3
        root = layout.cluster_roots[1][0]
        level = [root]
        seen = 0
        for _ in range(config.tree_depth + 1):
            seen += len(level)
            nxt = []
            for node in level:
                image = db.read_object(node)
                nxt.extend(image.get_ref(i)
                           for i in range(config.branching)
                           if image.get_ref(i) is not None)
            level = nxt
        assert seen == config.cluster_size
        # One glue edge per node.
        for oid in db.store.live_oids(1):
            assert db.store.get_ref(oid, glue_slot(config)) is not None
        return text

    text = once(run)
    print("\n" + text)
    save_results("table1_parameters", text)
