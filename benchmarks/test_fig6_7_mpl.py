"""Figures 6 and 7: throughput and average response time vs MPL.

Paper shapes: NR has the best throughput at every MPL, IRA tracks it
closely; both peak early (resource saturation around MPL 5) and stay
roughly flat, while PQR sits clearly lower and only reaches its best
throughput at a much higher MPL (severe data contention under-utilizes
the machine at low MPL).  Average response times mirror the throughput
curves, growing near-linearly with MPL once the CPU saturates.
"""

from repro.bench import (
    base_workload,
    bench_scale,
    format_series,
    run_three_way,
    save_results,
)


def test_fig6_fig7_mpl_scaleup(once):
    scale = bench_scale()

    def run():
        results = {}
        for mpl in scale.mpl_points:
            results[mpl] = run_three_way(base_workload(mpl=mpl),
                                         scale=scale)
        return results

    results = once(run)
    xs = list(scale.mpl_points)
    throughput = {name.upper(): [results[mpl][name].throughput
                                 for mpl in xs]
                  for name in ("nr", "ira", "pqr")}
    art = {name.upper(): [results[mpl][name].art for mpl in xs]
           for name in ("nr", "ira", "pqr")}

    fig6 = format_series("Figure 6: MPL scaleup - Throughput (tps)",
                         "MPL", xs, throughput)
    fig7 = format_series("Figure 7: MPL scaleup - Avg Response Time (ms)",
                         "MPL", xs, art, y_format="{:9.0f}")
    print("\n" + fig6 + "\n\n" + fig7)
    save_results("fig6_mpl_throughput", fig6)
    save_results("fig7_mpl_response_time", fig7)

    high_mpl = [mpl for mpl in xs if mpl >= 15]
    for mpl in high_mpl:
        nr = results[mpl]["nr"].metrics
        ira = results[mpl]["ira"].metrics
        pqr = results[mpl]["pqr"].metrics
        # IRA hugs NR at every contested MPL; PQR trails both.
        assert ira.throughput_tps >= 0.85 * nr.throughput_tps, f"MPL {mpl}"
        assert pqr.throughput_tps <= 0.92 * nr.throughput_tps, f"MPL {mpl}"
        assert pqr.avg_response_ms >= ira.avg_response_ms, f"MPL {mpl}"

    # NR/IRA throughput saturates early: the peak is (nearly) reached by
    # the second-lowest MPL point already.
    for name in ("nr", "ira"):
        curve = throughput[name.upper()]
        assert max(curve[1:]) >= 0.85 * max(curve)
        assert curve[0] < max(curve)  # MPL 1 leaves CPU/IO overlap unused

    # Response time grows with MPL once saturated.
    for name in ("nr", "ira"):
        curve = art[name.upper()]
        assert curve[-1] > 3 * curve[0]
