"""Table 2: Analysis of Response Times (MPL 30, defaults).

Paper numbers:

              tput    avg RT   max RT    std RT
    NR        35.0      819     1503       127
    IRA       33.7      861     1935       135
    PQR       28.0     1030   100040      4113

Shape targets (asserted): IRA within ~10 % of NR on throughput and ~10 %
on average response time; PQR clearly below both, with max and standard
deviation of response times far above IRA's — the paper's headline
"PQR's variance is several orders of magnitude higher".
"""

from repro.bench import (
    base_workload,
    bench_scale,
    format_table2,
    run_three_way,
    save_results,
)


def test_table2_response_time_analysis(once):
    scale = bench_scale()

    def run():
        workload = base_workload(mpl=30)
        return run_three_way(workload, scale=scale)

    points = once(run)
    text = format_table2(points)
    print("\n" + text)
    save_results("table2_response_times", text)

    nr, ira, pqr = (points[k].metrics for k in ("nr", "ira", "pqr"))

    # IRA barely degrades normal processing...
    assert ira.throughput_tps >= 0.88 * nr.throughput_tps
    assert ira.avg_response_ms <= 1.12 * nr.avg_response_ms
    assert ira.std_response_ms <= 2.0 * nr.std_response_ms
    # ...while PQR visibly hurts throughput and wrecks predictability.
    assert pqr.throughput_tps <= 0.90 * nr.throughput_tps
    assert pqr.avg_response_ms >= 1.10 * nr.avg_response_ms
    assert pqr.std_response_ms >= 3.0 * ira.std_response_ms
    # Transactions captured by the quiesce locks wait out most of PQR's
    # run: the maximum response time tracks the reorganization duration
    # (the paper's 100-second outliers), unlike IRA's.
    assert pqr.max_response_ms >= 0.5 * pqr.reorg_duration_ms
    assert pqr.max_response_ms >= 1.4 * ira.max_response_ms
    assert ira.max_response_ms <= 0.2 * ira.reorg_duration_ms
