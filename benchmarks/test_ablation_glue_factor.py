"""Ablation (§5.3.4 "other experiments"): GLUEFACTOR sweep.

More inter-partition references mean a larger ERT, more external parents
for PQR to lock during quiesce (spreading its interference across the
whole database), and more cross-partition parent patches for IRA.
"""

from repro import Database, ExperimentConfig
from repro.bench import base_workload, bench_scale, format_series, save_results
from repro.core import CompactionPlan
from repro.workload import WorkloadDriver


def test_ablation_glue_factor(once):
    scale = bench_scale()

    def run():
        rows = {}
        for glue in scale.glue_factor_points:
            workload = base_workload(glue_factor=glue, mpl=30)
            results = {}
            for algorithm in ("ira", "pqr"):
                db, layout = Database.with_workload(workload)
                ert_size = len(db.engine.ert_for(1))
                driver = WorkloadDriver(db.engine, layout,
                                        ExperimentConfig(workload=workload))
                reorganizer = db.reorganizer(1, algorithm,
                                             plan=CompactionPlan())
                metrics = driver.run(reorganizer=reorganizer)
                assert db.verify_integrity().ok
                results[algorithm] = (metrics, ert_size, reorganizer)
            rows[glue] = results
        return rows

    rows = once(run)
    xs = list(scale.glue_factor_points)
    text = format_series(
        "Ablation: glue factor (fraction of inter-partition references)",
        "glue", xs,
        {
            "ERT size": [rows[g]["ira"][1] for g in xs],
            "IRA tps": [rows[g]["ira"][0].throughput_tps for g in xs],
            "PQR tps": [rows[g]["pqr"][0].throughput_tps for g in xs],
            "PQR locks": [rows[g]["pqr"][2].quiesce_locks for g in xs],
        })
    print("\n" + text)
    save_results("ablation_glue_factor", text)

    # The ERT and PQR's quiesce lock set grow with the glue factor.
    ert_sizes = [rows[g]["ira"][1] for g in xs]
    assert ert_sizes == sorted(ert_sizes)
    pqr_locks = [rows[g]["pqr"][2].quiesce_locks for g in xs]
    assert pqr_locks[-1] > pqr_locks[0]
    # IRA keeps tracking NR-like throughput regardless of glue factor.
    ira_curve = [rows[g]["ira"][0].throughput_tps for g in xs]
    assert min(ira_curve) >= 0.85 * max(ira_curve)
