"""Benchmark-suite configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark executes
its full experiment sweep exactly once (the simulator is deterministic, so
repetition adds nothing) and writes the paper-style data tables both to
stdout and to ``benchmarks/results/<name>.txt``.

Scale via ``REPRO_BENCH_SCALE`` = quick | standard (default) | paper.
"""

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)
    return runner
