"""Figures 8 and 9: throughput and ART vs partition size (NUMOBJS).

Paper shapes: NR and IRA throughput stay essentially flat as partitions
grow (variation within noise), while PQR's throughput drops consistently
and its average response time climbs much more steeply than IRA's — it
locks the whole partition for a reorganization whose duration grows with
partition size.
"""

from repro.bench import (
    base_workload,
    bench_scale,
    format_series,
    run_three_way,
    save_results,
)


def test_fig8_fig9_partition_size_scaleup(once):
    scale = bench_scale()

    def run():
        results = {}
        for size in scale.partition_size_points:
            workload = base_workload(objects_per_partition=size, mpl=30)
            results[size] = run_three_way(workload, scale=scale)
        return results

    results = once(run)
    xs = list(scale.partition_size_points)
    throughput = {name.upper(): [results[size][name].throughput
                                 for size in xs]
                  for name in ("nr", "ira", "pqr")}
    art = {name.upper(): [results[size][name].art for size in xs]
           for name in ("nr", "ira", "pqr")}

    fig8 = format_series(
        "Figure 8: Partition size scaleup - Throughput (tps)",
        "#objects", xs, throughput)
    fig9 = format_series(
        "Figure 9: Partition size scaleup - Avg Response Time (ms)",
        "#objects", xs, art, y_format="{:9.0f}")
    print("\n" + fig8 + "\n\n" + fig9)
    save_results("fig8_partition_size_throughput", fig8)
    save_results("fig9_partition_size_response_time", fig9)

    # NR and IRA are steady in partition size (paper: <2 % variation for
    # NR; we allow a little more noise at reduced scale).
    for name in ("nr", "ira"):
        curve = throughput[name.upper()]
        assert min(curve) >= 0.85 * max(curve), f"{name} not flat: {curve}"

    # PQR degrades: clearly lower at the largest partitions than the
    # smallest, and its ART climbs faster than IRA's.
    pqr_curve = throughput["PQR"]
    assert pqr_curve[-1] <= 0.95 * pqr_curve[0], f"PQR flat: {pqr_curve}"
    pqr_art_growth = art["PQR"][-1] / art["PQR"][0]
    ira_art_growth = art["IRA"][-1] / art["IRA"][0]
    assert pqr_art_growth > ira_art_growth
    # At every size, PQR trails IRA.
    for i, size in enumerate(xs):
        assert throughput["PQR"][i] <= throughput["IRA"][i], f"size {size}"
