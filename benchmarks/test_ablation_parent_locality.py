"""Ablation (§7, future work): migration order vs external-parent locks.

"An object external to the partition being reorganized may have to be
fetched multiple times as it may be the parent of multiple objects in the
partition ... the same order could be relevant since it may minimize the
number of times locks have to be obtained on an external object."

With collection-like hub parents added to the paper's graph, compares
address-ordered migration against the parent-locality ordering, across
migration batch sizes (§4.3): locality only pays off when a batch can
hold a shared parent's lock across several of its children.
"""

from repro import (
    CompactionPlan,
    Database,
    ParentLocalityPlan,
    ReorgConfig,
)
from repro.bench import base_workload, bench_scale, format_series, save_results
from repro.core import IncrementalReorganizer
from repro.storage import ObjectImage


def add_hub_parents(db, partition_id, hubs, fanout):
    targets = list(db.store.live_oids(partition_id))

    def build(txn):
        for hub_index in range(hubs):
            members = targets[hub_index::hubs][:fanout]
            txn.local_refs.update(members)
            yield from txn.create_object(
                2, ObjectImage.new(fanout, refs=members,
                                   payload=b"hub-%02d" % hub_index))
    db.execute(build)


def measure(plan_factory, batch, workload):
    db, _ = Database.with_workload(workload)
    add_hub_parents(db, 1, hubs=12,
                    fanout=workload.objects_per_partition // 16)
    reorg = IncrementalReorganizer(
        db.engine, 1, plan=plan_factory(),
        reorg_config=ReorgConfig(migration_batch_size=batch))
    stats = db.run(reorg.run())
    assert db.verify_integrity().ok
    return stats.external_lock_acquisitions


def test_ablation_parent_locality_ordering(once):
    scale = bench_scale()

    def run():
        workload = base_workload(mpl=1, glue_factor=0.3)
        rows = {}
        for batch in scale.batch_size_points:
            rows[batch] = {
                "address": measure(CompactionPlan, batch, workload),
                "locality": measure(
                    lambda: ParentLocalityPlan(CompactionPlan()),
                    batch, workload),
            }
        return rows

    rows = once(run)
    xs = list(bench_scale().batch_size_points)
    text = format_series(
        "Ablation (7): external-parent lock acquisitions by migration order",
        "batch", xs,
        {
            "address": [rows[b]["address"] for b in xs],
            "locality": [rows[b]["locality"] for b in xs],
        },
        y_format="{:9.0f}")
    print("\n" + text)
    save_results("ablation_parent_locality", text)

    # Unbatched migrations cannot share locks: the orders tie.
    assert rows[xs[0]]["locality"] <= rows[xs[0]]["address"] * 1.02
    # With batching, locality wins clearly.
    for batch in xs[1:]:
        assert rows[batch]["locality"] < 0.85 * rows[batch]["address"], \
            f"batch {batch}: {rows[batch]}"
