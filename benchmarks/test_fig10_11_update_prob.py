"""Figures 10 and 11: throughput and ART vs update probability.

Paper shapes: all three systems lose throughput as the update probability
rises (more exclusive locks, more lock conflicts), but PQR is relatively
*less* affected — its data contention is already severe at low update
probabilities — while always remaining below IRA.  Response times climb
with update probability for all three.
"""

from repro.bench import (
    base_workload,
    bench_scale,
    format_series,
    run_three_way,
    save_results,
)


def test_fig10_fig11_update_probability(once):
    scale = bench_scale()

    def run():
        results = {}
        for prob in scale.update_prob_points:
            workload = base_workload(update_prob=prob, mpl=30)
            results[prob] = run_three_way(workload, scale=scale)
        return results

    results = once(run)
    xs = list(scale.update_prob_points)
    throughput = {name.upper(): [results[p][name].throughput for p in xs]
                  for name in ("nr", "ira", "pqr")}
    art = {name.upper(): [results[p][name].art for p in xs]
           for name in ("nr", "ira", "pqr")}

    fig10 = format_series(
        "Figure 10: Update Probability - Throughput (tps)",
        "update prob", xs, throughput)
    fig11 = format_series(
        "Figure 11: Update Probability - Avg Response Time (ms)",
        "update prob", xs, art, y_format="{:9.0f}")
    print("\n" + fig10 + "\n\n" + fig11)
    save_results("fig10_update_prob_throughput", fig10)
    save_results("fig11_update_prob_response_time", fig11)

    # Throughput declines in update probability for NR and IRA.
    for name in ("nr", "ira"):
        curve = throughput[name.upper()]
        assert curve[-1] < curve[0], f"{name} did not decline: {curve}"

    # PQR is the least sensitive (relative drop smaller than NR's)...
    nr_drop = throughput["NR"][0] / max(throughput["NR"][-1], 1e-9)
    pqr_drop = throughput["PQR"][0] / max(throughput["PQR"][-1], 1e-9)
    assert pqr_drop <= nr_drop * 1.05
    # ...but always below IRA, even at the highest update probabilities.
    for i, prob in enumerate(xs):
        assert throughput["PQR"][i] <= throughput["IRA"][i], f"prob {prob}"
        assert art["PQR"][i] >= art["IRA"][i] * 0.95, f"prob {prob}"
