"""Ablation (§5.3.4 "other experiments"): NUMPARTITIONS sweep.

With more partitions (database size grows; one partition is reorganized),
a smaller fraction of threads is homed on the partition being
reorganized, so PQR's all-threads-blocked effect dilutes — while IRA is
insensitive because it never locks out whole home partitions.
"""

from repro.bench import (
    base_workload,
    bench_scale,
    format_series,
    run_point,
    save_results,
)


def test_ablation_num_partitions(once):
    scale = bench_scale()

    def run():
        rows = {}
        for parts in scale.partition_count_points:
            workload = base_workload(num_partitions=parts, mpl=30)
            ira = run_point("ira", workload)
            pqr = run_point("pqr", workload)
            rows[parts] = {"ira": ira, "pqr": pqr}
        return rows

    rows = once(run)
    xs = list(scale.partition_count_points)
    text = format_series(
        "Ablation: NUMPARTITIONS (one partition reorganized), MPL 30",
        "#partitions", xs,
        {
            "IRA tps": [rows[p]["ira"].throughput for p in xs],
            "PQR tps": [rows[p]["pqr"].throughput for p in xs],
            "IRA ART": [rows[p]["ira"].art for p in xs],
            "PQR ART": [rows[p]["pqr"].art for p in xs],
        })
    print("\n" + text)
    save_results("ablation_num_partitions", text)

    # PQR's relative damage shrinks as the blocked fraction shrinks.
    gap_small = (rows[xs[0]]["ira"].throughput
                 - rows[xs[0]]["pqr"].throughput)
    gap_large = (rows[xs[-1]]["ira"].throughput
                 - rows[xs[-1]]["pqr"].throughput)
    assert gap_large < gap_small
    # PQR never beats IRA.
    for parts in xs:
        assert rows[parts]["pqr"].throughput <= \
            rows[parts]["ira"].throughput * 1.02
