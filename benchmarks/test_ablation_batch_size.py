"""Ablation (§4.3): grouping migrations into transactions.

"Multiple object migrations can be grouped into a transaction ... to
reduce the logging overhead.  The trade-off here is between the size of
the transaction and the amount of work that may need to be repeated after
a failure" — and, in lock terms, how long parents stay locked.

Sweeps the migration batch size and reports reorg duration, log flushes,
lock footprint, and the impact on concurrent transactions.
"""

from repro import Database, ExperimentConfig, ReorgConfig
from repro.bench import base_workload, bench_scale, format_series, save_results
from repro.core import CompactionPlan
from repro.workload import WorkloadDriver


def test_ablation_migration_batch_size(once):
    scale = bench_scale()

    def run():
        rows = {}
        for batch in scale.batch_size_points:
            workload = base_workload(mpl=30)
            db, layout = Database.with_workload(workload)
            flushes_before = db.engine.log.flush_count
            driver = WorkloadDriver(db.engine, layout,
                                    ExperimentConfig(workload=workload))
            metrics = driver.run(reorganizer=db.reorganizer(
                1, "ira", plan=CompactionPlan(),
                reorg_config=ReorgConfig(migration_batch_size=batch)))
            assert db.verify_integrity().ok
            rows[batch] = {
                "reorg_s": metrics.reorg_duration_ms / 1000.0,
                "flushes": db.engine.log.flush_count - flushes_before,
                "max_locks": metrics.reorg_stats.max_locks_held,
                "user_tps": metrics.throughput_tps,
                "user_art": metrics.avg_response_ms,
            }
        return rows

    rows = once(run)
    xs = list(scale.batch_size_points)
    text = format_series(
        "Ablation (4.3): migration batch size (IRA, MPL 30)",
        "batch", xs,
        {
            "reorg(s)": [rows[b]["reorg_s"] for b in xs],
            "flushes": [rows[b]["flushes"] for b in xs],
            "maxlocks": [rows[b]["max_locks"] for b in xs],
            "user tps": [rows[b]["user_tps"] for b in xs],
            "ART(ms)": [rows[b]["user_art"] for b in xs],
        })
    print("\n" + text)
    save_results("ablation_batch_size", text)

    # Moderate batches amortize the reorganizer's commit flushes (total
    # flush counts include the user transactions' group commits, so the
    # visible reduction is bounded by the reorganizer's share) and speed
    # the reorganization up...
    mid = xs[len(xs) // 2]
    assert rows[mid]["flushes"] < rows[xs[0]]["flushes"]
    assert min(rows[b]["reorg_s"] for b in xs[1:]) < rows[xs[0]]["reorg_s"]
    # ...at the price of a lock footprint that grows with the batch —
    # exactly the §4.3 trade-off.
    footprints = [rows[b]["max_locks"] for b in xs]
    assert footprints == sorted(footprints)
    assert footprints[-1] > 3 * footprints[0]
