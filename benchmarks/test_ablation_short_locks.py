"""Ablation (§4.1): strict 2PL vs short-duration locks.

With short-duration locks, readers release their S locks right after each
access, so the reorganizer's X requests on parents stop queuing behind
whole read transactions — but IRA must then wait on lock *history*
(every active transaction that ever locked the object), restoring
correctness at a small cost.
"""

from repro import Database, ExperimentConfig, SystemConfig
from repro.bench import base_workload, save_results
from repro.core import CompactionPlan
from repro.workload import WorkloadDriver


def run_mode(strict: bool):
    workload = base_workload(mpl=30)
    system = SystemConfig(strict_transactions=strict)
    db, layout = Database.with_workload(workload, system=system)
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload,
                                             system=system))
    metrics = driver.run(
        reorganizer=db.reorganizer(1, "ira", plan=CompactionPlan()))
    assert db.verify_integrity().ok
    assert metrics.reorg_stats.objects_migrated == \
        workload.objects_per_partition
    return metrics


def test_ablation_short_duration_locks(once):
    def run():
        return run_mode(strict=True), run_mode(strict=False)

    strict, relaxed = once(run)
    text = "\n".join([
        "Ablation (4.1): strict 2PL vs short-duration locks (IRA, MPL 30)",
        f"{'':12} {'user tps':>9} {'ART(ms)':>8} {'reorg(s)':>9} "
        f"{'lock waits':>11}",
        f"{'strict 2PL':12} {strict.throughput_tps:>9.2f} "
        f"{strict.avg_response_ms:>8.0f} "
        f"{strict.reorg_duration_ms / 1000:>9.1f} "
        f"{strict.lock_waits:>11}",
        f"{'short locks':12} {relaxed.throughput_tps:>9.2f} "
        f"{relaxed.avg_response_ms:>8.0f} "
        f"{relaxed.reorg_duration_ms / 1000:>9.1f} "
        f"{relaxed.lock_waits:>11}",
    ])
    print("\n" + text)
    save_results("ablation_short_locks", text)

    # Both modes complete correctly with comparable user-side numbers.
    assert relaxed.throughput_tps >= 0.85 * strict.throughput_tps
    # Short locks reduce reader/reorganizer lock queueing.
    assert relaxed.lock_waits <= strict.lock_waits * 1.1
