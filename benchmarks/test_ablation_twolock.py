"""Ablation (§4.2): basic IRA vs the two-lock extension.

The extension bounds the reorganizer's footprint to two distinct objects
(three raw locks: the migrating object's two locations plus one parent),
versus basic IRA which locks *all* parents of the object being migrated.
Interference with concurrent transactions stays comparable; the win is
the worst-case footprint on popular objects.
"""

from repro import Database, ExperimentConfig
from repro.bench import base_workload, bench_scale, save_results
from repro.core import CompactionPlan
from repro.workload import WorkloadDriver


def run_variant(algorithm, workload):
    db, layout = Database.with_workload(workload)
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    metrics = driver.run(
        reorganizer=db.reorganizer(1, algorithm, plan=CompactionPlan()))
    assert db.verify_integrity().ok
    return metrics


def test_ablation_two_lock_extension(once):
    def run():
        workload = base_workload(mpl=30)
        return (run_variant("ira", workload),
                run_variant("ira-2lock", workload))

    basic, twolock = once(run)
    text = "\n".join([
        "Ablation (4.2): basic IRA vs two-lock extension (MPL 30)",
        f"{'':10} {'max locks':>10} {'user tps':>9} {'ART(ms)':>8} "
        f"{'reorg(s)':>9} {'patches':>8}",
        f"{'IRA':10} {basic.reorg_stats.max_locks_held:>10} "
        f"{basic.throughput_tps:>9.2f} {basic.avg_response_ms:>8.0f} "
        f"{basic.reorg_duration_ms / 1000:>9.1f} "
        f"{basic.reorg_stats.parent_patches:>8}",
        f"{'IRA-2LOCK':10} {twolock.reorg_stats.max_locks_held:>10} "
        f"{twolock.throughput_tps:>9.2f} {twolock.avg_response_ms:>8.0f} "
        f"{twolock.reorg_duration_ms / 1000:>9.1f} "
        f"{twolock.reorg_stats.parent_patches:>8}",
    ])
    print("\n" + text)
    save_results("ablation_twolock", text)

    # The extension's hard bound: three raw locks = two distinct objects.
    assert twolock.reorg_stats.max_locks_held <= 3
    assert basic.reorg_stats.max_locks_held > 3
    # Both patch the same reference structure.
    assert twolock.reorg_stats.parent_patches >= \
        0.95 * basic.reorg_stats.parent_patches
    # Concurrent-transaction impact stays in the same band.
    assert twolock.throughput_tps >= 0.90 * basic.throughput_tps
