"""Ablation (§5.3.4 "other experiments"): OPSPERTRANS sweep.

Longer random walks mean more CPU per transaction (throughput drops
roughly inversely) and more locks held per transaction (more conflicts
with the reorganizer).
"""

from repro.bench import (
    base_workload,
    bench_scale,
    format_series,
    run_point,
    save_results,
)


def test_ablation_walk_length(once):
    scale = bench_scale()

    def run():
        rows = {}
        for ops in scale.walk_length_points:
            workload = base_workload(ops_per_trans=ops, mpl=30)
            ira = run_point("ira", workload)
            nr = run_point("nr", workload,
                           horizon_ms=min(ira.metrics.window_ms,
                                          scale.nr_horizon_cap_ms))
            rows[ops] = {"nr": nr, "ira": ira}
        return rows

    rows = once(run)
    xs = list(scale.walk_length_points)
    text = format_series(
        "Ablation: OPSPERTRANS (random-walk length), MPL 30",
        "ops/txn", xs,
        {
            "NR tps": [rows[o]["nr"].throughput for o in xs],
            "IRA tps": [rows[o]["ira"].throughput for o in xs],
            "NR ART": [rows[o]["nr"].art for o in xs],
            "IRA ART": [rows[o]["ira"].art for o in xs],
        })
    print("\n" + text)
    save_results("ablation_walk_length", text)

    # Throughput falls as walks lengthen; response time rises.
    for name in ("nr", "ira"):
        tps = [rows[o][name].throughput for o in xs]
        art = [rows[o][name].art for o in xs]
        assert tps == sorted(tps, reverse=True), f"{name}: {tps}"
        assert art == sorted(art), f"{name}: {art}"
    # IRA stays close to NR at every walk length.
    for ops in xs:
        assert rows[ops]["ira"].throughput >= \
            0.85 * rows[ops]["nr"].throughput
