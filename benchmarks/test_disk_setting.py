"""§7 (future work, implemented): the algorithms in a disk-based setting.

"In the near future, we plan to carry out a detailed performance study of
our algorithms in a disk-based setting."

Pages live behind an LRU buffer pool; faults cost data-disk I/O.  The
comparison re-runs the Table 2 shape with a buffer sized to hold roughly
a third of the database: IRA still tracks NR closely (its partition scan
has locality; its faults overlap transaction CPU), while PQR still
freezes the partition — now for even longer, since its migration work
faults too.
"""

from repro import Database, ExperimentConfig, SystemConfig
from repro.bench import base_workload, bench_scale, save_results
from repro.core import CompactionPlan
from repro.workload import WorkloadDriver


def run_disk(algorithm, workload, system, horizon_ms=None):
    db, layout = Database.with_workload(workload, system=system)
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload,
                                             system=system))
    if algorithm == "nr":
        metrics = driver.run(horizon_ms=horizon_ms)
    else:
        metrics = driver.run(reorganizer=db.reorganizer(
            1, algorithm, plan=CompactionPlan()))
    assert db.verify_integrity().ok
    return metrics, db.engine.buffer.stats


def test_disk_based_setting(once):
    scale = bench_scale()

    def run():
        workload = base_workload(mpl=10)
        total_pages = (workload.num_partitions
                       * workload.objects_per_partition // 40)
        system = SystemConfig(disk_resident=True,
                              buffer_pool_pages=max(8, total_pages // 3))
        ira, ira_buf = run_disk("ira", workload, system)
        nr, nr_buf = run_disk(
            "nr", workload, system,
            horizon_ms=min(ira.window_ms, scale.nr_horizon_cap_ms))
        pqr, pqr_buf = run_disk("pqr", workload, system)
        return (nr, nr_buf), (ira, ira_buf), (pqr, pqr_buf)

    (nr, nr_buf), (ira, ira_buf), (pqr, pqr_buf) = once(run)
    text = "\n".join([
        "Disk-based setting (buffer pool ~1/3 of the database)",
        f"{'':6} {'tput(tps)':>10} {'ART(ms)':>9} {'hit ratio':>10} "
        f"{'faults':>8}",
        f"{'NR':6} {nr.throughput_tps:10.2f} {nr.avg_response_ms:9.0f} "
        f"{nr_buf.hit_ratio:10.1%} {nr_buf.misses:8d}",
        f"{'IRA':6} {ira.throughput_tps:10.2f} {ira.avg_response_ms:9.0f} "
        f"{ira_buf.hit_ratio:10.1%} {ira_buf.misses:8d}",
        f"{'PQR':6} {pqr.throughput_tps:10.2f} {pqr.avg_response_ms:9.0f} "
        f"{pqr_buf.hit_ratio:10.1%} {pqr_buf.misses:8d}",
    ])
    print("\n" + text)
    save_results("disk_setting", text)

    # The ordering survives the move to disk: IRA close to NR, PQR worst.
    assert ira.throughput_tps >= 0.80 * nr.throughput_tps
    assert pqr.throughput_tps <= ira.throughput_tps
    assert pqr.avg_response_ms >= ira.avg_response_ms
    # The page cache is genuinely active (neither all-hit nor all-miss).
    for stats in (nr_buf, ira_buf, pqr_buf):
        assert 0.05 < stats.hit_ratio < 0.999
