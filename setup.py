"""Setup shim: enables legacy editable installs on environments whose
setuptools lacks PEP 660 / wheel support (configuration is in
pyproject.toml)."""
from setuptools import setup

setup()
