#!/usr/bin/env python3
"""On-line garbage collection (§4.6).

"Our algorithm can perform garbage collection and reorganization and yet
allow references to be physical, an ability that to the best of our
knowledge, no previous algorithm in the literature possesses."

Creates garbage (unreachable linked structures), then compares the two
collectors built on the reorganization machinery:

* the partitioned copying collector (live objects evacuated, the whole
  source region reclaimed, the database re-clustered as a side effect);
* the partitioned mark-and-sweep baseline (garbage freed in place).

Run:  python examples/garbage_collection.py
"""

from repro import Database, WorkloadConfig
from repro.storage import ObjectImage


def grow_garbage(db: Database, layout, partition_id: int,
                 chains: int = 6, length: int = 15) -> int:
    """Hang a scratch chain off each of several cluster roots (each root
    has one spare reference slot), then cut them all loose."""
    roots = layout.cluster_roots[partition_id][:chains]
    assert len(roots) == chains, "partition has too few clusters"
    attachments = []

    def build(txn):
        for chain_index, root in enumerate(roots):
            yield from txn.read(root)
            prev = None
            for i in range(length):
                payload = b"tmp-%d-%03d" % (chain_index, i)
                oid = yield from txn.create_object(
                    partition_id,
                    ObjectImage.new(2, payload=payload,
                                    refs=[prev] if prev else []))
                prev = oid
            yield from txn.insert_ref(root, prev)
            attachments.append((root, prev))
    db.execute(build)

    def cut(txn):
        for root, head in attachments:
            yield from txn.read(root)
            yield from txn.delete_ref(root, head)
    db.execute(cut)
    return chains * length


def main() -> None:
    workload = WorkloadConfig(num_partitions=2,
                              objects_per_partition=1020, mpl=4, seed=5)

    # --- mark and sweep -------------------------------------------------
    db, layout = Database.with_workload(workload)
    garbage = grow_garbage(db, layout, partition_id=1)
    print(f"created {garbage} unreachable objects in partition 1")

    stats = db.collect_garbage(1, method="mark-sweep")
    print("\nmark-and-sweep collector:")
    print(f"  live objects marked {stats.live_objects:6d}")
    print(f"  objects reclaimed   {stats.reclaimed_objects:6d}")
    print(f"  bytes reclaimed     {stats.reclaimed_bytes:6d}")
    assert stats.reclaimed_objects == garbage
    assert db.verify_integrity().ok

    # --- copying collector ------------------------------------------------
    db, layout = Database.with_workload(workload)
    garbage = grow_garbage(db, layout, partition_id=1)
    pages_before = db.store.partition(1).page_count

    stats = db.collect_garbage(1, method="copying", target_partition=10)
    print("\ncopying collector (live objects evacuated to partition 10):")
    print(f"  live objects moved  {stats.live_objects:6d}")
    print(f"  objects reclaimed   {stats.reclaimed_objects:6d}")
    print(f"  source pages freed  {pages_before:6d} -> "
          f"{db.store.partition(1).page_count}")
    assert stats.reclaimed_objects == garbage
    assert db.partition_stats(1).live_objects == 0
    assert db.verify_integrity().ok
    print("\nintegrity check: OK — all physical references valid, "
          "ERTs exact")


if __name__ == "__main__":
    main()
