#!/usr/bin/env python3
"""Schema evolution (§1): objects outgrow their location.

"Schema Evolution could cause an increase in object size.  Such objects
may have to be moved since they no longer fit in their current location.
This requires reorganization of objects."

This example widens every object of one partition (as an added attribute
would), letting objects grow in place while they fit — and then runs an
on-line reorganization to repack the partition, IRA patching every
physical reference to the relocated objects while transactions run.

Run:  python examples/schema_evolution.py
"""

from repro import (
    CompactionPlan,
    Database,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.storage import ObjectImage, PageFullError
from repro.workload import WorkloadDriver


def widen_objects(db: Database, partition_id: int,
                  extra_bytes: int) -> tuple[int, int]:
    """Append ``extra_bytes`` to every object's payload, in place where
    possible.  Returns (grown_in_place, overflowed)."""
    grown = overflowed = 0

    def evolve():
        nonlocal grown, overflowed
        txn = db.engine.txns.begin(system=True)
        for oid in list(db.store.live_oids(partition_id)):
            image = db.store.read_object(oid)
            wide = ObjectImage(
                [image.get_ref(i) for i in range(image.ref_capacity)],
                image.payload + bytes(extra_bytes))
            try:
                yield from txn.replace_object(oid, wide)
                grown += 1
            except PageFullError:
                # No room left in the page: this object would have to be
                # migrated (which the reorganization below does wholesale).
                overflowed += 1
        yield from txn.commit()
    db.run(evolve())
    return grown, overflowed


def main() -> None:
    workload = WorkloadConfig(num_partitions=2, objects_per_partition=1020,
                              mpl=6, seed=12)
    db, layout = Database.with_workload(workload)
    stats = db.partition_stats(1)
    print(f"before evolution: {stats.live_objects} objects on "
          f"{stats.page_count} pages, fragmentation "
          f"{stats.fragmentation:.1%}")

    # Schema change: every object gains a 64-byte attribute.
    grown, overflowed = widen_objects(db, 1, extra_bytes=64)
    print(f"\nwidened every object by 64 bytes: "
          f"{grown} grew in place, {overflowed} did not fit in their page")
    stats = db.partition_stats(1)
    print(f"after widening: {stats.page_count} pages, fragmentation "
          f"{stats.fragmentation:.1%}")

    # The objects that no longer fit must be *moved* (§1) — and migration
    # is the natural place to apply the schema change: IRA's transform
    # hook writes the widened image at each object's new location while
    # transactions keep running.
    def widen(oid, image):
        from repro.storage import ObjectImage
        if len(image.payload) >= workload.payload_bytes + 64:
            return image  # already evolved in place
        return ObjectImage(
            [image.get_ref(i) for i in range(image.ref_capacity)],
            image.payload + bytes(64))

    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    from repro.core import IncrementalReorganizer
    reorganizer = IncrementalReorganizer(
        db.engine, 1, plan=CompactionPlan(), transform=widen)
    metrics = driver.run(reorganizer=reorganizer)

    stats = db.partition_stats(1)
    wide = sum(1 for oid in db.store.live_oids(1)
               if len(db.store.read_object(oid).payload)
               >= workload.payload_bytes + 64)
    print(f"\nafter migrate-and-evolve reorganization: every object "
          f"widened ({wide}/{stats.live_objects}), now on "
          f"{stats.page_count} pages")
    print(f"transactions ran at {metrics.throughput_tps:.1f} tps during "
          f"the reorganization")

    assert wide == stats.live_objects
    report = db.verify_integrity()
    assert report.ok, report.problems()[:3]
    print("integrity check: OK")


if __name__ == "__main__":
    main()
