#!/usr/bin/env python3
"""Telecom call setup: the paper's motivating application (§1).

"Very high availability of database systems is also required for
mission-critical applications such as telecommunications ... For example,
telecom switches typically have down time requirements of at most three
minutes in a year" — and call setup "require[s] response times to be in
the order of tens of microseconds", which is why such systems use
physical references in the first place.

Call setups are short read-only path lookups (routing data).  This
example runs a call-setup workload while maintenance reorganizes the
routing partition, and compares the latency *tail* — the metric a switch
lives or dies by — under IRA vs PQR.

Run:  python examples/telecom_call_setup.py
"""

from repro import (
    CompactionPlan,
    Database,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.workload import WorkloadDriver


def call_setup_workload() -> WorkloadConfig:
    # Call setup = a 4-hop read-only path lookup through routing objects.
    return WorkloadConfig(num_partitions=3, objects_per_partition=1020,
                          mpl=12, ops_per_trans=4, update_prob=0.0,
                          seed=77)


def run(algorithm):
    workload = call_setup_workload()
    db, layout = Database.with_workload(workload)
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    if algorithm == "nr":
        metrics = driver.run(horizon_ms=20_000.0)
    else:
        metrics = driver.run(reorganizer=db.reorganizer(
            1, algorithm, plan=CompactionPlan()))
    assert db.verify_integrity().ok
    return metrics


def report(name, metrics):
    print(f"  {name:4}  p50 {metrics.percentile_response_ms(50):7.0f} ms   "
          f"p99 {metrics.percentile_response_ms(99):7.0f} ms   "
          f"worst {metrics.max_response_ms:8.0f} ms   "
          f"({metrics.completed} calls at "
          f"{metrics.throughput_tps:.0f}/s)")


def main() -> None:
    print("call-setup latency while the routing partition is maintained:\n")
    nr = run("nr")
    report("none", nr)
    ira = run("ira")
    report("IRA", ira)
    pqr = run("pqr")
    report("PQR", pqr)

    print("\nIRA keeps the latency tail within reach of the no-maintenance")
    print("baseline; PQR's quiesce locks stall every call that enters the")
    print(f"partition — its worst call waited "
          f"{pqr.max_response_ms / 1000:.1f} s, an outage in switch terms.")

    assert ira.percentile_response_ms(99) < 3 * max(
        1.0, nr.percentile_response_ms(99))
    assert pqr.max_response_ms > 3 * ira.max_response_ms


if __name__ == "__main__":
    main()
