#!/usr/bin/env python3
"""On-line re-clustering (§1).

"The clustering of related objects within the same disk block or adjacent
disk blocks greatly improves the performance of a transaction that
accesses those set of objects within a small time frame."

This example first scatters a partition (migrating it in a deliberately
cluster-hostile order), then re-clusters it on-line — with transactions
running — using a ClusteringPlan that migrates objects in cluster order,
and measures co-location before and after.

Run:  python examples/clustering.py
"""

from collections import defaultdict

from repro import ClusteringPlan, Database, ExperimentConfig, WorkloadConfig
from repro.workload import WorkloadDriver


def colocation_score(assignment):
    """Average over clusters of the largest same-page fraction —
    1.0 means each cluster is packed onto the fewest possible pages."""
    by_cluster = defaultdict(lambda: defaultdict(int))
    for oid, cluster in assignment.items():
        by_cluster[cluster][oid.page] += 1
    scores = []
    for pages in by_cluster.values():
        scores.append(max(pages.values()) / sum(pages.values()))
    return sum(scores) / len(scores)


def main() -> None:
    workload = WorkloadConfig(num_partitions=2, objects_per_partition=1020,
                              mpl=6, seed=8)
    db, layout = Database.with_workload(workload)

    # Cluster membership, tracked by address and remapped through every
    # reorganization's old->new mapping.
    assignment = {oid: index // workload.cluster_size
                  for index, oid in enumerate(db.store.live_oids(1))}

    def remap(mapping):
        return {mapping.get(oid, oid): cluster
                for oid, cluster in assignment.items()}

    # Scatter the layout: migrate the partition in a cluster-hostile
    # order (round-robin by slot) so clusters interleave across pages.
    stats = db.reorganize(
        1, plan=ClusteringPlan(cluster_key=lambda oid: (oid.slot, oid.page)))
    assignment = remap(stats.mapping)
    before = colocation_score(assignment)
    print(f"after scattering: co-location score {before:.2f}")

    # Re-cluster on-line, with transactions running, migrating objects in
    # cluster order so each cluster packs onto adjacent pages.
    current = dict(assignment)
    plan = ClusteringPlan(cluster_key=lambda oid: current[oid])
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    reorganizer = db.reorganizer(1, "ira", plan=plan)
    metrics = driver.run(reorganizer=reorganizer)
    assignment = remap(reorganizer.stats.mapping)

    after = colocation_score(assignment)
    print(f"after on-line re-clustering: co-location score {after:.2f}")
    print(f"transactions ran at {metrics.throughput_tps:.1f} tps "
          f"throughout")

    assert after > before
    assert db.verify_integrity().ok
    print("integrity check: OK")


if __name__ == "__main__":
    main()
