#!/usr/bin/env python3
"""Quickstart: on-line reorganization with minimal interference.

Builds the paper's object database (scaled down), runs concurrent
transactions while the Incremental Reorganization Algorithm compacts a
partition, and shows that (a) the transactions barely notice and (b) the
database stays perfectly consistent — every physical reference valid,
every external-reference-table entry exact.

Run:  python examples/quickstart.py
"""

from repro import (
    CompactionPlan,
    Database,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.workload import WorkloadDriver


def main() -> None:
    # A small instance of the paper's workload: 3 partitions of 1020
    # objects (12 clusters of 85), 8 concurrent transaction threads.
    workload = WorkloadConfig(num_partitions=3, objects_per_partition=1020,
                              mpl=8, seed=2024)
    db, layout = Database.with_workload(workload)
    print(f"loaded {workload.num_partitions} partitions x "
          f"{workload.objects_per_partition} objects "
          f"(+{len(layout.root_stubs[1])} persistent roots per partition)")

    # Baseline: transactions with no reorganization running.
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    baseline = driver.run(horizon_ms=15_000.0)
    print(f"\nbaseline (no reorganization):")
    print(f"  throughput        {baseline.throughput_tps:7.1f} tps")
    print(f"  avg response time {baseline.avg_response_ms:7.0f} ms")

    # Now compact partition 1 on-line with IRA while the same workload
    # keeps running.
    frag_before = db.partition_stats(1).fragmentation
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    metrics = driver.run(
        reorganizer=db.reorganizer(1, "ira", plan=CompactionPlan()))
    stats = metrics.reorg_stats

    print(f"\nIRA on-line compaction of partition 1:")
    print(f"  objects migrated    {stats.objects_migrated:6d}")
    print(f"  parent refs patched {stats.parent_patches:6d}")
    print(f"  deadlock retries    {stats.deadlock_retries:6d}")
    print(f"  max locks held      {stats.max_locks_held:6d}")
    print(f"  duration            {stats.duration_ms / 1000:6.1f} s "
          f"(simulated)")
    print(f"\nconcurrent transactions during the reorganization:")
    print(f"  throughput        {metrics.throughput_tps:7.1f} tps "
          f"({metrics.throughput_tps / baseline.throughput_tps:.0%} "
          f"of baseline)")
    print(f"  avg response time {metrics.avg_response_ms:7.0f} ms")

    frag_after = db.partition_stats(1).fragmentation
    print(f"\nfragmentation of partition 1: "
          f"{frag_before:.1%} -> {frag_after:.1%}")

    report = db.verify_integrity()
    print(f"integrity check: "
          f"{'OK' if report.ok else report.problems()[:3]}")
    assert report.ok


if __name__ == "__main__":
    main()
