#!/usr/bin/env python3
"""Compaction: the paper's first motivating utility (§1).

"Continuous allocation and deallocation of space for variable length
objects can result in fragmentation.  Compaction gets rid of
fragmentation by migrating objects to a different location and packing
them closely."

This example churns a partition with allocate/free cycles until it is
badly fragmented, then compacts it on-line with IRA while transactions
keep running, and compares page counts before and after.

Run:  python examples/compaction.py
"""

import random

from repro import (
    CompactionPlan,
    Database,
    ExperimentConfig,
    WorkloadConfig,
)
from repro.storage import ObjectImage
from repro.workload import WorkloadDriver


def fragment_partition(db: Database, partition_id: int,
                       rounds: int = 400) -> None:
    """Allocate and free variable-length scratch objects to punch holes."""
    rng = random.Random(7)

    def churn():
        txn = db.engine.txns.begin(system=True)
        live = []
        for index in range(rounds):
            size = rng.randrange(30, 300)
            oid = yield from txn.create_object(
                partition_id, ObjectImage.new(1, payload=bytes(size)))
            live.append(oid)
            # Free a random older object two times out of three: the mix
            # of sizes leaves holes that new allocations do not fill.
            if len(live) > 3 and rng.random() < 0.67:
                victim = live.pop(rng.randrange(len(live)))
                yield from txn.delete_object(victim)
        for oid in live:
            yield from txn.delete_object(oid)
        yield from txn.commit()
    db.run(churn())


def main() -> None:
    workload = WorkloadConfig(num_partitions=2, objects_per_partition=1020,
                              mpl=6, seed=99)
    db, layout = Database.with_workload(workload)

    fragment_partition(db, partition_id=1)
    before = db.partition_stats(1)
    print("before compaction:")
    print(f"  pages          {before.page_count:5d}")
    print(f"  live objects   {before.live_objects:5d}")
    print(f"  fragmentation  {before.fragmentation:5.1%}")

    # On-line compaction under load.
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    metrics = driver.run(
        reorganizer=db.reorganizer(1, "ira", plan=CompactionPlan()))

    after = db.partition_stats(1)
    print("\nafter on-line compaction (IRA):")
    print(f"  pages          {after.page_count:5d}  "
          f"({before.page_count - after.page_count} reclaimed)")
    print(f"  live objects   {after.live_objects:5d}")
    print(f"  fragmentation  {after.fragmentation:5.1%}")
    print(f"\n  transactions ran throughout at "
          f"{metrics.throughput_tps:.1f} tps "
          f"(avg response {metrics.avg_response_ms:.0f} ms)")

    assert after.page_count < before.page_count
    assert after.fragmentation < before.fragmentation
    assert db.verify_integrity().ok
    print("\nintegrity check: OK")


if __name__ == "__main__":
    main()
