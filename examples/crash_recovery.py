#!/usr/bin/env python3
"""Failure handling (§4.4): crash in the middle of a reorganization.

The system fails while IRA is migrating objects under concurrent load.
ARIES-style restart recovery rolls the in-flight migration back (§3.5),
the reorganizer's checkpointed state is rolled forward over the log, the
TRT is reconstructed, and the reorganization resumes where it left off —
"it tries to minimize the amount of wasted work".

Run:  python examples/crash_recovery.py
"""

from repro import (
    CompactionPlan,
    Database,
    ExperimentConfig,
    ReorgConfig,
    WorkloadConfig,
)
from repro.core import ReorgStateStore, resume_reorganization
from repro.workload import WorkloadDriver
from repro.workload.metrics import ExperimentMetrics


def main() -> None:
    workload = WorkloadConfig(num_partitions=2, objects_per_partition=1020,
                              mpl=6, seed=3)
    db, layout = Database.with_workload(workload)
    state_store = ReorgStateStore()  # the reorganizer's checkpoint file

    # Start IRA (checkpointing its state every 50 migrations) plus the
    # transaction threads, and pull the plug 20 simulated seconds in.
    reorg = db.reorganizer(1, "ira", plan=CompactionPlan(),
                           reorg_config=ReorgConfig(checkpoint_every=50),
                           state_store=state_store)
    driver = WorkloadDriver(db.engine, layout,
                            ExperimentConfig(workload=workload))
    metrics = ExperimentMetrics("ira", workload.mpl)
    db.sim.spawn(reorg.run(), name="reorganizer")
    for thread_id in range(workload.mpl):
        db.sim.spawn(driver._thread_process(thread_id, metrics),
                     name=f"thread-{thread_id}")
    db.sim.run(until=20_000.0)

    print(f"crash at t=20s: {reorg.stats.objects_migrated} of "
          f"{reorg.stats.objects_found} objects migrated, "
          f"{state_store.saves} reorg-state checkpoints taken, "
          f"{len(metrics.records)} transactions committed")
    image = db.crash()

    # --- restart ----------------------------------------------------------
    db = Database.recover(image)
    rs = db.engine.recovery_stats
    print(f"\nrestart recovery: analyzed {rs.records_analyzed} log "
          f"records, redid {rs.records_redone}, rolled back "
          f"{len(rs.loser_txns)} loser transactions "
          f"({rs.clrs_written} CLRs)")
    report = db.verify_integrity()
    print(f"integrity after recovery: "
          f"{'OK' if report.ok else report.problems()[:3]}")
    assert report.ok

    # --- resume the reorganization (§4.4) -----------------------------------
    resumed = resume_reorganization(db.engine, state_store,
                                    plan=CompactionPlan())
    assert resumed is not None, "no reorg checkpoint found"
    already_done = len(resumed._migrated)
    stats = db.run(resumed.run(), name="resumed-reorganizer")
    print(f"\nresumed reorganization: {already_done} migrations recovered "
          f"from the checkpoint + log, {stats.objects_migrated} remaining "
          f"objects migrated now")

    final = db.partition_stats(1)
    report = db.verify_integrity()
    print(f"\nfinal state: {final.live_objects} objects, integrity "
          f"{'OK' if report.ok else 'BROKEN'}")
    assert report.ok
    assert final.live_objects == workload.objects_per_partition


if __name__ == "__main__":
    main()
