"""Unit tests for latches."""

import pytest

from repro.concurrency import LatchManager
from repro.sim import Delay, Simulator
from repro.storage import Oid


@pytest.fixture
def setup():
    sim = Simulator()
    return sim, LatchManager(sim)


def test_latch_unlatch(setup):
    sim, latches = setup
    key = Oid(1, 0, 0)

    def proc():
        yield from latches.latch(key)
        assert latches.is_latched(key)
        latches.unlatch(key)
        assert not latches.is_latched(key)

    sim.run_process(proc())
    assert latches.acquisitions == 1


def test_latch_mutual_exclusion(setup):
    sim, latches = setup
    key = Oid(1, 0, 0)
    trace = []

    def proc(tag):
        yield from latches.latch(key)
        trace.append((tag, sim.now))
        yield Delay(4)
        latches.unlatch(key)

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.run()
    assert trace == [("a", 0.0), ("b", 4.0)]


def test_different_keys_independent(setup):
    sim, latches = setup
    trace = []

    def proc(tag, key):
        yield from latches.latch(key)
        trace.append((tag, sim.now))
        yield Delay(4)
        latches.unlatch(key)

    sim.spawn(proc("a", Oid(1, 0, 0)))
    sim.spawn(proc("b", Oid(1, 0, 1)))
    sim.run()
    assert trace == [("a", 0.0), ("b", 0.0)]


def test_unlatch_without_latch_raises(setup):
    _, latches = setup
    with pytest.raises(KeyError):
        latches.unlatch(Oid(1, 0, 0))


def test_idle_latches_are_discarded(setup):
    sim, latches = setup

    def proc():
        for slot in range(50):
            key = Oid(1, 0, slot)
            yield from latches.latch(key)
            latches.unlatch(key)

    sim.run_process(proc())
    assert len(latches._latches) == 0
