"""Unit tests for physical OIDs."""

import pytest

from repro.storage import NULL_REF, Oid
from repro.storage.oid import MAX_PAGE, MAX_PARTITION, MAX_SLOT


def test_pack_unpack_roundtrip():
    oid = Oid(3, 17, 42)
    assert Oid.unpack(oid.pack()) == oid


def test_pack_unpack_extremes():
    for oid in (Oid(0, 0, 0),
                Oid(MAX_PARTITION, MAX_PAGE, MAX_SLOT - 1),
                Oid(0, MAX_PAGE, 0),
                Oid(MAX_PARTITION, 0, MAX_SLOT - 1)):
        assert Oid.unpack(oid.pack()) == oid


def test_null_ref_is_not_a_valid_oid():
    with pytest.raises(ValueError):
        Oid.unpack(NULL_REF)


def test_max_everything_packs_to_null():
    # The all-ones address is reserved as NULL; the packer of the true
    # maximum slot collides with it by design.
    oid = Oid(MAX_PARTITION, MAX_PAGE, MAX_SLOT)
    assert oid.pack() == NULL_REF


def test_oids_are_hashable_and_ordered():
    a, b = Oid(1, 2, 3), Oid(1, 2, 4)
    assert a < b
    assert len({a, b, Oid(1, 2, 3)}) == 2


def test_validate_rejects_out_of_range():
    with pytest.raises(ValueError):
        Oid(-1, 0, 0).validate()
    with pytest.raises(ValueError):
        Oid(0, MAX_PAGE + 1, 0).validate()
    with pytest.raises(ValueError):
        Oid(0, 0, MAX_SLOT + 1).validate()
    assert Oid(1, 2, 3).validate() == Oid(1, 2, 3)


def test_unpack_out_of_range_rejected():
    with pytest.raises(ValueError):
        Oid.unpack(1 << 64)
    with pytest.raises(ValueError):
        Oid.unpack(-1)


def test_str_and_repr():
    oid = Oid(1, 2, 3)
    assert str(oid) == "1:2:3"
    assert "1:2:3" in repr(oid)


def test_distinct_addresses_pack_distinctly():
    packed = {Oid(p, g, s).pack()
              for p in range(3) for g in range(5) for s in range(7)}
    assert len(packed) == 3 * 5 * 7
