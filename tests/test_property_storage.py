"""Model-based property tests for the page/partition layer."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage import Page, PageFullError, Partition, PartitionFullError

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.binary(min_size=1, max_size=60)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("update"), st.integers(min_value=0, max_value=30),
                  st.binary(min_size=1, max_size=60)),
        st.tuples(st.just("write"), st.integers(min_value=0, max_value=30),
                  st.integers(min_value=0, max_value=10),
                  st.binary(min_size=1, max_size=8)),
    ),
    max_size=60)


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops)
def test_page_agrees_with_model(operations):
    page = Page(512)
    model = {}
    for op in operations:
        if op[0] == "insert":
            try:
                slot = page.insert(op[1])
            except PageFullError:
                continue
            assert slot not in model
            model[slot] = op[1]
        elif op[0] == "delete":
            slot = op[1]
            if slot in model:
                page.delete(slot)
                del model[slot]
        elif op[0] == "update":
            slot = op[1]
            if slot in model:
                try:
                    page.update(slot, op[2])
                except PageFullError:
                    continue
                model[slot] = op[2]
        elif op[0] == "write":
            slot, start, data = op[1], op[2], op[3]
            if slot in model and start + len(data) <= len(model[slot]):
                page.write_bytes(slot, start, data)
                record = bytearray(model[slot])
                record[start:start + len(data)] = data
                model[slot] = bytes(record)
    # Full agreement at the end.
    assert set(page.slots()) == set(model)
    for slot, expected in model.items():
        assert page.read(slot) == expected
    assert page.live_slot_count == len(model)


@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.binary(min_size=1, max_size=100)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=50)),
    ),
    max_size=80))
def test_partition_agrees_with_model(operations):
    part = Partition(1, page_size=256)
    model = {}
    allocated_order = []
    for op in operations:
        if op[0] == "alloc":
            try:
                oid = part.allocate(op[1])
            except PartitionFullError:
                continue
            assert oid not in model, "allocator reused a live address"
            model[oid] = op[1]
            allocated_order.append(oid)
        else:
            index = op[1]
            if index < len(allocated_order):
                oid = allocated_order[index]
                if oid in model:
                    part.free(oid)
                    del model[oid]
    assert set(part.live_oids()) == set(model)
    for oid, expected in model.items():
        assert part.read(oid) == expected


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.binary(min_size=1, max_size=120), max_size=40))
def test_partition_snapshot_restore_equivalence(payloads):
    part = Partition(1, page_size=512)
    oids = []
    for payload in payloads:
        oids.append(part.allocate(payload))
    # Free every third object, snapshot, restore, compare.
    for oid in oids[::3]:
        part.free(oid)
    clone = Partition.restore(part.snapshot())
    assert list(clone.live_oids()) == list(part.live_oids())
    for oid in part.live_oids():
        assert clone.read(oid) == part.read(oid)
