"""Counter parity between the kernel's fast and general loops.

``Simulator.run`` picks ``_run_fast`` (no horizon, no policy) or
``_run_general`` (horizon and/or policy installed).  Both must dispatch
the same schedule AND do the same bookkeeping: ``events_dispatched``,
``timers_cancelled`` and ``heap_peak`` feed the committed BENCH_*.json
baselines, so a loop that dispatched identically but *counted*
differently would corrupt the perf-regression gate silently.

Two parity vehicles:

* the full engine workload, run plain (fast loop) and under a
  ``TracingPolicy`` — FIFO decisions, so the schedule is untouched but
  every step goes through the general loop's policy machinery;
* a kernel-level traffic pattern, run plain and with a far horizon
  (``until`` beyond the last event), the other way into the general
  loop.
"""

from repro import Database, SystemConfig, WorkloadConfig
from repro.config import ExperimentConfig
from repro.core import CompactionPlan
from repro.explore.scheduler import TracingPolicy
from repro.sim import Delay, Event, Simulator, Wait
from repro.workload import WorkloadDriver

WORKLOAD = WorkloadConfig(num_partitions=2, objects_per_partition=170,
                          mpl=4, seed=7)


def _engine_run(policy=None):
    db, layout = Database.with_workload(WORKLOAD)
    engine = db.engine
    if policy is not None:
        engine.sim.set_policy(policy)
    driver = WorkloadDriver(engine, layout, ExperimentConfig(
        workload=WORKLOAD))
    metrics = driver.run(
        reorganizer=db.reorganizer(1, "ira", plan=CompactionPlan()))
    return engine.sim.now, engine.sim.counters(), metrics.summary()


def test_engine_workload_counters_match_across_loops():
    now_fast, counters_fast, summary_fast = _engine_run()
    policy = TracingPolicy()
    now_general, counters_general, summary_general = _engine_run(policy)
    assert policy.consultations > 0  # the general loop really ran
    assert now_general == now_fast
    assert counters_general == counters_fast
    assert summary_general == summary_fast
    # The counters the BENCH gate records moved at all.
    assert counters_fast["events_dispatched"] > 0
    assert counters_fast["timers_cancelled"] > 0
    assert counters_fast["heap_peak"] > 1


def _kernel_traffic(sim):
    """Delays, event waits and granted (hence cancelled) timeouts."""
    gate = Event(sim, name="gate")

    def opener():
        yield Delay(7.0)
        gate.succeed("open")

    def worker(index):
        for step in range(6):
            yield Delay(0.5 * ((index + step) % 3))
        # Granted before the timeout fires -> the timer is cancelled,
        # which is exactly the ``timers_cancelled`` traffic under test.
        yield Wait(gate, timeout=500.0)

    sim.spawn(opener(), name="opener")
    for index in range(5):
        sim.spawn(worker(index), name=f"worker-{index}")


def test_kernel_traffic_counters_match_with_far_horizon():
    fast = Simulator()
    _kernel_traffic(fast)
    now_fast = fast.run()

    general = Simulator()
    _kernel_traffic(general)
    now_general = general.run(until=10_000.0)

    assert now_general == now_fast
    assert general.counters() == fast.counters()
    assert fast.counters()["timers_cancelled"] > 0
    assert fast.counters()["events_dispatched"] > 0
