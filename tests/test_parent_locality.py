"""Tests for the §7 parent-locality migration ordering."""

import pytest

from repro import (
    CompactionPlan,
    Database,
    ParentLocalityPlan,
    ReorgConfig,
    WorkloadConfig,
)
from repro.core import IncrementalReorganizer
from tests.test_core_ira import graph_signature


@pytest.fixture
def db_layout():
    # High glue factor: many external parents, each typically the parent
    # of several partition-1 objects.
    return Database.with_workload(
        WorkloadConfig(num_partitions=3, objects_per_partition=340,
                       mpl=2, seed=101, glue_factor=0.6))


def add_hub_parents(db, layout, partition_id, hubs=8, fanout=24):
    """Collection-like external objects, each referencing many objects of
    the partition — the §7 scenario: 'an object external to the partition
    ... may be the parent of multiple objects in the partition'."""
    from repro.storage import ObjectImage
    targets = list(db.store.live_oids(partition_id))

    def build(txn):
        for hub_index in range(hubs):
            # Strided membership: each hub's members are scattered across
            # the partition's address space, so address-ordered migration
            # interleaves the hubs.
            members = targets[hub_index::hubs][:fanout]
            txn.local_refs.update(members)
            yield from txn.create_object(
                2, ObjectImage.new(fanout, refs=members,
                                   payload=b"hub-%02d" % hub_index))
    db.execute(build)


def external_locks(db, plan, batch):
    reorg = IncrementalReorganizer(
        db.engine, 1, plan=plan,
        reorg_config=ReorgConfig(migration_batch_size=batch))
    stats = db.run(reorg.run())
    assert stats.objects_migrated == 340
    assert db.verify_integrity().ok
    return stats.external_lock_acquisitions


def test_parent_locality_reduces_external_lock_acquisitions():
    def measure(plan_factory):
        db, layout = Database.with_workload(
            WorkloadConfig(num_partitions=3, objects_per_partition=340,
                           mpl=2, seed=101, glue_factor=0.6))
        add_hub_parents(db, layout, 1)
        return external_locks(db, plan_factory(), batch=8)

    baseline = measure(CompactionPlan)
    optimized = measure(lambda: ParentLocalityPlan(CompactionPlan()))
    # Hub members migrate consecutively, so each batch locks the hub once
    # instead of (up to) once per member.
    assert optimized < 0.8 * baseline, (optimized, baseline)


def test_parent_locality_preserves_semantics(db_layout):
    db, layout = db_layout
    before = graph_signature(db, layout)
    stats = db.reorganize(1, plan=ParentLocalityPlan(CompactionPlan()))
    assert stats.objects_migrated == 340
    assert graph_signature(db, layout) == before
    assert db.verify_integrity().ok


def test_parent_locality_delegates_placement(db_layout):
    db, _ = db_layout
    from repro import EvacuationPlan
    plan = ParentLocalityPlan(EvacuationPlan(9))
    db.reorganize(1, plan=plan)
    assert db.partition_stats(1).live_objects == 0
    assert db.partition_stats(9).live_objects == 340
    assert db.verify_integrity().ok


def test_parent_locality_groups_shared_parents(db_layout):
    db, layout = db_layout
    add_hub_parents(db, layout, 1, hubs=6, fanout=20)
    plan = ParentLocalityPlan(CompactionPlan())
    plan.prepare(db.engine, 1)
    ert = db.engine.ert_for(1)
    ordered = plan.order(list(db.store.live_oids(1)))
    position = {oid: i for i, oid in enumerate(ordered)}
    # Each hub's member set (disjoint by construction) occupies a
    # contiguous prefix region of the order.
    hubs = [parent for parent, *_ in
            ((p,) for p in {e[1] for e in ert.entries()})
            if len([c for c, q in ert.entries() if q == parent]) >= 10]
    for hub in hubs:
        members = [c for c, p in ert.entries() if p == hub]
        spots = sorted(position[m] for m in members)
        assert spots[-1] - spots[0] == len(spots) - 1, \
            f"hub {hub} members not contiguous"
