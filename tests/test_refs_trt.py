"""Unit tests for the Temporary Reference Table and its §4.5 purges."""

import pytest

from repro.refs import TemporaryReferenceTable
from repro.storage import Oid

C = Oid(1, 0, 0)   # referenced object in partition 1
R = Oid(2, 0, 0)   # a parent
R2 = Oid(2, 0, 1)  # another parent


@pytest.fixture
def trt():
    return TemporaryReferenceTable(partition_id=1)


def test_record_and_query(trt):
    trt.record_insert(C, R, tid=5)
    trt.record_delete(C, R2, tid=6)
    entries = trt.entries_for(C)
    assert {(e.parent, e.action) for e in entries} == {(R, "I"), (R2, "D")}
    assert trt.has_entries_for(C)
    assert len(trt) == 2


def test_child_partition_checked(trt):
    with pytest.raises(ValueError):
        trt.record_insert(Oid(2, 0, 0), R, tid=1)


def test_pop_entry(trt):
    trt.record_insert(C, R, tid=1)
    entry = next(iter(trt.entries_for(C)))
    assert trt.pop_entry(entry)
    assert not trt.pop_entry(entry)
    assert not trt.has_entries_for(C)
    assert trt.stats.drained == 1


def test_referenced_objects(trt):
    other = Oid(1, 3, 3)
    trt.record_insert(C, R, tid=1)
    trt.record_delete(other, R, tid=1)
    assert set(trt.referenced_objects()) == {C, other}


def test_all_parents(trt):
    trt.record_insert(C, R, tid=1)
    trt.record_delete(C, R2, tid=2)
    assert trt.all_parents() == {R, R2}


def test_strict_purge_removes_delete_tuples_on_end(trt):
    trt.record_delete(C, R, tid=7)
    purged = trt.on_transaction_end(7, strict_2pl=True)
    assert purged == 1
    assert not trt.has_entries_for(C)


def test_strict_purge_removes_earlier_insert_of_same_ref(trt):
    # Some txn inserted R->C, then txn 9 deleted it and committed: both
    # tuples are now redundant (§4.5).
    trt.record_insert(C, R, tid=8)
    trt.record_delete(C, R, tid=9)
    trt.on_transaction_end(9, strict_2pl=True)
    assert not trt.has_entries_for(C)


def test_strict_purge_keeps_reinsert_after_delete(trt):
    """Regression: delete-then-reinsert of the same reference inside one
    transaction must leave the re-insert tuple alive — it is the only
    record that R is (again) a parent of C."""
    trt.record_delete(C, R, tid=4)   # txn re-points away ...
    trt.record_insert(C, R, tid=4)   # ... and back again
    trt.on_transaction_end(4, strict_2pl=True)
    survivors = trt.entries_for(C)
    assert {(e.parent, e.action) for e in survivors} == {(R, "I")}


def test_non_strict_mode_keeps_delete_tuples(trt):
    # §4.5: without strict 2PL another txn may have seen the deleted
    # reference and reinsert it later, so delete tuples must stay.
    trt.record_delete(C, R, tid=7)
    assert trt.on_transaction_end(7, strict_2pl=False) == 0
    assert trt.has_entries_for(C)


def test_purge_only_affects_completing_txn(trt):
    trt.record_delete(C, R, tid=1)
    trt.record_delete(C, R2, tid=2)
    trt.on_transaction_end(1, strict_2pl=True)
    remaining = trt.entries_for(C)
    assert {(e.parent, e.tid) for e in remaining} == {(R2, 2)}


def test_insert_tuples_survive_their_txn_end(trt):
    trt.record_insert(C, R, tid=3)
    trt.on_transaction_end(3, strict_2pl=True)
    assert trt.has_entries_for(C)  # drained only by Find_Exact_Parents


def test_seq_numbers_distinguish_repeat_actions(trt):
    trt.record_insert(C, R, tid=1)
    trt.record_delete(C, R, tid=1)
    trt.record_insert(C, R, tid=1)
    # Three distinct tuples despite identical (child, parent, tid) pairs.
    assert len(trt.entries_for(C)) == 3


def test_stats_tracking(trt):
    trt.record_insert(C, R, tid=1)
    trt.record_delete(C, R2, tid=2)
    assert trt.stats.recorded == 2
    assert trt.stats.peak_size == 2
    trt.on_transaction_end(2, strict_2pl=True)
    assert trt.stats.purged == 1


def test_entries_sorted_by_recording_order(trt):
    trt.record_insert(C, R, tid=1)
    trt.record_delete(C, R2, tid=2)
    entries = trt.entries()
    assert [e.parent for e in entries] == [R, R2]
    assert entries[0].seq < entries[1].seq
